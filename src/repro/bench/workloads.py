"""Workload generators for the benchmark harness.

Every generator is deterministic in its seed so that benchmark runs are
repeatable.  The query families mirror the constructions used in the paper's
complexity arguments: programs whose size grows linearly (Theorem 2.4),
XPath queries with deeply nested predicates (the exponential-blowup family
for pre-2002 engines), and conjunctive queries over chosen axis sets (the
dichotomy of Section 4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..cq.ast import ConjunctiveQuery, query
from ..mdatalog.program import MonadicProgram
from ..tree.builder import random_tree
from ..tree.document import Document

DEFAULT_LABELS = ("a", "b", "c", "d", "e")


def scaling_tree(size: int, seed: int = 0, labels: Sequence[str] = DEFAULT_LABELS) -> Document:
    """A pseudo-random document with exactly ``size`` nodes."""
    return random_tree(size, labels=labels, max_children=6, seed=seed)


def chain_program(rule_count: int, labels: Sequence[str] = DEFAULT_LABELS) -> MonadicProgram:
    """A monadic datalog program with ``rule_count`` rules (|P| ~ rule_count).

    The program marks ``a``-labelled nodes and then alternately steps to
    first children and next siblings, so every rule actually fires on random
    documents (no dead rules that an optimiser could skip).
    """
    lines = ["p0(X) :- label_a(X)."]
    for index in range(1, rule_count):
        relation = "firstchild" if index % 2 else "nextsibling"
        lines.append(f"p{index}(X) :- p{index - 1}(X0), {relation}(X0, X).")
    return MonadicProgram.parse("\n".join(lines), query_predicates=[f"p{rule_count - 1}"])


def wide_program(rule_count: int, labels: Sequence[str] = DEFAULT_LABELS) -> MonadicProgram:
    """A program with many independent rules over one query predicate."""
    lines = []
    for index in range(rule_count):
        label = labels[index % len(labels)]
        relation = "firstchild" if index % 2 else "nextsibling"
        lines.append(f"hit(X) :- label_{label}(X0), {relation}(X0, X).")
    return MonadicProgram.parse("\n".join(lines), query_predicates=["hit"])


def nested_predicate_xpath(depth: int, tail_label: str = "b") -> str:
    """The query family q_n = //a[.//a[.//a[...]]] .

    The naive node-at-a-time strategy re-evaluates the nested predicate for
    every candidate, which makes its cost grow exponentially with ``depth``;
    the context-set algorithm stays linear (Theorem 4.1 vs the 2002 state of
    the art).
    """
    inner = tail_label
    for _ in range(depth):
        inner = f"a[.//{inner}]"
    return "//" + inner


def branching_positive_xpath(depth: int) -> str:
    """A positive Core XPath family with two predicates per level."""
    inner = "b"
    for _ in range(depth):
        inner = f"a[.//{inner} and .//c]"
    return "//" + inner


def path_cq(length: int, tractable: bool = True) -> ConjunctiveQuery:
    """A path-shaped conjunctive query of ``length`` axis atoms.

    With ``tractable=True`` all atoms use ``child+`` (inside the tractable
    class {child+, child*}); otherwise the atoms alternate between ``child``
    and ``child+`` — the smallest NP-complete axis combination of the
    dichotomy.
    """
    labels = [("X0", "a")]
    axes: List[Tuple[str, str, str]] = []
    for index in range(length):
        source, target = f"X{index}", f"X{index + 1}"
        if tractable:
            relation = "child+"
        else:
            relation = "child" if index % 2 else "child+"
        axes.append((relation, source, target))
        labels.append((target, "a" if index % 2 else "b"))
    return query(free=["X0"], labels=labels, axes=axes)


def cyclic_cq(size: int, tractable: bool = True) -> ConjunctiveQuery:
    """A cyclic conjunctive query (a 'ladder') over a chosen axis set.

    Cyclic queries are where the dichotomy bites: over {child+, child*} they
    stay polynomial, over {child, child+} they are NP-hard.
    """
    labels = []
    axes: List[Tuple[str, str, str]] = []
    for index in range(size):
        top, bottom = f"T{index}", f"B{index}"
        labels.append((top, "a"))
        labels.append((bottom, "b"))
        axes.append(("child+" if tractable else "child", top, bottom))
        if index > 0:
            axes.append(("child+", f"T{index - 1}", top))
            axes.append(("child+" if tractable else "child+", f"B{index - 1}", bottom))
    return query(free=["T0"], labels=labels, axes=axes)

"""Benchmark support: deterministic workload generators."""

from .workloads import (
    branching_positive_xpath,
    chain_program,
    cyclic_cq,
    nested_predicate_xpath,
    path_cq,
    scaling_tree,
    wide_program,
)

__all__ = [
    "branching_positive_xpath",
    "chain_program",
    "cyclic_cq",
    "nested_predicate_xpath",
    "path_cq",
    "scaling_tree",
    "wide_program",
]

"""repro — a reproduction of the Lixto data extraction project (PODS 2004).

The package is organised in layers:

* substrates: :mod:`repro.tree`, :mod:`repro.html`, :mod:`repro.xmlgen`,
  :mod:`repro.datalog`, :mod:`repro.web`;
* theory core: :mod:`repro.mdatalog` (monadic datalog over trees, TMNF),
  :mod:`repro.automata`, :mod:`repro.xpath`, :mod:`repro.cq`;
* the Lixto system: :mod:`repro.elog` (the Elog language and Extractor),
  :mod:`repro.visual` (visual wrapper specification),
  :mod:`repro.server` (the Transformation Server);
* the façade: :mod:`repro.api` — the single public front door.
  :class:`Session` owns engines, caches and the plan registry and routes
  programs through named backends (``"semi-naive" | "monadic" |
  "automata"``); :class:`Pipeline` builds Transformation Server pipelines
  declaratively; :class:`QueryResult` / :class:`ExtractionResult` are the
  uniform result views; :class:`EngineOptions` is the one tuning object
  every evaluator accepts.

The façade's main entry points are re-exported here, so::

    from repro import Session, Pipeline, EngineOptions

is all most programs need.  The layer modules stay importable for theory
work and tests; their pre-façade tuning kwargs and imperative pipeline
wiring keep working but emit :class:`DeprecationWarning` (see docs/API.md
for migration notes).
"""

from .api import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    DistribInfo,
    DistribOptions,
    EngineOptions,
    ErrorResult,
    ExtractionResult,
    FetchError,
    Pipeline,
    PipelineBuilder,
    QueryResult,
    ResiliencePolicy,
    RetryPolicy,
    Session,
    analyze,
    available_backends,
    register_backend,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "DistribInfo",
    "DistribOptions",
    "EngineOptions",
    "ErrorResult",
    "ExtractionResult",
    "FetchError",
    "Pipeline",
    "PipelineBuilder",
    "QueryResult",
    "ResiliencePolicy",
    "RetryPolicy",
    "Session",
    "__version__",
    "analyze",
    "available_backends",
    "register_backend",
]

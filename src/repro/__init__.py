"""repro — a reproduction of the Lixto data extraction project (PODS 2004).

The package is organised in layers:

* substrates: :mod:`repro.tree`, :mod:`repro.html`, :mod:`repro.xmlgen`,
  :mod:`repro.datalog`, :mod:`repro.web`;
* theory core: :mod:`repro.mdatalog` (monadic datalog over trees, TMNF),
  :mod:`repro.automata`, :mod:`repro.xpath`, :mod:`repro.cq`;
* the Lixto system: :mod:`repro.elog` (the Elog language and Extractor),
  :mod:`repro.visual` (visual wrapper specification),
  :mod:`repro.server` (the Transformation Server).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Retry, backoff, deadlines and per-host circuit breaking.

:func:`call_with_retry` is the core loop — attempts, exponential backoff
with seeded jitter, a cooperative per-attempt timeout and a total deadline
budget, all driven by a :class:`~repro.resilience.policy.RetryPolicy`.
:class:`ResilientFetcher` applies it at the fetch boundary (the only place
the serving stack talks to the outside world) and adds a per-host
:class:`CircuitBreaker`, so a source that keeps failing stops being
hammered and gets probed again after a cooldown.

Clock and sleep are injectable everywhere: tests drive logical time, and a
zero-backoff policy retries without burning wall-clock.

When the loop gives up, the raised exception is annotated with
``resilience_attempts`` and ``resilience_elapsed_s`` —
:meth:`~repro.resilience.policy.ErrorResult.from_exception` reads those to
fill the batch paths' per-slot failure metadata.
"""

from __future__ import annotations

import random
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, TypeVar

from .errors import CircuitOpenError, DeadlineExceeded, is_transient
from .policy import ResiliencePolicy, ResilienceStats, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..elog.extractor import Fetcher
    from ..tree.document import Document

ResultT = TypeVar("ResultT")


def host_of(url: str) -> str:
    """The breaker key of ``url``: the host part, scheme-insensitively."""
    trimmed = url.strip().lower()
    for prefix in ("https://", "http://"):
        if trimmed.startswith(prefix):
            trimmed = trimmed[len(prefix):]
    return trimmed.split("/", 1)[0]


class _HostState:
    __slots__ = ("consecutive_failures", "opened_at", "half_open")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.half_open = False


class CircuitBreaker:
    """A per-host circuit breaker (closed → open → half-open → closed).

    ``threshold`` consecutive failures of one host open its circuit: calls
    fail immediately with :class:`CircuitOpenError` (no load on a source
    that is clearly down).  After ``cooldown_s`` the next call is let
    through as a *probe* (half-open); its success closes the circuit, its
    failure re-opens it for another cooldown.  ``threshold=0`` disables
    the breaker entirely.

    Thread-safe; ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[ResilienceStats] = None,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"breaker threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._stats = stats
        self._hosts: Dict[str, _HostState] = {}
        self._lock = threading.Lock()

    def _state(self, host: str) -> _HostState:
        state = self._hosts.get(host)
        if state is None:
            state = self._hosts[host] = _HostState()
        return state

    def check(self, host: str, url: str = "") -> None:
        """Raise :class:`CircuitOpenError` when ``host`` may not be called."""
        if self.threshold == 0:
            return
        with self._lock:
            state = self._state(host)
            if state.opened_at is None:
                return
            elapsed = self._clock() - state.opened_at
            if elapsed < self.cooldown_s:
                if self._stats is not None:
                    self._stats.bump("breaker_rejections")
                raise CircuitOpenError(
                    f"circuit for host {host!r} is open "
                    f"({state.consecutive_failures} consecutive failures; "
                    f"retry in {self.cooldown_s - elapsed:.1f}s)",
                    url=url,
                    host=host,
                )
            # Cooldown elapsed: half-open — let this call probe the host.
            state.half_open = True

    def record_success(self, host: str) -> None:
        if self.threshold == 0:
            return
        with self._lock:
            state = self._state(host)
            state.consecutive_failures = 0
            state.opened_at = None
            state.half_open = False

    def record_failure(self, host: str) -> None:
        if self.threshold == 0:
            return
        with self._lock:
            state = self._state(host)
            state.consecutive_failures += 1
            if state.half_open or state.consecutive_failures >= self.threshold:
                if state.opened_at is None or state.half_open:
                    if self._stats is not None:
                        self._stats.bump("breaker_trips")
                state.opened_at = self._clock()
                state.half_open = False

    # Breakers ride along when resilient components are pickled for the
    # distrib run_all path; per-host state crosses, the lock does not.
    def __getstate__(self):
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def state_of(self, host: str) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (introspection)."""
        if self.threshold == 0:
            return "closed"
        with self._lock:
            state = self._hosts.get(host)
            if state is None or state.opened_at is None:
                return "closed"
            if self._clock() - state.opened_at >= self.cooldown_s:
                return "half-open"
            return "open"


def _annotate(error: BaseException, attempts: int, elapsed_s: float) -> BaseException:
    # Best-effort: exceptions with __slots__ and no __dict__ stay bare.
    try:
        error.resilience_attempts = attempts  # type: ignore[attr-defined]
        error.resilience_elapsed_s = elapsed_s  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - exotic exception types
        pass
    return error


def call_with_retry(
    call: Callable[[], ResultT],
    policy: RetryPolicy,
    *,
    label: str = "",
    stats: Optional[ResilienceStats] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> ResultT:
    """Run ``call`` under ``policy``; raise the final (annotated) error.

    Retries only transient failures (:func:`~repro.resilience.errors.
    is_transient`); permanent errors propagate from the first attempt.  A
    completed attempt that overran ``attempt_timeout_s`` counts as a
    transient timeout failure (cooperative enforcement — see the policy's
    docstring).  ``deadline_s`` bounds the whole loop, backoffs included.
    """
    start = clock()
    last_error: Optional[BaseException] = None
    attempt = 0
    while attempt < policy.max_attempts:
        attempt += 1
        if policy.deadline_s is not None and clock() - start >= policy.deadline_s:
            deadline = DeadlineExceeded(
                f"deadline of {policy.deadline_s}s exhausted after "
                f"{attempt - 1} attempt(s){f' of {label}' if label else ''}"
            )
            deadline.__cause__ = last_error
            raise _annotate(deadline, attempt - 1, clock() - start)
        if stats is not None:
            stats.bump("attempts")
            if attempt > 1:
                stats.bump("retries")
        attempt_start = clock()
        try:
            result = call()
        except BaseException as error:
            last_error = error
            if not is_transient(error):
                if stats is not None:
                    stats.bump("failures")
                raise _annotate(error, attempt, clock() - start)
        else:
            attempt_elapsed = clock() - attempt_start
            if (
                policy.attempt_timeout_s is not None
                and attempt_elapsed > policy.attempt_timeout_s
            ):
                last_error = TimeoutError(
                    f"attempt {attempt}{f' of {label}' if label else ''} took "
                    f"{attempt_elapsed:.3f}s (timeout {policy.attempt_timeout_s}s)"
                )
            else:
                return result
        if attempt < policy.max_attempts:
            backoff = policy.backoff_for(attempt + 1)
            if backoff > 0:
                if policy.jitter:
                    fraction = random.Random(
                        f"{policy.seed}/{label}/{attempt}"
                    ).random()
                    backoff -= backoff * policy.jitter * fraction
                if policy.deadline_s is not None:
                    remaining = policy.deadline_s - (clock() - start)
                    backoff = min(backoff, max(0.0, remaining))
                sleep(backoff)
    if stats is not None:
        stats.bump("failures")
    assert last_error is not None
    raise _annotate(last_error, attempt, clock() - start)


class ResilientFetcher:
    """A fetcher hardened with retry, deadline and circuit breaking.

    Wraps any :class:`~repro.elog.extractor.Fetcher`-shaped object.  Every
    :meth:`fetch` runs through :func:`call_with_retry` under the policy's
    :class:`~repro.resilience.policy.RetryPolicy`; a per-host
    :class:`CircuitBreaker` sits in front of the attempts, so a host that
    keeps failing is rejected fast until its cooldown elapses.  All
    accounting reports into a (shareable) :class:`ResilienceStats`.
    """

    def __init__(
        self,
        base: "Fetcher",
        policy: Optional[ResiliencePolicy] = None,
        *,
        stats: Optional[ResilienceStats] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.base = base
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self._sleep = sleep
        self._clock = clock
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold,
            self.policy.breaker_cooldown_s,
            clock=clock,
            stats=self.stats,
        )

    def fetch(self, url: str) -> "Document":
        host = host_of(url)

        def attempt() -> "Document":
            self.breaker.check(host, url)
            try:
                document = self.base.fetch(url)
            except CircuitOpenError:
                raise
            except BaseException:
                self.breaker.record_failure(host)
                raise
            self.breaker.record_success(host)
            return document

        return call_with_retry(
            attempt,
            self.policy.retry,
            label=url,
            stats=self.stats,
            sleep=self._sleep,
            clock=self._clock,
        )

    def fetch_async(self, url: str, executor):
        """Schedule the resilient fetch (retries run on the pool thread)."""
        return executor.submit(self.fetch, url)

    def info(self):
        """This fetcher's :class:`~repro.resilience.policy.ResilienceInfo`."""
        return self.stats.snapshot()

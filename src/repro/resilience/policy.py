"""Resilience tuning: one frozen policy object for the whole serving stack.

Mirrors :class:`repro.datalog.options.EngineOptions`: a frozen, hashable
dataclass accepted uniformly by :class:`repro.api.Session`,
:meth:`repro.api.Pipeline.builder`, and the server components, so fault
handling is configured declaratively in one place instead of per-call
kwargs scattered across layers.

Three pieces live here:

* :class:`RetryPolicy` / :class:`ResiliencePolicy` — the knobs (attempts,
  backoff, deadline, breaker thresholds, batch ``on_error`` default, stale
  serving);
* :class:`ResilienceStats` — the thread-safe counters every resilient
  surface reports into, snapshotted as :class:`ResilienceInfo` (the
  :class:`~repro.datalog.cache.CacheInfo` of the failure domain);
* :class:`ErrorResult` — the per-slot failure record the batch paths return
  under ``on_error="collect"`` instead of aborting the other N-1 documents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, FrozenSet, NamedTuple, Optional, Tuple

#: The batch error policies (``Session.query_many`` / ``extract_many``,
#: ``TransformationServer.run_all``): ``"raise"`` aborts the batch on the
#: first failure (the pre-resilience behaviour), ``"skip"`` drops failed
#: slots from the results, ``"collect"`` yields an :class:`ErrorResult` in
#: the failed slot so result order still matches the input order.
ON_ERROR_POLICIES = ("raise", "skip", "collect")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry behaviour at one fetch boundary.

    Attributes
    ----------
    max_attempts:
        Total tries per call, first attempt included (``1`` disables
        retrying).
    backoff_base_s:
        Sleep before the second attempt; attempt ``k`` waits
        ``backoff_base_s * backoff_multiplier**(k-2)``, capped at
        ``backoff_max_s``.  ``0`` retries immediately (the test suites'
        setting — no wall-clock is burned on injected faults).
    backoff_multiplier:
        Exponential growth factor of the backoff.
    backoff_max_s:
        Upper bound of any single backoff sleep.
    jitter:
        Fraction of each backoff randomised away (``0.1`` → sleep between
        90% and 100% of nominal), drawn from a generator seeded per
        (policy seed, url, attempt) — deterministic, like everything in
        :mod:`repro.resilience.faults`.
    attempt_timeout_s:
        Budget for a single attempt.  Enforcement is cooperative — the
        attempt is timed, and one that comes back late is treated as a
        transient failure (synchronous fetchers cannot be cancelled
        mid-call without threads; the latency-spike faults this guards
        against do return eventually).
    deadline_s:
        Total wall-clock budget across all attempts and backoffs; when it
        runs out the call fails with
        :class:`~repro.resilience.errors.DeadlineExceeded`.
    seed:
        Seed of the jitter stream.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1
    attempt_timeout_s: Optional[float] = None
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("RetryPolicy backoff values must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"RetryPolicy.backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"RetryPolicy.jitter must be in [0, 1], got {self.jitter}")
        for name in ("attempt_timeout_s", "deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"RetryPolicy.{name} must be positive, got {value}")

    def backoff_for(self, attempt: int) -> float:
        """Nominal backoff before attempt number ``attempt`` (2-based)."""
        if attempt <= 1 or self.backoff_base_s == 0:
            return 0.0
        nominal = self.backoff_base_s * self.backoff_multiplier ** (attempt - 2)
        return min(nominal, self.backoff_max_s)

    def derive(self, **changes: Any) -> "RetryPolicy":
        return replace(self, **changes)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Declarative fault handling for one serving surface.

    Attributes
    ----------
    retry:
        The :class:`RetryPolicy` applied at the fetch boundary.
    breaker_threshold:
        Consecutive failures per host before the circuit opens (``0``
        disables the breaker).
    breaker_cooldown_s:
        Seconds an open circuit refuses calls before letting one probe
        through (half-open).
    on_error:
        Default batch error policy (see :data:`ON_ERROR_POLICIES`) for
        surfaces that were not given an explicit ``on_error=``.
    serve_stale:
        Whether components re-evaluating a monitored source may serve
        their last-good output (marked ``stale="true"``) when the source
        is down, instead of failing the pipe.
    """

    retry: RetryPolicy = RetryPolicy()
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    on_error: str = "raise"
    serve_stale: bool = True

    def __post_init__(self) -> None:
        if self.breaker_threshold < 0:
            raise ValueError(
                f"ResiliencePolicy.breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ValueError(
                f"ResiliencePolicy.breaker_cooldown_s must be >= 0, got {self.breaker_cooldown_s}"
            )
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"ResiliencePolicy.on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )

    def derive(self, **changes: Any) -> "ResiliencePolicy":
        return replace(self, **changes)


#: The stock policy surfaces resolve to when told "be resilient" without
#: further tuning.
DEFAULT_RESILIENCE = ResiliencePolicy()


class ResilienceInfo(NamedTuple):
    """A snapshot of one surface's failure accounting (cf. ``CacheInfo``)."""

    attempts: int
    retries: int
    failures: int
    breaker_trips: int
    breaker_rejections: int
    stale_served: int
    errors_isolated: int


_STAT_FIELDS = ResilienceInfo._fields


class ResilienceStats:
    """Thread-safe failure counters shared by resilient surfaces.

    One instance can back several :class:`~repro.resilience.retry.
    ResilientFetcher` wrappers (a session's whole batch layer reports into
    one), or one component can own a private instance — the aggregation
    choice belongs to the owner, the arithmetic lives here.
    """

    __slots__ = ("_lock",) + _STAT_FIELDS

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in _STAT_FIELDS:
            setattr(self, field, 0)

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def snapshot(self) -> ResilienceInfo:
        with self._lock:
            return ResilienceInfo(*(getattr(self, field) for field in _STAT_FIELDS))

    def clear(self) -> None:
        with self._lock:
            for field in _STAT_FIELDS:
                setattr(self, field, 0)

    # Counters cross process boundaries (distrib result envelopes, pickled
    # pipeline components); the lock does not — recreate it on unpickle.
    def __getstate__(self):
        return self.snapshot()

    def __setstate__(self, state: ResilienceInfo) -> None:
        self._lock = threading.Lock()
        for field, value in zip(_STAT_FIELDS, state):
            setattr(self, field, value)


class ErrorResult:
    """The failed slot of a batch under ``on_error="collect"``.

    Carries the exception plus the acquisition metadata the retry layer
    annotated it with (attempt count, elapsed seconds) and the slot's
    provenance (``url`` for fetched documents, ``index`` into the batch).

    Quacks like an empty :class:`~repro.api.results.QueryResult` —
    ``predicates()`` / ``tuples`` / ``nodes`` / ``texts`` are empty,
    ``ok`` is ``False`` — so mixed result lists can be consumed uniformly
    (``[r for r in results if r.ok]``).
    """

    __slots__ = ("error", "url", "index", "attempts", "elapsed_s", "backend")

    def __init__(
        self,
        error: BaseException,
        *,
        url: Optional[str] = None,
        index: Optional[int] = None,
        attempts: int = 1,
        elapsed_s: float = 0.0,
        backend: str = "error",
    ) -> None:
        self.error = error
        self.url = url
        self.index = index
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.backend = backend

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        *,
        url: Optional[str] = None,
        index: Optional[int] = None,
        elapsed_s: float = 0.0,
        backend: str = "error",
    ) -> "ErrorResult":
        """Build a slot record, honouring retry-layer annotations.

        :class:`~repro.resilience.retry.ResilientFetcher` stamps the
        exceptions it gives up on with ``resilience_attempts`` /
        ``resilience_elapsed_s``; those win over the caller's elapsed
        measurement because they cover exactly the acquisition.
        """
        return cls(
            error,
            url=url,
            index=index,
            attempts=getattr(error, "resilience_attempts", 1),
            elapsed_s=getattr(error, "resilience_elapsed_s", elapsed_s),
            backend=backend,
        )

    # -- the empty-result quack (mirrors QueryResult's surface) ----------
    @property
    def ok(self) -> bool:
        return False

    def predicates(self) -> FrozenSet[str]:
        return frozenset()

    def tuples(self, predicate: str) -> FrozenSet[Tuple[object, ...]]:
        return frozenset()

    def nodes(self, predicate: str) -> Tuple[object, ...]:
        return ()

    def texts(self, predicate: str) -> Tuple[str, ...]:
        return ()

    def count(self, predicate: Optional[str] = None) -> int:
        return 0

    def __contains__(self, predicate: str) -> bool:
        return False

    def __bool__(self) -> bool:
        # A failed slot is falsy so `if result:` guards read naturally.
        return False

    def __repr__(self) -> str:
        where = self.url if self.url is not None else f"#{self.index}"
        return (
            f"ErrorResult({where}: {type(self.error).__name__}: {self.error}; "
            f"attempts={self.attempts}, elapsed={self.elapsed_s:.3f}s)"
        )

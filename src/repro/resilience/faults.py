"""Deterministic fault injection at the fetch boundary.

The paper's serving scenarios assume sources that flake: pages vanish,
servers time out, a fetch hangs for seconds and then answers.  To test and
benchmark how the stack survives that, failures must be *reproducible* — a
chaos run that cannot be replayed is a flake generator, not a test.

:class:`FaultPlan` is a seeded, deterministic schedule of injected faults.
Rules match URLs by substring (``"*"`` matches everything) and fire based
on the per-URL fetch count, so a plan replays identically however threads
interleave *across* URLs (per-URL counters are the only state, and they are
locked):

* ``fail_transient(pattern, times=N)`` — the classic fail-N-then-succeed
  sequence: the first N matching fetches raise
  :class:`~repro.resilience.errors.TransientFetchError`, later ones pass;
* ``fail_permanent(pattern)`` — a 404-style source: every fetch raises
  :class:`~repro.resilience.errors.PermanentFetchError`;
* ``add_latency(pattern, seconds, times=None)`` — latency spikes (the
  fetcher sleeps before delegating);
* ``fail_rate(rate)`` — a seeded coin per (url, fetch number): heads is a
  transient fault.  Deterministic for a given seed, independent of thread
  interleaving.

:class:`FaultyFetcher` wraps any :class:`~repro.elog.extractor.Fetcher`
with a plan; :class:`repro.web.SimulatedWeb` also consults a plan directly
(``install_faults``) so site-level tests need no wrapper.
"""

from __future__ import annotations

import random
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, List, NamedTuple, Optional

from .errors import PermanentFetchError, TransientFetchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..elog.extractor import Fetcher
    from ..tree.document import Document


class _FaultRule(NamedTuple):
    kind: str  # "transient" | "permanent" | "latency" | "rate"
    pattern: str
    times: Optional[int]  # fire on fetch numbers [after, after+times); None = always
    after: int
    value: float  # latency seconds or transient-rate probability


class FaultDecision(NamedTuple):
    """What the plan wants done about one fetch (resolved, not raised)."""

    delay_s: float
    error: Optional[Exception]


class FaultPlan:
    """A seeded, deterministic schedule of injected fetch faults.

    Rule methods return ``self`` so plans chain::

        plan = (
            FaultPlan(seed=7)
            .fail_transient("shop-3.test", times=2)
            .fail_permanent("gone.test")
            .add_latency("slow.test", 0.05)
        )

    ``decide(url)`` consumes one fetch: it advances the URL's counter and
    resolves every matching rule into a :class:`FaultDecision`.  Injected
    faults are tallied in :attr:`injected` so chaos suites can assert the
    storm actually stormed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: List[_FaultRule] = []
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.injected: Dict[str, int] = {"transient": 0, "permanent": 0, "latency": 0}

    # -- rule construction (chainable) ----------------------------------
    def fail_transient(self, pattern: str = "*", times: int = 1, *, after: int = 0) -> "FaultPlan":
        """Fail matching fetch numbers ``[after, after+times)`` transiently."""
        if times < 1:
            raise ValueError(f"fail_transient times must be >= 1, got {times}")
        self._rules.append(_FaultRule("transient", pattern, times, after, 0.0))
        return self

    def fail_permanent(self, pattern: str) -> "FaultPlan":
        """Every matching fetch raises a permanent (404-style) error."""
        self._rules.append(_FaultRule("permanent", pattern, None, 0, 0.0))
        return self

    def add_latency(
        self, pattern: str, seconds: float, *, times: Optional[int] = None, after: int = 0
    ) -> "FaultPlan":
        """Delay matching fetches by ``seconds`` (``times=None``: always)."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self._rules.append(_FaultRule("latency", pattern, times, after, seconds))
        return self

    def fail_rate(self, rate: float, pattern: str = "*", *, max_failures: int = 10 ** 9) -> "FaultPlan":
        """A seeded transient-fault coin per (url, fetch number).

        ``max_failures`` bounds consecutive hits per URL so a retried fetch
        cannot lose the coin toss forever (set it below the retry policy's
        ``max_attempts`` to make every rate-injected fault recoverable).
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fail_rate must be in [0, 1], got {rate}")
        self._rules.append(_FaultRule("rate", pattern, max_failures, 0, rate))
        return self

    # -- pickling ---------------------------------------------------------
    # Fault plans ride inside pickled fetchers (distrib chaos tests); the
    # rules, counters and tallies cross, the lock is recreated.
    def __getstate__(self):
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- resolution -------------------------------------------------------
    @staticmethod
    def _matches(pattern: str, url: str) -> bool:
        return pattern == "*" or pattern in url

    def fetch_count(self, url: str) -> int:
        """How many fetches of ``url`` the plan has adjudicated so far."""
        with self._lock:
            return self._counts.get(url, 0)

    def decide(self, url: str) -> FaultDecision:
        """Adjudicate one fetch of ``url`` (advances its counter)."""
        with self._lock:
            number = self._counts.get(url, 0)
            self._counts[url] = number + 1
            delay = 0.0
            error: Optional[Exception] = None
            consecutive_rate_hits = self._consecutive_rate_hits(url, number)
            for rule in self._rules:
                if not self._matches(rule.pattern, url):
                    continue
                in_window = rule.times is None or rule.after <= number < rule.after + rule.times
                if rule.kind == "latency" and in_window:
                    delay += rule.value
                elif error is not None:
                    continue  # first failing rule wins
                elif rule.kind == "permanent":
                    self.injected["permanent"] += 1
                    error = PermanentFetchError(
                        f"injected permanent failure fetching {url!r}", url=url
                    )
                elif rule.kind == "transient" and in_window:
                    self.injected["transient"] += 1
                    error = TransientFetchError(
                        f"injected transient failure fetching {url!r} "
                        f"(fetch #{number})",
                        url=url,
                    )
                elif rule.kind == "rate" and consecutive_rate_hits < (rule.times or 0):
                    if self._rate_coin(url, number, rule.value):
                        self.injected["transient"] += 1
                        error = TransientFetchError(
                            f"injected transient failure fetching {url!r} "
                            f"(fetch #{number}, seeded rate)",
                            url=url,
                        )
            if delay:
                self.injected["latency"] += 1
            return FaultDecision(delay, error)

    def _rate_coin(self, url: str, number: int, rate: float) -> bool:
        return random.Random(f"{self.seed}/rate/{url}/{number}").random() < rate

    def _consecutive_rate_hits(self, url: str, number: int) -> int:
        """Rate-rule hits on the fetches immediately preceding ``number``.

        Recomputed from the seed (no extra state): walks backwards while
        the coin kept coming up heads.  Bounds the fail-streak so
        ``max_failures`` can guarantee a retried fetch eventually passes.
        """
        rates = [rule.value for rule in self._rules if rule.kind == "rate"]
        if not rates:
            return 0
        streak = 0
        position = number - 1
        while position >= 0 and any(
            self._rate_coin(url, position, rate) for rate in rates
        ):
            streak += 1
            position -= 1
        return streak


class FaultyFetcher:
    """A fetcher wrapper that injects a :class:`FaultPlan`'s faults.

    Satisfies the :class:`~repro.elog.extractor.Fetcher` protocol
    structurally (fetch + fetch_async via delegation), so it can wrap any
    fetcher in the stack — a :class:`~repro.web.SimulatedWeb`, a
    :class:`~repro.web.StaticDocumentFetcher`, or another wrapper.
    ``sleep`` is injectable so latency spikes cost no wall-clock in tests.
    """

    def __init__(
        self,
        base: "Fetcher",
        plan: FaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base = base
        self.plan = plan
        self._sleep = sleep

    def fetch(self, url: str) -> "Document":
        decision = self.plan.decide(url)
        if decision.delay_s:
            self._sleep(decision.delay_s)
        if decision.error is not None:
            raise decision.error
        return self.base.fetch(url)

    def fetch_async(self, url: str, executor):
        """Schedule the faulty fetch (fault adjudication runs on the pool)."""
        return executor.submit(self.fetch, url)

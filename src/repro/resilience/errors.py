"""The failure vocabulary of the serving stack.

Before this module, document acquisition failed with a bare ``KeyError``
(:class:`repro.web.SimulatedWeb`, :class:`repro.web.StaticDocumentFetcher`)
and nothing in the stack could tell a vanished page from a flaky one.  The
hierarchy here gives every fetch-boundary failure a type that encodes *how*
it should be handled:

* :class:`TransientFetchError` — worth retrying (timeouts, connection
  resets, the injected faults of :mod:`repro.resilience.faults`);
* :class:`PermanentFetchError` — retrying cannot help (404-style: the page
  is gone, the URL was never published);
* :class:`CircuitOpenError` — the per-host circuit breaker is refusing
  calls after consecutive failures (retrying *this call* is pointless; the
  host gets a probe after the cooldown);
* :class:`DeadlineExceeded` — the retry loop ran out of its total time
  budget before any attempt succeeded.

:class:`FetchError` subclasses :class:`KeyError` deliberately: every
pre-existing ``except KeyError`` at a fetch boundary (the Extractor's
lenient crawling fallback, test expectations) keeps working, while new code
can catch the precise class.
"""

from __future__ import annotations


class FetchError(KeyError):
    """A document acquisition failure (base of the fetch-error family).

    Subclasses :class:`KeyError` for compatibility with the pre-resilience
    contract, but renders its message like a normal exception (``KeyError``
    reprs its first argument, which garbles sentences).
    """

    def __init__(self, message: str, *, url: str = "") -> None:
        super().__init__(message)
        self.url = url

    def __str__(self) -> str:
        return self.args[0] if self.args else ""

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)``, which silently
        # drops the keyword-only ``url=`` (and any retry-layer annotations
        # like ``resilience_attempts`` stamped onto ``__dict__``).  The
        # distrib result envelopes carry these errors across processes, so
        # round-trip them exactly: rebuild from the positional message and
        # re-apply the whole ``__dict__`` as state.
        return (
            _rebuild_fetch_error,
            (type(self), self.args[0] if self.args else ""),
            dict(self.__dict__),
        )

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


def _rebuild_fetch_error(cls, message):
    """Pickle helper: reconstruct any :class:`FetchError` subclass from its
    message alone; ``__setstate__`` then restores url/host/annotations."""
    return cls(message)


class TransientFetchError(FetchError):
    """A failure that may succeed on retry (timeout, reset, injected)."""


class PermanentFetchError(FetchError):
    """A failure no retry can fix (missing page, 404, malformed URL)."""


class CircuitOpenError(FetchError):
    """The per-host circuit breaker is open; the call was not attempted."""

    def __init__(self, message: str, *, url: str = "", host: str = "") -> None:
        super().__init__(message, url=url)
        self.host = host


class DeadlineExceeded(FetchError):
    """The retry loop exhausted its total deadline budget.

    ``__cause__`` carries the last underlying attempt error when one was
    seen before the budget ran out.
    """


class WorkerCrashError(TransientFetchError):
    """A distrib worker process died (SIGKILL, OOM, segfault) mid-task.

    Subclasses :class:`TransientFetchError` deliberately: a crashed worker
    says nothing about the *document* — the task is worth re-running on a
    healthy worker, exactly like a reset connection is worth a retry.  The
    :class:`~repro.distrib.executor.ProcessExecutor` requeues the victim's
    in-flight tasks up to its ``max_requeues`` budget and only then lets
    this error surface through the normal ``on_error`` slot semantics.
    """

    def __init__(
        self, message: str, *, url: str = "", index: int = -1, requeues: int = 0
    ) -> None:
        super().__init__(message, url=url)
        self.index = index
        self.requeues = requeues


#: Error types the retry layer treats as worth another attempt.  Everything
#: else — permanent fetch errors, evaluation bugs, programming errors —
#: fails the call on first sight.
TRANSIENT_ERRORS = (TransientFetchError, ConnectionError, TimeoutError)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying at the fetch boundary."""
    return isinstance(error, TRANSIENT_ERRORS)

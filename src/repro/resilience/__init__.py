"""Fault tolerance for the serving stack.

The subsystem in four pieces, each its own module:

* :mod:`~repro.resilience.errors` — the failure vocabulary
  (:class:`FetchError` and friends, transient/permanent classification);
* :mod:`~repro.resilience.policy` — declarative knobs
  (:class:`RetryPolicy`, :class:`ResiliencePolicy`), thread-safe counters
  (:class:`ResilienceStats` → :class:`ResilienceInfo`) and the
  :class:`ErrorResult` slot record for isolated batch failures;
* :mod:`~repro.resilience.faults` — seeded deterministic fault injection
  (:class:`FaultPlan`, :class:`FaultyFetcher`);
* :mod:`~repro.resilience.retry` — the enforcement layer
  (:func:`call_with_retry`, :class:`CircuitBreaker`,
  :class:`ResilientFetcher`).
"""

from .errors import (
    TRANSIENT_ERRORS,
    CircuitOpenError,
    DeadlineExceeded,
    FetchError,
    PermanentFetchError,
    TransientFetchError,
    WorkerCrashError,
    is_transient,
)
from .faults import FaultDecision, FaultPlan, FaultyFetcher
from .policy import (
    DEFAULT_RESILIENCE,
    ON_ERROR_POLICIES,
    ErrorResult,
    ResilienceInfo,
    ResiliencePolicy,
    ResilienceStats,
    RetryPolicy,
)
from .retry import CircuitBreaker, ResilientFetcher, call_with_retry, host_of

__all__ = [
    "TRANSIENT_ERRORS",
    "CircuitOpenError",
    "DeadlineExceeded",
    "FetchError",
    "PermanentFetchError",
    "TransientFetchError",
    "WorkerCrashError",
    "is_transient",
    "FaultDecision",
    "FaultPlan",
    "FaultyFetcher",
    "DEFAULT_RESILIENCE",
    "ON_ERROR_POLICIES",
    "ErrorResult",
    "ResilienceInfo",
    "ResiliencePolicy",
    "ResilienceStats",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientFetcher",
    "call_with_retry",
    "host_of",
]

"""Linear-time evaluation of ground (propositional) Horn programs.

Theorem 2.4 of the paper derives the O(|P| * |dom|) bound for monadic datalog
over trees by (1) grounding the program in linear time — possible because the
tau_ur relations have bidirectional functional dependencies — and (2)
evaluating the resulting ground program in linear time with a unit-resolution
algorithm in the style of Minoux's LTUR [29].

This module implements step (2): propositional atoms are interned as
integers, each rule keeps a counter of not-yet-satisfied body atoms, and a
worklist propagates newly derived atoms.  Total work is proportional to the
number of occurrences of atoms in the ground program.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

GroundRule = Tuple[Hashable, Tuple[Hashable, ...]]  # (head, body)


class GroundHornSolver:
    """LTUR-style solver for ground Horn programs.

    Usage::

        solver = GroundHornSolver()
        solver.add_rule("p@3", ("q@1", "r@2"))
        solver.add_fact("q@1")
        ...
        true_atoms = solver.solve()
    """

    def __init__(self) -> None:
        self._atom_ids: Dict[Hashable, int] = {}
        self._atoms: List[Hashable] = []
        # For each rule: remaining-count and head atom id.
        self._rule_remaining: List[int] = []
        self._rule_head: List[int] = []
        # For each atom id: list of rule indexes in whose body it occurs.
        self._occurrences: Dict[int, List[int]] = defaultdict(list)
        self._facts: List[int] = []

    # ------------------------------------------------------------------
    def _intern(self, atom: Hashable) -> int:
        identifier = self._atom_ids.get(atom)
        if identifier is None:
            identifier = len(self._atoms)
            self._atom_ids[atom] = identifier
            self._atoms.append(atom)
        return identifier

    def add_fact(self, atom: Hashable) -> None:
        self._facts.append(self._intern(atom))

    def add_rule(self, head: Hashable, body: Sequence[Hashable]) -> None:
        if not body:
            self.add_fact(head)
            return
        rule_index = len(self._rule_head)
        self._rule_head.append(self._intern(head))
        self._rule_remaining.append(len(body))
        for atom in body:
            self._occurrences[self._intern(atom)].append(rule_index)

    def add_rules(self, rules: Iterable[GroundRule]) -> None:
        for head, body in rules:
            self.add_rule(head, body)

    # ------------------------------------------------------------------
    def solve(self) -> Set[Hashable]:
        """Return the set of atoms in the least model."""
        derived = [False] * len(self._atoms)
        remaining = list(self._rule_remaining)
        worklist: List[int] = []

        for atom_id in self._facts:
            if not derived[atom_id]:
                derived[atom_id] = True
                worklist.append(atom_id)

        while worklist:
            atom_id = worklist.pop()
            for rule_index in self._occurrences.get(atom_id, ()):  # each occurrence once
                remaining[rule_index] -= 1
                if remaining[rule_index] == 0:
                    head_id = self._rule_head[rule_index]
                    if not derived[head_id]:
                        derived[head_id] = True
                        worklist.append(head_id)

        return {self._atoms[index] for index, flag in enumerate(derived) if flag}

    # ------------------------------------------------------------------
    def atom_count(self) -> int:
        return len(self._atoms)

    def rule_count(self) -> int:
        return len(self._rule_head)


def solve_ground_program(
    rules: Iterable[GroundRule], facts: Iterable[Hashable] = ()
) -> Set[Hashable]:
    """One-shot helper around :class:`GroundHornSolver`."""
    solver = GroundHornSolver()
    solver.add_rules(rules)
    for fact in facts:
        solver.add_fact(fact)
    return solver.solve()

"""Server-scale fixpoint caching for the semi-naive engine.

PR 1 memoised exactly one fixpoint per engine, keyed by a frozenset snapshot
of the whole database that was rebuilt on *every* ``query()`` call.  The
:mod:`repro.server.pipeline` access pattern — several hot documents queried
round-robin — thrashed that single slot, and even cache hits paid the O(|D|)
snapshot allocation.

:class:`FixpointCache` replaces it with an LRU keyed by cheap content hashes:

* The per-lookup fingerprint is an allocation-free, order-independent XOR
  hash over the facts (:func:`database_content_hash`) — one O(|D|) pass with
  small constants, no frozensets built.  The frozenset snapshot is built
  once at *store* time, never per query: a hit costs the hash pass plus one
  allocation-free exact comparison, where PR 1 rebuilt (and then compared)
  a full tuple-of-frozensets key on every single ``query()`` call.
* Every hash hit is verified exactly, set by set, against the stored
  snapshot before the cached result is returned — a colliding hash can
  never smuggle in a stale fixpoint, not even for an in-place mutation of
  the previously seen database object that happens to preserve the hash
  (CPython hashes collide easily, e.g. ``hash(1) == hash(2**61)``).
* Entries are evicted least-recently-used once ``capacity`` is exceeded, so
  a working set of several hot documents all stay resident.

Hit/miss counters are exposed through :meth:`FixpointCache.info` so server
benchmarks can assert cache effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    List,
    NamedTuple,
    Optional,
    Tuple,
    TypeVar,
)

from .ast import Database

ResultT = TypeVar("ResultT")
EntryT = TypeVar("EntryT")

Snapshot = Dict[str, FrozenSet[Tuple[object, ...]]]


class CacheInfo(NamedTuple):
    """Cache statistics, mirroring :func:`functools.lru_cache` conventions."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def database_content_hash(database: Database) -> int:
    """An order-independent content hash of ``{predicate: facts}``.

    XOR-combining per-fact hashes makes the result independent of set and
    dict iteration order without sorting or building frozensets; empty
    relations still contribute (their presence changes the fixpoint shape).
    """
    result = 0
    for predicate, facts in database.items():
        relation_hash = 0
        for fact in facts:
            relation_hash ^= hash(fact)
        result ^= hash((predicate, len(facts), relation_hash))
    return result


class VerifiedLruBuckets(Generic[EntryT]):
    """Fingerprint-bucketed LRU storage with caller-supplied verification.

    The machinery shared by :class:`FixpointCache` and
    :class:`repro.datalog.registry.PlanRegistry`: entries live in hash
    buckets keyed by a cheap content fingerprint, a bucket hit is
    disambiguated by an exact ``matches`` predicate (hash quality is a
    performance concern, never a correctness one), recency is refreshed per
    fingerprint on every verified find, and the globally oldest entry is
    evicted once ``capacity`` is exceeded.  Hit/miss accounting and any
    locking live in the owning cache.
    """

    __slots__ = ("capacity", "_buckets", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._buckets: "OrderedDict[int, List[EntryT]]" = OrderedDict()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def find(
        self, fingerprint: int, matches: Callable[[EntryT], bool]
    ) -> Optional[EntryT]:
        """The verified entry under ``fingerprint``, refreshing its recency."""
        bucket = self._buckets.get(fingerprint)
        if bucket is None:
            return None
        for entry in bucket:
            if matches(entry):
                self._buckets.move_to_end(fingerprint)
                return entry
        return None

    def insert(self, fingerprint: int, entry: EntryT) -> None:
        """Insert ``entry`` as most recent, evicting the oldest past capacity."""
        bucket = self._buckets.setdefault(fingerprint, [])
        bucket.append(entry)
        self._buckets.move_to_end(fingerprint)
        self._size += 1
        while self._size > self.capacity:
            oldest_fingerprint, oldest_bucket = next(iter(self._buckets.items()))
            oldest_bucket.pop(0)
            self._size -= 1
            if not oldest_bucket:
                del self._buckets[oldest_fingerprint]

    def clear(self) -> None:
        self._buckets.clear()
        self._size = 0


class _Entry(Generic[ResultT]):
    __slots__ = ("snapshot", "result")

    def __init__(self, snapshot: Snapshot, result: ResultT) -> None:
        self.snapshot = snapshot
        self.result = result


def _snapshot_matches(snapshot: Snapshot, database: Database) -> bool:
    if len(snapshot) != len(database):
        return False
    for predicate, facts in database.items():
        stored = snapshot.get(predicate)
        if stored is None or stored != facts:
            return False
    return True


class FixpointCache(Generic[ResultT]):
    """An LRU of evaluated fixpoints, keyed by cheap content fingerprints.

    ``lookup`` returns ``(fingerprint, result-or-None)``; on a miss the
    caller evaluates and calls ``store`` with the same fingerprint.  Entries
    whose hashes collide share a bucket and are disambiguated by exact
    verification, so correctness never depends on hash quality.
    """

    __slots__ = ("hits", "misses", "_entries")

    def __init__(self, capacity: int = 8) -> None:
        self.hits = 0
        self.misses = 0
        self._entries: VerifiedLruBuckets[_Entry[ResultT]] = VerifiedLruBuckets(capacity)

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, database: Database) -> Tuple[int, Optional[ResultT]]:
        fingerprint = database_content_hash(database)
        entry = self._entries.find(
            fingerprint, lambda entry: _snapshot_matches(entry.snapshot, database)
        )
        if entry is not None:
            self.hits += 1
            return fingerprint, entry.result
        self.misses += 1
        return fingerprint, None

    def store(self, fingerprint: int, database: Database, result: ResultT) -> None:
        # Exact duplicates refresh the existing entry in place: repeated
        # stores of one database (callers skipping lookup, or racing
        # lookup/store pairs) must not inflate the size and evict hot
        # documents that are genuinely distinct.
        entry = self._entries.find(
            fingerprint, lambda entry: _snapshot_matches(entry.snapshot, database)
        )
        if entry is not None:
            entry.result = result
            return
        snapshot: Snapshot = {
            predicate: frozenset(facts) for predicate, facts in database.items()
        }
        self._entries.insert(fingerprint, _Entry(snapshot, result))

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, len(self._entries), self.capacity)


KeyT = TypeVar("KeyT")
_MISSING = object()


class LruMap(Generic[KeyT, ResultT]):
    """A bounded least-recently-used mapping with hit/miss counters.

    For caches whose keys are already exact content fingerprints (tree
    fingerprints, automaton signatures) — no hash-then-verify step needed.
    Shared by the monadic ground pipeline and the automata evaluator cache.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[KeyT, ResultT]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: KeyT) -> Optional[ResultT]:
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        try:
            self._entries.move_to_end(key)
        except KeyError:
            # Concurrently evicted between the read and the recency refresh
            # (module-level LruMaps serve multi-threaded server construction
            # paths); the value already read stays valid.
            pass
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: KeyT, value: ResultT) -> None:
        self._entries[key] = value
        try:
            self._entries.move_to_end(key)
        except KeyError:
            pass  # concurrently evicted; treat as immediately aged out
        while len(self._entries) > self.capacity:
            try:
                self._entries.popitem(last=False)
            except KeyError:
                break  # another thread emptied the map under us

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, len(self._entries), self.capacity)

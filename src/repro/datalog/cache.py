"""Server-scale fixpoint caching for the semi-naive engine.

PR 1 memoised exactly one fixpoint per engine, keyed by a frozenset snapshot
of the whole database that was rebuilt on *every* ``query()`` call.  The
:mod:`repro.server.pipeline` access pattern — several hot documents queried
round-robin — thrashed that single slot, and even cache hits paid the O(|D|)
snapshot allocation.

:class:`FixpointCache` replaces it with an LRU keyed by cheap content hashes:

* The per-lookup fingerprint is an allocation-free, order-independent XOR
  hash over the facts (:func:`database_content_hash`) — one O(|D|) pass with
  small constants, no frozensets built.  The frozenset snapshot is built
  once at *store* time, never per query: a hit costs the hash pass plus one
  allocation-free exact comparison, where PR 1 rebuilt (and then compared)
  a full tuple-of-frozensets key on every single ``query()`` call.
* Every hash hit is verified exactly, set by set, against the stored
  snapshot before the cached result is returned — a colliding hash can
  never smuggle in a stale fixpoint, not even for an in-place mutation of
  the previously seen database object that happens to preserve the hash
  (CPython hashes collide easily, e.g. ``hash(1) == hash(2**61)``).
* Entries are evicted least-recently-used once ``capacity`` is exceeded, so
  a working set of several hot documents all stay resident.

Thread safety (PR 5): every cache in this module locks internally, the same
way :class:`repro.datalog.registry.PlanRegistry` always has.  A
:class:`repro.api.Session` is meant to be shared by the request threads of a
server front end, and these classes are exactly the session-scale mutable
state those threads contend on — an unlocked ``OrderedDict`` corrupts under
concurrent mutation (lost entries, ``len`` drifting from reality, eviction
loops running forever).  Locks are :class:`threading.RLock` so an owning
cache can wrap a compound operation (counter bump + find) in the same lock
its :class:`VerifiedLruBuckets` core uses internally.

Hit/miss counters are exposed through :meth:`FixpointCache.info` so server
benchmarks can assert cache effectiveness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    NamedTuple,
    Optional,
    Tuple,
    TypeVar,
)

from .ast import Database

ResultT = TypeVar("ResultT")
EntryT = TypeVar("EntryT")

Snapshot = Dict[str, FrozenSet[Tuple[object, ...]]]


class CacheInfo(NamedTuple):
    """Cache statistics, mirroring :func:`functools.lru_cache` conventions."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def database_content_hash(database: Database) -> int:
    """An order-independent content hash of ``{predicate: facts}``.

    XOR-combining per-fact hashes makes the result independent of set and
    dict iteration order without sorting or building frozensets; empty
    relations still contribute (their presence changes the fixpoint shape).
    """
    result = 0
    for predicate, facts in database.items():
        relation_hash = 0
        for fact in facts:
            relation_hash ^= hash(fact)
        result ^= hash((predicate, len(facts), relation_hash))
    return result


class VerifiedLruBuckets(Generic[EntryT]):
    """Fingerprint-bucketed LRU storage with caller-supplied verification.

    The machinery shared by :class:`FixpointCache` and
    :class:`repro.datalog.registry.PlanRegistry`: entries live in hash
    buckets keyed by a cheap content fingerprint, a bucket hit is
    disambiguated by an exact ``matches`` predicate (hash quality is a
    performance concern, never a correctness one), and hit/miss accounting
    lives in the owning cache.

    Recency is tracked **per entry**, not per bucket: every entry carries
    its own slot in one global LRU order, a verified ``find`` refreshes
    only the matched entry, and eviction drops the globally
    least-recently-used *entry*.  (The previous per-bucket order was unfair
    under fingerprint collisions: a hash-colliding hot entry sharing a
    bucket with a cold one could be evicted — the cold bucket-mate dragged
    it down — or wrongly kept alive by it.)

    All operations are serialised by ``self.lock``.  Owners may pass their
    own :class:`threading.RLock` so compound operations (counter bump +
    find, find-or-insert) run under one lock without deadlocking on
    re-entry; standalone instances create their own.
    """

    __slots__ = ("capacity", "lock", "_buckets", "_order", "_next_seq")

    def __init__(self, capacity: int, lock: Optional[threading.RLock] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.lock = lock if lock is not None else threading.RLock()
        # Per-fingerprint buckets of entries, each entry under a unique
        # sequence number that doubles as its slot in the global LRU order.
        self._buckets: Dict[int, "Dict[int, EntryT]"] = {}
        self._order: "OrderedDict[int, int]" = OrderedDict()  # seq -> fingerprint
        self._next_seq = 0

    def __len__(self) -> int:
        with self.lock:
            return len(self._order)

    def find(
        self, fingerprint: int, matches: Callable[[EntryT], bool]
    ) -> Optional[EntryT]:
        """The verified entry under ``fingerprint``, refreshing its recency."""
        with self.lock:
            bucket = self._buckets.get(fingerprint)
            if bucket is None:
                return None
            for seq, entry in bucket.items():
                if matches(entry):
                    self._order.move_to_end(seq)
                    return entry
            return None

    def insert(self, fingerprint: int, entry: EntryT) -> None:
        """Insert ``entry`` as most recent, evicting the LRU entry past capacity."""
        with self.lock:
            seq = self._next_seq
            self._next_seq += 1
            self._buckets.setdefault(fingerprint, {})[seq] = entry
            self._order[seq] = fingerprint
            while len(self._order) > self.capacity:
                oldest_seq, oldest_fingerprint = next(iter(self._order.items()))
                del self._order[oldest_seq]
                oldest_bucket = self._buckets[oldest_fingerprint]
                del oldest_bucket[oldest_seq]
                if not oldest_bucket:
                    del self._buckets[oldest_fingerprint]

    def clear(self) -> None:
        with self.lock:
            self._buckets.clear()
            self._order.clear()

    # -- pickling (the distrib worker protocol) --------------------------
    #
    # Locks cannot cross process boundaries.  A pickled bucket store ships
    # its entries and recency order but *not* its lock; the unpickled copy
    # gets a fresh, private RLock.  Owners that shared one lock with the
    # buckets (FixpointCache, PlanRegistry) re-wire the sharing in their
    # own ``__setstate__``.
    def __getstate__(self):
        with self.lock:
            return {
                "capacity": self.capacity,
                "buckets": {
                    fingerprint: dict(bucket)
                    for fingerprint, bucket in self._buckets.items()
                },
                "order": OrderedDict(self._order),
                "next_seq": self._next_seq,
            }

    def __setstate__(self, state) -> None:
        self.capacity = state["capacity"]
        self.lock = threading.RLock()
        self._buckets = state["buckets"]
        self._order = state["order"]
        self._next_seq = state["next_seq"]


class _Entry(Generic[ResultT]):
    __slots__ = ("snapshot", "result")

    def __init__(self, snapshot: Snapshot, result: ResultT) -> None:
        self.snapshot = snapshot
        self.result = result


def _snapshot_matches(snapshot: Snapshot, database: Database) -> bool:
    if len(snapshot) != len(database):
        return False
    for predicate, facts in database.items():
        stored = snapshot.get(predicate)
        if stored is None or stored != facts:
            return False
    return True


class FixpointCache(Generic[ResultT]):
    """An LRU of evaluated fixpoints, keyed by cheap content fingerprints.

    ``lookup`` returns ``(fingerprint, result-or-None)``; on a miss the
    caller evaluates and calls ``store`` with the same fingerprint.  Entries
    whose hashes collide share a bucket and are disambiguated by exact
    verification, so correctness never depends on hash quality.

    Thread-safe: lookups, stores and counter updates run under one internal
    lock (shared with the bucket core), so concurrent ``query()`` calls on
    one shared engine neither corrupt the LRU structure nor lose counter
    increments.  A racing lookup/evaluate/store pair is handled by
    ``store`` refreshing exact duplicates in place — both threads compute
    the same fixpoint, one entry survives.
    """

    __slots__ = ("hits", "misses", "_entries", "_lock")

    def __init__(self, capacity: int = 8) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        self._entries: VerifiedLruBuckets[_Entry[ResultT]] = VerifiedLruBuckets(
            capacity, lock=self._lock
        )

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, database: Database) -> Tuple[int, Optional[ResultT]]:
        # The O(|D|) hash pass reads only the caller's database — no shared
        # state — so it runs outside the lock.
        fingerprint = database_content_hash(database)
        with self._lock:
            entry = self._entries.find(
                fingerprint, lambda entry: _snapshot_matches(entry.snapshot, database)
            )
            if entry is not None:
                self.hits += 1
                return fingerprint, entry.result
            self.misses += 1
            return fingerprint, None

    def store(self, fingerprint: int, database: Database, result: ResultT) -> None:
        # Exact duplicates refresh the existing entry in place: repeated
        # stores of one database (callers skipping lookup, or racing
        # lookup/store pairs) must not inflate the size and evict hot
        # documents that are genuinely distinct.
        with self._lock:
            entry = self._entries.find(
                fingerprint, lambda entry: _snapshot_matches(entry.snapshot, database)
            )
            if entry is not None:
                entry.result = result
                return
            snapshot: Snapshot = {
                predicate: frozenset(facts) for predicate, facts in database.items()
            }
            self._entries.insert(fingerprint, _Entry(snapshot, result))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self.hits, self.misses, len(self._entries), self.capacity)

    def __getstate__(self):
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": self._entries,
            }

    def __setstate__(self, state) -> None:
        self.hits = state["hits"]
        self.misses = state["misses"]
        self._lock = threading.RLock()
        self._entries = state["entries"]
        # Restore the shared-lock invariant: one lock serves the counters
        # and the bucket core.
        self._entries.lock = self._lock


KeyT = TypeVar("KeyT")
_MISSING = object()


class LruMap(Generic[KeyT, ResultT]):
    """A bounded least-recently-used mapping with hit/miss counters.

    For caches whose keys are already exact content fingerprints (tree
    fingerprints, automaton signatures) — no hash-then-verify step needed.
    Shared by the monadic ground pipeline, the automata evaluator cache and
    the Elog interpreter caches.

    Thread-safe: ``get``/``put``/``clear``/``info`` serialise on an
    internal lock, so the recency refresh, the eviction loop and the
    counters stay consistent under concurrent access (module-level and
    session-level LruMaps serve multi-threaded server paths).
    """

    __slots__ = ("capacity", "hits", "misses", "_entries", "_lock")

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[KeyT, ResultT]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: KeyT) -> Optional[ResultT]:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: KeyT, value: ResultT) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def values(self) -> List[ResultT]:
        """A snapshot of the cached values, LRU → MRU (no recency refresh).

        Introspection only (e.g. ``Session.engine_info`` aggregating over
        its memoised evaluators) — iterating must not perturb eviction.
        """
        with self._lock:
            return list(self._entries.values())

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self.hits, self.misses, len(self._entries), self.capacity)

    def __getstate__(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "entries": OrderedDict(self._entries),
            }

    def __setstate__(self, state) -> None:
        self.capacity = state["capacity"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self._entries = state["entries"]
        self._lock = threading.RLock()


class _InFlightBuild:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key build coordination: one builder, everyone shares the result.

    The check-then-build pattern around every memo in the stack
    (``value = memo.get(key) or build()``) is racy under concurrency: N
    threads missing together build N instances, and N-1 of them are wasted
    work holding wasted memory (for engines, that is a full compilation
    each).  ``run`` closes the race: the first thread to miss becomes the
    *builder*; every other thread parks on an event and receives the
    builder's instance, so **at most one instance per key is ever
    constructed** (the :class:`repro.api.Session` memo guarantee).

    ``lookup``/``store`` run under the coordination lock — keep them to
    memo reads/writes.  ``build`` runs outside it, so slow compilations do
    not serialise unrelated keys.  A failing build propagates to the
    builder and wakes the waiters, which retry from the top (the next one
    through becomes the new builder) — an exception never wedges a key.
    """

    __slots__ = ("_lock", "_inflight")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[object, _InFlightBuild] = {}

    # In-flight builds are thread-local coordination; a pickled copy starts
    # with nothing in flight (events and locks cannot cross processes).
    def __getstate__(self):
        return {}

    def __setstate__(self, state) -> None:
        self._lock = threading.Lock()
        self._inflight = {}

    def run(
        self,
        key: object,
        lookup: Callable[[], Optional[ResultT]],
        build: Callable[[], ResultT],
        store: Callable[[ResultT], None],
    ) -> ResultT:
        while True:
            with self._lock:
                value = lookup()
                if value is not None:
                    return value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _InFlightBuild()
                    building = True
                else:
                    building = False
            if not building:
                flight.event.wait()
                if flight.error is None:
                    return flight.value  # type: ignore[return-value]
                continue  # the builder failed; loop and maybe build ourselves
            # Any failure — build() or store() — must release the key and
            # wake the waiters, or the key is wedged forever.
            try:
                value = build()
                with self._lock:
                    store(value)
            except BaseException as error:
                flight.error = error
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            flight.value = value
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            return value

"""Generic bottom-up datalog evaluation (semi-naive, stratified negation).

This is the reference engine the theory packages compare against.  It works
for arbitrary (function-free, safe) datalog programs over an extensional
database given as ``{predicate: set of tuples}``.

Evaluation architecture (see ROADMAP.md and docs/ENGINE.md for the full
picture):

1. **Plan compilation** (:mod:`repro.datalog.plan`) — every rule is compiled
   once into a :class:`~repro.datalog.plan.RulePlan`: a variable→slot
   layout, precompiled filters and head projection, and a per-(delta-
   position, size-bucket) memo of greedy join orders, each specialised at
   compile time into a chain of per-step closures (with a fused terminal
   step that emits head tuples straight out of the last probe).  Each
   stratum also gets a predicate→(rule, position) trigger map so semi-naive
   iterations fire only the rules a delta actually touches.  Compilation
   happens once per distinct *program*, not per engine: the process-wide
   registry (:mod:`repro.datalog.registry`) shares strata, plans and
   trigger maps across every engine constructed over content-equal programs
   (``share_plans=False`` opts out); join-order memos stay per-engine.
2. **Storage** (:mod:`repro.datalog.columns` / :mod:`repro.datalog.index`)
   — under the default ``storage="columnar"``, relations intern rows into
   append-only arrays and serve probes from lazily materialised posting
   sets (or composite hash keys under ``index_keys="full"``) that catch up
   to the row array in batch on first use after appends.  The tuple-at-a-
   time :class:`~repro.datalog.index.IndexedDatabase` stays behind
   ``storage="tuple"``; both sit behind one storage protocol, so compiled
   plans are storage-agnostic.
3. **Semi-naive loop** — a naive first round followed by delta iteration.
   Columnar deltas are :class:`~repro.datalog.columns.ColumnarWindow`
   row-id range slices over the interned row arrays (no per-iteration
   copying); derived facts land via batched ``add_batch`` appends.  The
   tuple path recycles delta storage across iterations (bucket
   dictionaries cleared in place) with batched index updates.
4. **Fixpoint caching** (:mod:`repro.datalog.cache`) — ``fixpoint()`` keeps
   an LRU of evaluated databases keyed by cheap content hashes with exact
   verification on hit, sized for the several hot documents of the
   :mod:`repro.server.pipeline` access pattern.

The tuple-at-a-time storage is kept behind ``storage="tuple"``, the PR-1
plan-free indexed join behind ``use_plans=False``, and the seed nested-loop
strategy behind ``use_index=False`` as ablation baselines; property tests
assert all paths compute identical fixpoints.

The specialised linear-time evaluation for monadic datalog over trees
(Theorem 2.4) lives in :mod:`repro.mdatalog.evaluator`; property-based tests
check both engines agree.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .ast import Atom, Constant, Database, Literal, Program, Rule, Term, Variable
from .cache import CacheInfo, FixpointCache
from .columns import ColumnarDatabase, ColumnarWindow, StorageStats
from .index import IndexedDatabase, RelationIndex
from .options import UNSET, EngineOptions, resolve_options
from .plan import PlanMemo, RulePlan, compile_stratum
from .registry import PlanRegistry, shared_registry
from .stratify import stratify

Substitution = Dict[Variable, object]

_EMPTY_EXTENSION: FrozenSet[Tuple[object, ...]] = frozenset()


class EngineInfo(NamedTuple):
    """Storage/executor counters of one engine (``engine_info()``).

    ``closure_compiles`` counts the specialised executor chains resident in
    this engine's join-order memos (one per distinct (delta position,
    size-bucket signature) the fixpoints actually exercised); the storage
    counters come from :class:`~repro.datalog.columns.StorageStats` and
    stay zero under ``storage="tuple"``.
    """

    storage: str
    index_keys: str
    rows_interned: int
    posting_intersections: int
    delta_batches: int
    delta_rows: int
    max_delta_batch: int
    closure_compiles: int


def aggregate_engine_info(
    storage: str, index_keys: str, infos: Iterable[EngineInfo]
) -> EngineInfo:
    """Sum counters across engines (:meth:`repro.api.Session.engine_info`)."""
    rows = intersections = batches = delta_rows = compiles = 0
    max_batch = 0
    for info in infos:
        rows += info.rows_interned
        intersections += info.posting_intersections
        batches += info.delta_batches
        delta_rows += info.delta_rows
        compiles += info.closure_compiles
        if info.max_delta_batch > max_batch:
            max_batch = info.max_delta_batch
    return EngineInfo(
        storage, index_keys, rows, intersections, batches, delta_rows, max_batch, compiles
    )


class EvaluationError(RuntimeError):
    """Raised on unsafe rules or missing relations during evaluation."""


def _match_atom(
    atom: Atom,
    fact: Tuple[object, ...],
    substitution: Substitution,
) -> Optional[Substitution]:
    """Try to extend ``substitution`` so that ``atom`` matches ``fact``."""
    if len(atom.terms) != len(fact):
        return None
    extended = substitution
    copied = False
    for term, value in zip(atom.terms, fact):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = value
            elif bound != value:
                return None
    return extended


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _ground_terms(terms: Sequence[Term], substitution: Substitution) -> Tuple[object, ...]:
    values: List[object] = []
    for term in terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            if term not in substitution:
                raise EvaluationError(f"unbound variable {term} in rule head")
            values.append(substitution[term])
    return tuple(values)


class EvaluationResult:
    """An immutable view of a computed fixpoint.

    Returned by :meth:`SemiNaiveEngine.fixpoint` and cached by the engine so
    that repeated queries over the same database (the
    :mod:`repro.server.pipeline` access pattern) do not recompute.
    """

    __slots__ = ("_facts", "_views")

    def __init__(self, facts: Database) -> None:
        self._facts = facts
        self._views: Dict[str, FrozenSet[Tuple[object, ...]]] = {}

    def query(self, predicate: str) -> FrozenSet[Tuple[object, ...]]:
        """The extension of ``predicate`` as an immutable ``frozenset`` view.

        The view is built once per predicate and shared between calls —
        repeated queries are O(1) instead of copying the whole extension.
        Callers that want a mutable copy should take ``set(result.query(p))``.

        A predicate the program never derives — including one it never
        mentions at all — yields the empty extension rather than an error.
        This is the unknown-predicate contract of the whole stack (see
        docs/API.md): queries are lenient, while *declaring* an undefined
        query predicate (``MonadicProgram(query_predicates=...)``) fails
        fast at construction.
        """
        view = self._views.get(predicate)
        if view is None:
            facts = self._facts.get(predicate)
            view = frozenset(facts) if facts else _EMPTY_EXTENSION
            self._views[predicate] = view
        return view

    def facts(self) -> Database:
        """A fresh ``{predicate: facts}`` snapshot of the whole fixpoint."""
        return {predicate: set(facts) for predicate, facts in self._facts.items()}

    def predicates(self) -> Set[str]:
        return set(self._facts)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._facts


class SemiNaiveEngine:
    """Semi-naive bottom-up evaluation with stratified negation.

    Builtin comparison predicates (``lt``, ``le``, ``gt``, ``ge``, ``eq``,
    ``neq``) are evaluated on bound arguments, supporting the paper's
    comparison conditions (Section 3.3).

    Tuning is declared through one :class:`~repro.datalog.options.
    EngineOptions` object (``options=``): ``use_plans=True`` (the default)
    evaluates through the compile-once rule plans of
    :mod:`repro.datalog.plan`; ``use_plans=False`` retains the PR-1 per-call
    indexed join and ``use_index=False`` the original nested-loop join, both
    as ablation baselines.  ``cache_size`` bounds the fixpoint LRU (one
    entry per distinct hot database).

    ``share_plans=True`` (the default) obtains strata, rule plans and
    trigger maps from a shared :class:`~repro.datalog.registry.
    PlanRegistry` — the process-wide singleton, or the registry passed as
    ``registry=`` (a :class:`repro.api.Session` passes its own, so sessions
    never contend on module globals) — so N engines over the same program
    pay one compilation; every piece of database-sized state — join-order
    memos, delta storage, the fixpoint LRU — stays instance-local.
    ``share_plans=False`` compiles privately (the ablation baseline).

    The pre-façade tuning kwargs (``use_index=``, ``use_plans=``,
    ``cache_size=``, ``share_plans=``) still work but emit
    :class:`DeprecationWarning`; new code passes ``options=``.
    """

    BUILTINS = {
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "eq": lambda a, b: a == b,
        "neq": lambda a, b: a != b,
    }

    def __init__(
        self,
        program: Program,
        use_index: object = UNSET,
        use_plans: object = UNSET,
        cache_size: object = UNSET,
        share_plans: object = UNSET,
        *,
        options: Optional[EngineOptions] = None,
        registry: Optional[PlanRegistry] = None,
    ) -> None:
        options = resolve_options(
            "SemiNaiveEngine",
            options,
            {
                "use_index": use_index,
                "use_plans": use_plans,
                "cache_size": cache_size,
                "share_plans": share_plans,
            },
        )
        program.check_safety()
        self._validate_builtins(program)
        self.program = program
        self.options = options
        self.use_index = options.use_index
        self.use_plans = options.effective_use_plans
        self.share_plans = options.effective_share_plans
        self.storage = options.effective_storage
        self._storage_stats = StorageStats()
        self._fixpoint_cache: FixpointCache[EvaluationResult] = FixpointCache(
            options.cache_size
        )
        # Compile-once rule plans plus per-stratum delta trigger maps —
        # shared through the registry by default, compiled privately on
        # ``share_plans=False``.
        self._stratum_plans: List[List[RulePlan]] = []
        self._stratum_triggers: List[Dict[str, List[Tuple[RulePlan, int]]]] = []
        # Statically-seeded planning (repro/analysis/cost.py): seed plans
        # are compiled at registry time; this flag decides whether run()
        # consults them, and index_advice drives eager index builds.
        self._seed_plans = options.effective_use_plans and options.seed_plans
        self._index_advice: Dict[str, Tuple[Tuple[int, ...], ...]] = {}
        if self.share_plans:
            source = registry if registry is not None else shared_registry()
            compiled = source.compiled(program, self.BUILTINS)
            self.strata = compiled.strata
            self._stratum_plans = compiled.stratum_plans
            self._stratum_triggers = compiled.stratum_triggers
            self._index_advice = compiled.index_advice
        else:
            self.strata = stratify(program)
            if self.use_plans:
                for stratum_rules in self.strata:
                    plans, triggers = compile_stratum(stratum_rules, self.BUILTINS)
                    self._stratum_plans.append(plans)
                    self._stratum_triggers.append(triggers)
                if self._seed_plans:
                    from ..analysis.cost import seed_rule_plans

                    self._index_advice = seed_rule_plans(
                        self._stratum_plans, self._stratum_triggers, program
                    )
        # Join-order memos are database-sized state and therefore NEVER
        # shared: one memo per (possibly shared) plan, owned by this engine.
        self._plan_memos: Dict[int, PlanMemo] = {
            id(plan): {} for plans in self._stratum_plans for plan in plans
        }

    def _validate_builtins(self, program: Program) -> None:
        """Builtins are binary comparisons; reject wrong arities up front.

        The seed engine silently dropped substitutions for mis-aried builtin
        atoms, masking user errors (e.g. ``lt(X)`` never firing a rule).
        """
        for rule in program.rules:
            for literal in rule.body:
                atom = literal.atom
                if atom.predicate in self.BUILTINS and atom.arity != 2:
                    raise EvaluationError(
                        f"builtin {atom.predicate!r} expects 2 arguments, "
                        f"got {atom.arity} in rule: {rule}"
                    )

    # ------------------------------------------------------------------
    def evaluate(self, database: Database) -> Database:
        """Return all derived facts (EDB facts included in the result)."""
        if self.storage == "columnar":
            facts: "ColumnarDatabase | IndexedDatabase" = ColumnarDatabase(
                database, self.options.index_keys, self._storage_stats
            )
        else:
            facts = IndexedDatabase(database, self.options.index_keys)
        if self._seed_plans and self._index_advice:
            # Pre-build the access paths the seeded plans will probe — the
            # same ones the lazy path would build on first probe, just
            # before the fixpoint starts instead of mid-join.
            for predicate, keys in self._index_advice.items():
                if not facts.size(predicate):
                    continue
                relation = facts.lookup(predicate)
                for positions in keys:
                    relation.ensure_index(positions)
        if self.storage == "columnar":
            assert isinstance(facts, ColumnarDatabase)
            for plans, triggers in zip(self._stratum_plans, self._stratum_triggers):
                self._evaluate_stratum_columnar(plans, triggers, facts)
        elif self.use_plans:
            assert isinstance(facts, IndexedDatabase)
            for plans, triggers in zip(self._stratum_plans, self._stratum_triggers):
                self._evaluate_stratum_planned(plans, triggers, facts)
        else:
            assert isinstance(facts, IndexedDatabase)
            for stratum_rules in self.strata:
                self._evaluate_stratum(stratum_rules, facts)
        return facts.to_database()

    def engine_info(self) -> EngineInfo:
        """Storage/executor counters (see :class:`EngineInfo`).

        Counters are monotonic across every ``evaluate``/``fixpoint`` this
        engine ran, like :meth:`fixpoint_cache_info`.
        """
        stats = self._storage_stats
        return EngineInfo(
            storage=self.storage,
            index_keys=self.options.index_keys,
            rows_interned=stats.rows_interned,
            posting_intersections=stats.posting_intersections,
            delta_batches=stats.delta_batches,
            delta_rows=stats.delta_rows,
            max_delta_batch=stats.max_delta_batch,
            closure_compiles=sum(len(memo) for memo in self._plan_memos.values()),
        )

    def fixpoint(self, database: Database) -> EvaluationResult:
        """Evaluate with LRU memoisation per database content.

        Lookups pay one allocation-free O(|D|) content-hash pass plus, on a
        hash hit, one exact comparison against the stored snapshot (built
        once at store time, unlike the PR-1 cache that rebuilt a frozenset
        key per query) — a stale hit can never return a wrong fixpoint.
        The LRU holds several entries so the multi-document server working
        set does not thrash the cache.
        """
        fingerprint, cached = self._fixpoint_cache.lookup(database)
        if cached is not None:
            return cached
        result = EvaluationResult(self.evaluate(database))
        self._fixpoint_cache.store(fingerprint, database, result)
        return result

    def query(self, database: Database, predicate: str) -> FrozenSet[Tuple[object, ...]]:
        """Evaluate (cached) and return the extension of ``predicate``."""
        return self.fixpoint(database).query(predicate)

    def fixpoint_cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the fixpoint LRU (for tests/benchmarks)."""
        return self._fixpoint_cache.info()

    def plan_memo_counts(self) -> List[int]:
        """Compiled join plans per rule in this engine's instance-local
        memos (bucket-memoisation introspection for tests/benchmarks)."""
        return [
            len(self._plan_memos[id(plan)])
            for plans in self._stratum_plans
            for plan in plans
        ]

    def clear_fixpoint_cache(self) -> None:
        self._fixpoint_cache.clear()

    # ------------------------------------------------------------------
    # Planned evaluation (compile-once rule plans, delta compaction)
    # ------------------------------------------------------------------
    def _evaluate_stratum_planned(
        self,
        plans: List[RulePlan],
        triggers: Dict[str, List[Tuple[RulePlan, int]]],
        facts: IndexedDatabase,
    ) -> None:
        add_fact = facts.add_fact
        memos = self._plan_memos
        use_seeds = self._seed_plans
        # Naive first round: every rule fires once without delta restriction.
        collected: Dict[str, List[Tuple[object, ...]]] = {}
        for plan in plans:
            predicate = plan.head_predicate
            new_facts = None
            for derived in plan.run(facts, memo=memos[id(plan)], use_seeds=use_seeds):
                if add_fact(predicate, derived):
                    if new_facts is None:
                        new_facts = collected.setdefault(predicate, [])
                    new_facts.append(derived)
        # Semi-naive iteration: two delta databases are recycled across all
        # iterations (cleared in place, loaded with batched index updates)
        # instead of allocating a fresh IndexedDatabase per round.
        delta = IndexedDatabase()
        spare = IndexedDatabase()
        delta.load(collected)
        while delta:
            collected = {}
            for delta_predicate, relation in delta.relations.items():
                if not relation:
                    continue
                for plan, position in triggers.get(delta_predicate, ()):
                    predicate = plan.head_predicate
                    new_facts = None
                    for derived in plan.run(
                        facts, delta, position, memos[id(plan)], use_seeds
                    ):
                        if add_fact(predicate, derived):
                            if new_facts is None:
                                new_facts = collected.setdefault(predicate, [])
                            new_facts.append(derived)
            spare.clear()
            spare.load(collected)
            delta, spare = spare, delta

    # ------------------------------------------------------------------
    # Columnar evaluation (batched deltas over append-only row arrays)
    # ------------------------------------------------------------------
    def _evaluate_stratum_columnar(
        self,
        plans: List[RulePlan],
        triggers: Dict[str, List[Tuple[RulePlan, int]]],
        facts: ColumnarDatabase,
    ) -> None:
        """Semi-naive iteration as watermark advancement.

        Columnar relations are append-only with interned rows, so "the
        facts derived last iteration" is exactly the row-id range between
        two watermarks — no delta database is built, cleared or re-indexed.
        Each round advances one watermark per derived predicate and slides
        a reusable :class:`~repro.datalog.columns.ColumnarWindow` over the
        new range; everything else (plans, triggers, filters) is the same
        machinery as the tuple path.
        """
        memos = self._plan_memos
        use_seeds = self._seed_plans
        stats = self._storage_stats
        heads = list({plan.head_predicate for plan in plans})
        # Rows at or past the watermark were not yet applied as a delta.
        consumed = {predicate: facts.row_count(predicate) for predicate in heads}
        # Naive first round: every rule fires once without delta
        # restriction; derived facts append past the watermarks.
        for plan in plans:
            derived = plan.run(facts, memo=memos[id(plan)], use_seeds=use_seeds)
            if derived:
                facts.add_batch(plan.head_predicate, derived)
        # Per-head sweep state, resolved once: the reusable delta window,
        # the head relation the derivations append into, and each trigger's
        # (run, position, memo, target-relation) quad — the sweep below runs
        # tens of thousands of times on recursive workloads, so no dict or
        # attribute lookups happen inside it.
        scratch = [predicate for predicate in heads if predicate not in facts]
        # Mutable sweep entries: [window, rows, consumed-watermark, fired].
        # The row array reference is stable (relations persist across the
        # whole stratum), so the high watermark is a bare len() per sweep.
        sweep = []
        for predicate in heads:
            fired = [
                (plan.run, position, memos[id(plan)], facts.relation(plan.head_predicate))
                for plan, position in triggers.get(predicate, ())
            ]
            window = facts.window(predicate)
            sweep.append([window, window.relation.rows, consumed[predicate], fired])
        batches = rows_applied = max_batch = 0
        try:
            while True:
                advanced = False
                for entry in sweep:
                    window, rows, lo, fired = entry
                    hi = len(rows)
                    if hi <= lo:
                        continue
                    advanced = True
                    entry[2] = hi
                    if not fired:
                        continue
                    batches += 1
                    rows_applied += hi - lo
                    if hi - lo > max_batch:
                        max_batch = hi - lo
                    window.lo = lo
                    window.hi = hi
                    for run, position, memo, head_rel in fired:
                        derived = run(facts, window, position, memo, use_seeds)
                        if derived:
                            head_rel.add_batch(derived)
                if not advanced:
                    facts.prune_empty(scratch)
                    return
        finally:
            stats.delta_batches += batches
            stats.delta_rows += rows_applied
            if max_batch > stats.max_delta_batch:
                stats.max_delta_batch = max_batch

    # ------------------------------------------------------------------
    # Legacy (PR-1) evaluation loop — ablation baseline for the plans
    # ------------------------------------------------------------------
    def _evaluate_stratum(self, rules: List[Rule], facts: IndexedDatabase) -> None:
        head_predicates = {rule.head.predicate for rule in rules}
        # Naive first round, then semi-naive iteration on the deltas.
        delta = IndexedDatabase()
        for rule in rules:
            for predicate, derived in self._apply_rule(rule, facts, None):
                if facts.add_fact(predicate, derived):
                    delta.add_fact(predicate, derived)
        while delta:
            new_delta = IndexedDatabase()
            for rule in rules:
                relevant = any(
                    not literal.negated
                    and literal.atom.predicate in head_predicates
                    and delta.size(literal.atom.predicate)
                    for literal in rule.body
                )
                if not relevant:
                    continue
                for predicate, derived in self._apply_rule(rule, facts, delta):
                    if facts.add_fact(predicate, derived):
                        new_delta.add_fact(predicate, derived)
            delta = new_delta

    def _apply_rule(
        self,
        rule: Rule,
        facts: IndexedDatabase,
        delta: Optional[IndexedDatabase],
    ) -> Iterable[Tuple[str, Tuple[object, ...]]]:
        """Yield (predicate, fact) pairs derivable by ``rule``.

        When ``delta`` is given, at least one positive body literal must be
        matched against the delta relation (semi-naive restriction); this is
        implemented by trying each positive literal as the "delta position".
        """
        positive_positions = [
            index for index, literal in enumerate(rule.body) if not literal.negated
        ]
        if delta is None or not positive_positions:
            yield from self._join(rule, facts, None, -1)
            return
        seen: Set[Tuple[object, ...]] = set()
        for delta_position in positive_positions:
            predicate = rule.body[delta_position].atom.predicate
            if not delta.size(predicate):
                continue
            for produced in self._join(rule, facts, delta, delta_position):
                if produced[1] not in seen:
                    seen.add(produced[1])
                    yield produced

    def _join(
        self,
        rule: Rule,
        facts: IndexedDatabase,
        delta: Optional[IndexedDatabase],
        delta_position: int,
    ) -> Iterable[Tuple[str, Tuple[object, ...]]]:
        if self.use_index:
            yield from self._join_indexed(rule, facts, delta, delta_position)
        else:
            yield from self._join_nested_loop(rule, facts, delta, delta_position)

    # ------------------------------------------------------------------
    # Indexed join (PR-1 per-call strategy)
    # ------------------------------------------------------------------
    def _join_indexed(
        self,
        rule: Rule,
        facts: IndexedDatabase,
        delta: Optional[IndexedDatabase],
        delta_position: int,
    ) -> Iterable[Tuple[str, Tuple[object, ...]]]:
        # Split the body into relational literals (joined via the index) and
        # filters (builtins and negated literals, hoisted below).
        relational: List[int] = []
        pending: List[Literal] = []
        for position, literal in enumerate(rule.body):
            if literal.negated or literal.atom.predicate in self.BUILTINS:
                pending.append(literal)
            else:
                relational.append(position)

        def relation_for(position: int) -> RelationIndex:
            predicate = rule.body[position].atom.predicate
            if position == delta_position and delta is not None:
                return delta.lookup(predicate)
            return facts.lookup(predicate)

        order = self._join_order(rule, relational, delta_position, relation_for)

        substitutions: List[Substitution] = [{}]
        bound: Set[Variable] = set()
        substitutions, pending = self._apply_ready_filters(
            substitutions, pending, bound, facts
        )
        for position in order:
            if not substitutions:
                return
            atom = rule.body[position].atom
            relation = relation_for(position)
            bound_positions = tuple(
                index
                for index, term in enumerate(atom.terms)
                if isinstance(term, Constant) or term in bound
            )
            bound_terms = tuple(atom.terms[index] for index in bound_positions)
            next_substitutions: List[Substitution] = []
            for substitution in substitutions:
                key = tuple(
                    term.value if isinstance(term, Constant) else substitution[term]
                    for term in bound_terms
                )
                for fact in relation.probe(bound_positions, key):
                    extended = _match_atom(atom, fact, substitution)
                    if extended is not None:
                        next_substitutions.append(extended)
            substitutions = next_substitutions
            bound |= atom.variables()
            substitutions, pending = self._apply_ready_filters(
                substitutions, pending, bound, facts
            )
        # Leftover filters have variables no positive literal binds; grounding
        # them surfaces the unbound-variable error exactly like the seed path.
        for substitution in substitutions:
            if all(
                self._filter_passes(literal, substitution, facts)
                for literal in pending
            ):
                yield rule.head.predicate, _ground_terms(rule.head.terms, substitution)

    def _join_order(
        self,
        rule: Rule,
        relational: List[int],
        delta_position: int,
        relation_for,
    ) -> List[int]:
        """Greedy selectivity ordering of the positive relational literals.

        The delta literal (when present) seeds the order — it carries the
        novelty and is typically the smallest relation.  Each following pick
        maximises the number of already-bound terms (constants plus variables
        bound by earlier literals) and tie-breaks on smaller relation size,
        so probes run with the longest available prefix.
        """
        remaining = list(relational)
        order: List[int] = []
        bound: Set[Variable] = set()
        if delta_position in remaining:
            remaining.remove(delta_position)
            order.append(delta_position)
            bound |= rule.body[delta_position].atom.variables()
        while remaining:
            def selectivity(position: int) -> Tuple[int, int]:
                atom = rule.body[position].atom
                bound_terms = sum(
                    1
                    for term in atom.terms
                    if isinstance(term, Constant) or term in bound
                )
                return (bound_terms, -len(relation_for(position)))

            best = max(remaining, key=selectivity)
            remaining.remove(best)
            order.append(best)
            bound |= rule.body[best].atom.variables()
        return order

    def _apply_ready_filters(
        self,
        substitutions: List[Substitution],
        pending: List[Literal],
        bound: Set[Variable],
        facts: IndexedDatabase,
    ) -> Tuple[List[Substitution], List[Literal]]:
        """Apply every pending filter whose variables are all bound."""
        if not pending or not substitutions:
            return substitutions, pending
        ready: List[Literal] = []
        still_pending: List[Literal] = []
        for literal in pending:
            (ready if literal.variables() <= bound else still_pending).append(literal)
        if not ready:
            return substitutions, pending
        filtered = [
            substitution
            for substitution in substitutions
            if all(self._filter_passes(literal, substitution, facts) for literal in ready)
        ]
        return filtered, still_pending

    def _filter_passes(
        self, literal: Literal, substitution: Substitution, facts: IndexedDatabase
    ) -> bool:
        predicate = literal.atom.predicate
        values = _ground_terms(literal.atom.terms, substitution)
        if predicate in self.BUILTINS:
            holds = self.BUILTINS[predicate](*values)
            return not holds if literal.negated else holds
        # Negated relational literal; its relation is complete (stratified
        # negation evaluates strictly lower strata first).
        return not facts.contains_fact(predicate, values)

    # ------------------------------------------------------------------
    # Seed nested-loop join (ablation baseline)
    # ------------------------------------------------------------------
    def _join_nested_loop(
        self,
        rule: Rule,
        facts: IndexedDatabase,
        delta: Optional[IndexedDatabase],
        delta_position: int,
    ) -> Iterable[Tuple[str, Tuple[object, ...]]]:
        substitutions: List[Substitution] = [{}]
        for index, literal in enumerate(rule.body):
            if literal.negated:
                continue
            predicate = literal.atom.predicate
            if predicate in self.BUILTINS:
                continue
            if index == delta_position and delta is not None:
                relation = delta.facts_of(predicate)
            else:
                relation = facts.facts_of(predicate)
            next_substitutions: List[Substitution] = []
            for substitution in substitutions:
                for fact in relation:
                    extended = _match_atom(literal.atom, fact, substitution)
                    if extended is not None:
                        next_substitutions.append(extended)
            substitutions = next_substitutions
            if not substitutions:
                return
        # Builtins and negative literals act as filters over full substitutions.
        for substitution in substitutions:
            if not self._passes_filters(rule, substitution, facts):
                continue
            yield rule.head.predicate, _ground_terms(rule.head.terms, substitution)

    def _passes_filters(
        self, rule: Rule, substitution: Substitution, facts: IndexedDatabase
    ) -> bool:
        for literal in rule.body:
            predicate = literal.atom.predicate
            if predicate in self.BUILTINS or literal.negated:
                if not self._filter_passes(literal, substitution, facts):
                    return False
        return True


def evaluate_program(program: Program, database: Database) -> Database:
    """One-shot helper: evaluate ``program`` over ``database``."""
    return SemiNaiveEngine(program).evaluate(database)


def query_program(
    program: Program, database: Database, predicate: str
) -> FrozenSet[Tuple[object, ...]]:
    """One-shot helper: the extension of ``predicate`` after evaluation."""
    return SemiNaiveEngine(program).query(database, predicate)

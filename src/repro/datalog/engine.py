"""Generic bottom-up datalog evaluation (semi-naive, stratified negation).

This is the reference engine the theory packages compare against.  It works
for arbitrary (function-free, safe) datalog programs over an extensional
database given as ``{predicate: set of tuples}``.

The specialised linear-time evaluation for monadic datalog over trees
(Theorem 2.4) lives in :mod:`repro.mdatalog.evaluator`; property-based tests
check both engines agree.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import Atom, Constant, Database, Literal, Program, Rule, Term, Variable
from .stratify import stratify

Substitution = Dict[Variable, object]


class EvaluationError(RuntimeError):
    """Raised on unsafe rules or missing relations during evaluation."""


def _match_atom(
    atom: Atom,
    fact: Tuple[object, ...],
    substitution: Substitution,
) -> Optional[Substitution]:
    """Try to extend ``substitution`` so that ``atom`` matches ``fact``."""
    if len(atom.terms) != len(fact):
        return None
    extended = substitution
    copied = False
    for term, value in zip(atom.terms, fact):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = value
            elif bound != value:
                return None
    return extended


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _ground_terms(terms: Sequence[Term], substitution: Substitution) -> Tuple[object, ...]:
    values: List[object] = []
    for term in terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            if term not in substitution:
                raise EvaluationError(f"unbound variable {term} in rule head")
            values.append(substitution[term])
    return tuple(values)


class SemiNaiveEngine:
    """Semi-naive bottom-up evaluation with stratified negation.

    Builtin comparison predicates (``lt``, ``le``, ``gt``, ``ge``, ``eq``,
    ``neq``) are evaluated on bound arguments, supporting the paper's
    comparison conditions (Section 3.3).
    """

    BUILTINS = {
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "eq": lambda a, b: a == b,
        "neq": lambda a, b: a != b,
    }

    def __init__(self, program: Program) -> None:
        program.check_safety()
        self.program = program
        self.strata = stratify(program)

    # ------------------------------------------------------------------
    def evaluate(self, database: Database) -> Database:
        """Return all derived facts (EDB facts included in the result)."""
        facts: Database = defaultdict(set)
        for predicate, tuples in database.items():
            facts[predicate] |= set(tuples)
        for stratum_rules in self.strata:
            self._evaluate_stratum(stratum_rules, facts)
        return dict(facts)

    def query(self, database: Database, predicate: str) -> Set[Tuple[object, ...]]:
        """Evaluate and return the extension of ``predicate``."""
        return set(self.evaluate(database).get(predicate, set()))

    # ------------------------------------------------------------------
    def _evaluate_stratum(self, rules: List[Rule], facts: Database) -> None:
        head_predicates = {rule.head.predicate for rule in rules}
        # Naive first round, then semi-naive iteration on the deltas.
        delta: Database = defaultdict(set)
        for rule in rules:
            for derived in self._apply_rule(rule, facts, None):
                if derived[1] not in facts[derived[0]]:
                    facts[derived[0]].add(derived[1])
                    delta[derived[0]].add(derived[1])
        while any(delta.values()):
            new_delta: Database = defaultdict(set)
            for rule in rules:
                relevant = any(
                    not literal.negated and literal.atom.predicate in delta
                    and literal.atom.predicate in head_predicates
                    for literal in rule.body
                )
                if not relevant:
                    continue
                for derived in self._apply_rule(rule, facts, delta):
                    if derived[1] not in facts[derived[0]]:
                        facts[derived[0]].add(derived[1])
                        new_delta[derived[0]].add(derived[1])
            delta = new_delta

    def _apply_rule(
        self,
        rule: Rule,
        facts: Database,
        delta: Optional[Database],
    ) -> Iterable[Tuple[str, Tuple[object, ...]]]:
        """Yield (predicate, fact) pairs derivable by ``rule``.

        When ``delta`` is given, at least one positive body literal must be
        matched against the delta relation (semi-naive restriction); this is
        implemented by trying each positive literal as the "delta position".
        """
        positive_positions = [
            index for index, literal in enumerate(rule.body) if not literal.negated
        ]
        if delta is None or not positive_positions:
            yield from self._join(rule, facts, None, -1)
            return
        seen: Set[Tuple[object, ...]] = set()
        for delta_position in positive_positions:
            predicate = rule.body[delta_position].atom.predicate
            if predicate not in delta or not delta[predicate]:
                continue
            for produced in self._join(rule, facts, delta, delta_position):
                if produced[1] not in seen:
                    seen.add(produced[1])
                    yield produced

    def _join(
        self,
        rule: Rule,
        facts: Database,
        delta: Optional[Database],
        delta_position: int,
    ) -> Iterable[Tuple[str, Tuple[object, ...]]]:
        substitutions: List[Substitution] = [{}]
        for index, literal in enumerate(rule.body):
            if literal.negated:
                continue
            predicate = literal.atom.predicate
            if predicate in self.BUILTINS:
                continue
            if index == delta_position and delta is not None:
                relation = delta.get(predicate, set())
            else:
                relation = facts.get(predicate, set())
            next_substitutions: List[Substitution] = []
            for substitution in substitutions:
                for fact in relation:
                    extended = _match_atom(literal.atom, fact, substitution)
                    if extended is not None:
                        next_substitutions.append(extended)
            substitutions = next_substitutions
            if not substitutions:
                return
        # Builtins and negative literals act as filters over full substitutions.
        for substitution in substitutions:
            if not self._passes_filters(rule, substitution, facts):
                continue
            yield rule.head.predicate, _ground_terms(rule.head.terms, substitution)

    def _passes_filters(
        self, rule: Rule, substitution: Substitution, facts: Database
    ) -> bool:
        for literal in rule.body:
            predicate = literal.atom.predicate
            if predicate in self.BUILTINS and not literal.negated:
                values = _ground_terms(literal.atom.terms, substitution)
                if len(values) != 2 or not self.BUILTINS[predicate](*values):
                    return False
            elif literal.negated:
                values = _ground_terms(literal.atom.terms, substitution)
                if predicate in self.BUILTINS:
                    if self.BUILTINS[predicate](*values):
                        return False
                elif values in facts.get(predicate, set()):
                    return False
        return True


def evaluate_program(program: Program, database: Database) -> Database:
    """One-shot helper: evaluate ``program`` over ``database``."""
    return SemiNaiveEngine(program).evaluate(database)


def query_program(
    program: Program, database: Database, predicate: str
) -> Set[Tuple[object, ...]]:
    """One-shot helper: the extension of ``predicate`` after evaluation."""
    return SemiNaiveEngine(program).query(database, predicate)

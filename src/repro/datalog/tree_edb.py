"""The tau_ur extensional database of a document tree.

Section 2.2 defines the relational structure

    t_ur = <dom, root, leaf, (label_a)_{a in Sigma},
            firstchild, nextsibling, lastsibling>

This module materialises those relations (plus the commonly used ``child``
relation and the derived ``firstsibling`` unary relation mentioned in
Section 4) as a datalog database whose domain elements are the document's
preorder indexes.  Keeping the domain integral makes facts hashable and keeps
the generic engine fast.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..tree.document import Document
from ..tree.node import Node
from .ast import Database

# Relation names of the tau_ur signature (label relations are "label_<a>").
TAU_UR_UNARY = ("root", "leaf", "lastsibling", "firstsibling")
TAU_UR_BINARY = ("firstchild", "nextsibling", "lastchild")
EXTENDED_BINARY = ("child",)


def label_predicate(label: str) -> str:
    """The EDB predicate name for label ``a`` (``label_a`` in the paper)."""
    return f"label_{label}"


def tree_signature(document: Document, include_child: bool = True) -> FrozenSet[str]:
    """The EDB predicate names available for ``document``."""
    names: Set[str] = set(TAU_UR_UNARY) | set(TAU_UR_BINARY)
    if include_child:
        names |= set(EXTENDED_BINARY)
    for label in document.labels():
        names.add(label_predicate(label))
    return frozenset(names)


def tree_database(document: Document, include_child: bool = True) -> Database:
    """Materialise the tau_ur relations of ``document`` as a datalog database.

    Domain elements are preorder indexes (ints); use
    :func:`nodes_for_indexes` to map query answers back to nodes.
    """
    database: Database = {name: set() for name in TAU_UR_UNARY + TAU_UR_BINARY}
    if include_child:
        database["child"] = set()

    label_relations: Dict[str, Set[Tuple[object, ...]]] = {}

    for node in document:
        index = node.preorder_index
        label_relation = label_relations.setdefault(label_predicate(node.label), set())
        label_relation.add((index,))
        if node.is_root:
            database["root"].add((index,))
        if node.is_leaf:
            database["leaf"].add((index,))
        if node.is_last_sibling:
            database["lastsibling"].add((index,))
        if node.is_first_sibling:
            database["firstsibling"].add((index,))
        if node.children:
            database["firstchild"].add((index, node.children[0].preorder_index))
            database["lastchild"].add((index, node.children[-1].preorder_index))
            if include_child:
                for child in node.children:
                    database["child"].add((index, child.preorder_index))
        sibling = node.next_sibling
        if sibling is not None:
            database["nextsibling"].add((index, sibling.preorder_index))

    database.update(label_relations)
    return database


def tree_fingerprint(document: Document) -> Tuple[Tuple[str, int], ...]:
    """An exact content fingerprint of the tau_ur view of ``document``.

    Every tau_ur relation is determined by node labels plus tree shape, and
    the shape is fully determined by the preorder sequence of
    ``(label, parent preorder index)`` pairs (siblings appear in order in a
    preorder traversal).  Equal fingerprints therefore mean equal
    :func:`tree_database` contents — the key the monadic ground pipeline's
    fixpoint LRU uses so equal-but-distinct documents hit.
    """
    return tuple(
        (
            node.label,
            node.parent.preorder_index if node.parent is not None else -1,
        )
        for node in document
    )


def nodes_for_indexes(document: Document, indexes) -> List[Node]:
    """Map an iterable of preorder indexes (or 1-tuples) back to nodes."""
    result: List[Node] = []
    for item in indexes:
        if isinstance(item, tuple):
            item = item[0]
        result.append(document.node_at(item))
    result.sort(key=lambda node: node.preorder_index)
    return result


def indexes_for_nodes(nodes) -> Set[int]:
    return {node.preorder_index for node in nodes}

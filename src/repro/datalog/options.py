"""Engine tuning options: one frozen dataclass for every evaluator.

Before the :mod:`repro.api` façade, each evaluation layer grew its own
ad-hoc tuning kwargs — ``SemiNaiveEngine(use_index=, use_plans=,
cache_size=, share_plans=)``, ``MonadicTreeEvaluator(force_generic=,
use_index=, cache_size=, share_plans=)``, ``compiled_evaluator(
force_generic=, share_plans=)`` — so a caller configuring a whole stack had
to thread four or five booleans through every constructor, and a new knob
meant touching every signature on the way down.

:class:`EngineOptions` replaces the scattered kwargs: it is the single
declarative description of *how* to evaluate, accepted uniformly by
:class:`~repro.datalog.engine.SemiNaiveEngine`,
:class:`~repro.mdatalog.evaluator.MonadicTreeEvaluator`, the compiled
automata evaluators of :mod:`repro.automata.to_datalog`, and the server
components — and owned by :class:`repro.api.Session`, which applies one
options object to every engine it builds.  The legacy kwargs still work on
every constructor but emit :class:`DeprecationWarning` through
:func:`resolve_options` (the shim the constructors share).

The dataclass is frozen and hashable so it can key evaluator memos (the
:mod:`repro.api` session memoises one engine per (program, options) pair,
and the automata layer keys its module-level evaluator cache by options).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping


class _Unset:
    """Sentinel distinguishing "kwarg not passed" from an explicit value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNSET"


#: Default value of every legacy tuning kwarg: "not passed".
UNSET = _Unset()


@dataclass(frozen=True)
class EngineOptions:
    """Declarative tuning of one evaluator stack.

    Attributes
    ----------
    use_index:
        Match body literals through hash indexes (:mod:`repro.datalog.index`).
        ``False`` restores the seed nested-loop join (ablation baseline).
    use_plans:
        Evaluate through compile-once rule plans (:mod:`repro.datalog.plan`).
        ``False`` restores the PR-1 per-call indexed join; implies nothing
        when ``use_index`` is already ``False``.
    seed_plans:
        Consult the statically-seeded join plans that the registry compiles
        from :mod:`repro.analysis.cost` estimates at program-compile time
        (and pre-build the advised indexes before the first fixpoint).
        ``False`` restores pure runtime planning — the first query per
        (rule, delta position) re-runs the greedy planner on live sizes.
        Join order never affects the fixpoint, only latency; the property
        suite asserts both settings produce identical results.  No effect
        when ``effective_use_plans`` is ``False``.  Options-object only:
        there is no legacy constructor kwarg for this knob.
    share_plans:
        Obtain compiled programs (strata, rule plans, trigger maps — and, in
        the monadic layer, TMNF rewrites) from a shared
        :class:`~repro.datalog.registry.PlanRegistry` so N engines over one
        program pay one compilation.  Which registry is used is orthogonal:
        engines default to the process-wide singleton, while engines built
        by a :class:`repro.api.Session` use the session-owned registry.
    storage:
        Relation storage backend of the semi-naive engine.  ``"columnar"``
        (default) evaluates over :mod:`repro.datalog.columns` — append-only
        row arrays with posting-set indexes, batched delta windows —
        ``"tuple"`` over the tuple-at-a-time
        :mod:`repro.datalog.index` layer (the ablation baseline).
        Storage is engine-internal scratch: it never affects the fixpoint
        (the property suite proves all backends identical), compiled plans
        are shared across storages, and every cache fingerprint is
        storage-invariant.  Columnar evaluation runs through compiled rule
        plans, so it requires ``effective_use_plans``; with plans disabled
        the engine falls back to tuple storage (see
        :attr:`effective_storage`).
    index_keys:
        Multi-position probe strategy of both storage backends.
        ``"full"`` (default — the winner of the ``index_key_*`` benchmark
        study) materialises one composite index per bound-position tuple;
        ``"prefix"`` keeps only single-column access paths and narrows the
        remaining positions by posting-set intersection (columnar) or
        filtering (tuple).  Like join order, this affects latency only,
        never the fixpoint.
    cache_size:
        Capacity of every per-engine fixpoint LRU (one entry per distinct
        hot database / document).
    force_generic:
        Monadic layer only: skip the Theorem-2.4 ground+LTUR pipeline and
        evaluate through the generic semi-naive engine even for programs in
        the TMNF fragment.
    on_diagnostics:
        What :class:`repro.api.Session` entry points do about error-severity
        static-analysis findings (:mod:`repro.analysis`): ``"warn"``
        (default) emits a :class:`~repro.analysis.diagnostics.
        DiagnosticWarning` per error, ``"strict"`` raises
        :class:`~repro.analysis.diagnostics.AnalysisError`, ``"ignore"``
        skips analysis entirely.  Reports are cached per program content
        fingerprint, so the policy costs one analysis per distinct program.
    """

    use_index: bool = True
    use_plans: bool = True
    seed_plans: bool = True
    share_plans: bool = True
    cache_size: int = 8
    force_generic: bool = False
    on_diagnostics: str = "warn"
    storage: str = "columnar"
    index_keys: str = "full"

    def __post_init__(self) -> None:
        if self.cache_size < 1:
            raise ValueError(
                f"EngineOptions.cache_size must be >= 1, got {self.cache_size}"
            )
        if self.on_diagnostics not in ("ignore", "warn", "strict"):
            raise ValueError(
                "EngineOptions.on_diagnostics must be 'ignore', 'warn' or "
                f"'strict', got {self.on_diagnostics!r}"
            )
        if self.storage not in ("columnar", "tuple"):
            raise ValueError(
                "EngineOptions.storage must be 'columnar' or 'tuple', "
                f"got {self.storage!r}"
            )
        if self.index_keys not in ("full", "prefix"):
            raise ValueError(
                "EngineOptions.index_keys must be 'full' or 'prefix', "
                f"got {self.index_keys!r}"
            )

    # ------------------------------------------------------------------
    def derive(self, **changes: Any) -> "EngineOptions":
        """A copy with ``changes`` applied (the frozen-dataclass idiom)."""
        return replace(self, **changes)

    @property
    def effective_use_plans(self) -> bool:
        """Plans require the index layer; ``use_index=False`` disables both."""
        return self.use_index and self.use_plans

    @property
    def effective_share_plans(self) -> bool:
        """Sharing applies to compiled plans only, so it requires them."""
        return self.effective_use_plans and self.share_plans

    @property
    def effective_storage(self) -> str:
        """Columnar evaluation needs compiled plans; otherwise tuple."""
        return "columnar" if self.storage == "columnar" and self.effective_use_plans else "tuple"


#: The default options every constructor resolves to when nothing is passed.
DEFAULT_OPTIONS = EngineOptions()

_FIELD_NAMES = frozenset(field.name for field in fields(EngineOptions))


def resolve_options(
    owner: str,
    options: "EngineOptions | None",
    legacy: Mapping[str, Any],
) -> EngineOptions:
    """The deprecation shim shared by every evaluator constructor.

    ``legacy`` maps each pre-façade tuning kwarg to the value the caller
    passed, or :data:`UNSET` when it was not passed.  Passing any legacy
    kwarg still works — it is folded into an :class:`EngineOptions` — but
    emits a :class:`DeprecationWarning` naming the replacement; mixing
    legacy kwargs with an explicit ``options`` object is an error (the two
    could silently disagree).
    """
    passed: Dict[str, Any] = {
        name: value for name, value in legacy.items() if value is not UNSET
    }
    unknown = set(passed) - _FIELD_NAMES
    if unknown:  # pragma: no cover - programming error in the caller
        raise TypeError(f"{owner}: unknown tuning kwargs {sorted(unknown)}")
    if not passed:
        return options if options is not None else DEFAULT_OPTIONS
    if options is not None:
        raise ValueError(
            f"{owner}: pass either options=EngineOptions(...) or the legacy "
            f"kwargs {sorted(passed)}, not both"
        )
    warnings.warn(
        f"{owner}({', '.join(sorted(passed))}=...) is deprecated; pass "
        f"options=EngineOptions({', '.join(sorted(passed))}=...) instead "
        "(see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    return EngineOptions(**passed)

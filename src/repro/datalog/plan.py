"""Compile-once rule plans for the semi-naive engine.

The PR-1 indexed join re-derived its whole strategy on every ``_join`` call:
the greedy join order was recomputed from live relation sizes, the bound
argument positions and probe keys were rebuilt per literal, builtin/negation
filters were re-partitioned into ready/pending lists, and every matched fact
went through a generic term-by-term unification with ``isinstance`` checks
and dictionary copies.  For deep recursions (transitive closure, graph
reachability) that per-call overhead dominates the actual probing.

This module moves all of that work to compile time:

* :class:`RulePlan` — built once per rule at engine construction.  It fixes a
  variable→slot layout (substitutions become flat lists indexed by slot
  instead of dictionaries), precompiles every builtin/negated literal into a
  :class:`_CompiledFilter`, and precompiles the head projection.
* ``RulePlan.run(facts, delta, delta_position)`` — looks up (or compiles) a
  :class:`_JoinPlan` for the requested delta position and the current
  *size buckets* of the joined relations, then interprets it.  Join orders
  are memoised per ``(delta_position, bucket signature)`` with coarse
  power-of-two buckets (``size.bit_length()``), so the greedy planner only
  re-runs when a relation size crosses a bucket boundary — a handful of
  times over a whole fixpoint instead of once per iteration.  The memo is
  database-sized state: when a plan is shared across engines through
  :mod:`repro.datalog.registry`, each engine passes its own memo into
  ``run`` so one engine's relation sizes never steer another's joins.
* :class:`_JoinStep` — one probe of the interpreter: the bound argument
  positions, a precompiled key spec (constants inlined, variables as slots),
  a bind spec for newly-bound slots, intra-atom equality checks for repeated
  variables, and the filters that become ready once this step has bound its
  variables (the hoist points are resolved ahead of time).

The interpreter produces exactly the facts the PR-1 indexed join produced —
the property tests assert equivalence against both the legacy indexed path
and the seed nested-loop join.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .ast import Constant, Literal, Rule, Variable
from .index import IndexedDatabase

Fact = Tuple[object, ...]

#: ``(is_slot, payload)`` — payload is a slot index when ``is_slot`` else a
#: constant value.  Used for probe keys, filter arguments and head terms.
ValueSpec = Tuple[Tuple[bool, object], ...]

#: ``(delta_position, bucket signature)`` → compiled :class:`_JoinPlan`.
#: Engines that share a plan (repro/datalog/registry.py) each pass their own
#: memo into :meth:`RulePlan.run`, keeping database-sized state per engine.
PlanMemo = Dict[Tuple[Optional[int], Tuple[int, ...]], "_JoinPlan"]


def size_bucket(size: int) -> int:
    """Coarse power-of-two bucket of a relation size.

    Plans are memoised per bucket signature: the greedy join order only
    replans when a relation size crosses a power-of-two boundary.
    """
    return size.bit_length()


def greedy_join_order(
    body: Sequence[Literal],
    relational: Sequence[int],
    delta_position: Optional[int],
    sizes: Mapping[int, float],
    bound: Optional[Set[Variable]] = None,
) -> List[int]:
    """Greedy selectivity ordering of the positive relational literals.

    This is THE join-order policy of the engine — shared verbatim between
    runtime plan compilation (:meth:`RulePlan._compile`, with live relation
    sizes) and static analysis (:mod:`repro.analysis.dataflow`, with
    estimated sizes), so the adornments the analyzer reports are exactly
    the binding patterns the interpreter will probe with.

    The delta literal (when present) seeds the order — it carries the
    novelty and is typically the smallest relation.  Each following pick
    maximises the number of already-bound terms (constants plus variables
    bound by earlier literals, plus any ``bound`` variables the caller
    supplies, e.g. head variables bound by a demanded adornment) and
    tie-breaks on smaller relation size.
    """
    remaining = list(relational)
    order: List[int] = []
    seen: Set[Variable] = set(bound) if bound else set()

    def absorb(position: int) -> None:
        for term in body[position].atom.terms:
            if isinstance(term, Variable):
                seen.add(term)

    if delta_position is not None and delta_position in remaining:
        remaining.remove(delta_position)
        order.append(delta_position)
        absorb(delta_position)
    while remaining:

        def selectivity(position: int) -> Tuple[int, float]:
            atom = body[position].atom
            bound_terms = sum(
                1
                for term in atom.terms
                if isinstance(term, Constant) or term in seen
            )
            return (bound_terms, -sizes[position])

        best = max(remaining, key=selectivity)
        remaining.remove(best)
        order.append(best)
        absorb(best)
    return order


class _CompiledFilter:
    """A builtin comparison or negated literal, precompiled to slot form.

    ``slots`` is the set of row slots the filter reads; a filter is hoisted
    to the earliest join step after which all of them are bound.  Filters
    over variables no relational literal binds keep the seed behaviour:
    they raise :class:`~repro.datalog.engine.EvaluationError` the first time
    a substitution actually reaches them.
    """

    __slots__ = ("spec", "negated", "fn", "predicate", "slots", "unbound_term", "order")

    def __init__(
        self,
        literal: Literal,
        order: int,
        slot_of: Mapping[Variable, int],
        relational_slots: Set[int],
        builtins: Mapping[str, Callable[..., bool]],
    ) -> None:
        atom = literal.atom
        self.order = order
        self.negated = literal.negated
        self.fn = builtins.get(atom.predicate)
        self.predicate = atom.predicate
        spec: List[Tuple[bool, object]] = []
        slots: Set[int] = set()
        self.unbound_term: Optional[Variable] = None
        for term in atom.terms:
            if isinstance(term, Constant):
                spec.append((False, term.value))
            else:
                slot = slot_of[term]
                spec.append((True, slot))
                slots.add(slot)
                if slot not in relational_slots and self.unbound_term is None:
                    self.unbound_term = term
        self.spec: ValueSpec = tuple(spec)
        self.slots = frozenset(slots)

    def passes(self, row: List[object], facts: IndexedDatabase) -> bool:
        if self.unbound_term is not None:
            # Matches the seed _ground_terms error (it reuses the head
            # message even for body filters).
            from .engine import EvaluationError

            raise EvaluationError(f"unbound variable {self.unbound_term} in rule head")
        values = tuple(row[p] if s else p for s, p in self.spec)
        if self.fn is not None:
            holds = self.fn(*values)
            return not holds if self.negated else holds
        # Negated relational literal; its relation is complete (stratified
        # negation evaluates strictly lower strata first).
        return not facts.contains_fact(self.predicate, values)


class _JoinStep:
    """One probe of a compiled join: everything the interpreter needs."""

    __slots__ = (
        "position",
        "predicate",
        "from_delta",
        "arity",
        "bound_positions",
        "key_spec",
        "bind_spec",
        "check_spec",
        "filters_after",
    )

    def __init__(
        self,
        position: int,
        predicate: str,
        from_delta: bool,
        arity: int,
        bound_positions: Tuple[int, ...],
        key_spec: ValueSpec,
        bind_spec: Tuple[Tuple[int, int], ...],
        check_spec: Tuple[Tuple[int, int], ...],
        filters_after: Tuple[_CompiledFilter, ...],
    ) -> None:
        self.position = position
        self.predicate = predicate
        self.from_delta = from_delta
        self.arity = arity
        self.bound_positions = bound_positions
        self.key_spec = key_spec
        self.bind_spec = bind_spec
        self.check_spec = check_spec
        self.filters_after = filters_after


class _JoinPlan:
    """A fixed join order plus per-step layouts, interpreted by RulePlan.run."""

    __slots__ = ("steps", "initial_filters", "leftover_filters")

    def __init__(
        self,
        steps: Tuple[_JoinStep, ...],
        initial_filters: Tuple[_CompiledFilter, ...],
        leftover_filters: Tuple[_CompiledFilter, ...],
    ) -> None:
        self.steps = steps
        self.initial_filters = initial_filters
        self.leftover_filters = leftover_filters


class RulePlan:
    """The compile-once evaluation strategy of a single rule."""

    __slots__ = (
        "rule",
        "head_predicate",
        "nvars",
        "slot_of",
        "relational",
        "filters",
        "head_spec",
        "head_unbound",
        "_plans",
        "seed_plans",
    )

    def __init__(self, rule: Rule, builtins: Mapping[str, Callable[..., bool]]) -> None:
        self.rule = rule
        self.head_predicate = rule.head.predicate

        # Variable→slot layout over the whole rule (body first, then head).
        slot_of: Dict[Variable, int] = {}
        for literal in rule.body:
            for term in literal.atom.terms:
                if isinstance(term, Variable) and term not in slot_of:
                    slot_of[term] = len(slot_of)
        for term in rule.head.terms:
            if isinstance(term, Variable) and term not in slot_of:
                slot_of[term] = len(slot_of)
        self.slot_of = slot_of
        self.nvars = len(slot_of)

        # Positive relational literals are joined; builtins and negated
        # literals become filters.  Which slots the join can ever bind is
        # order-independent (every order visits all relational literals), so
        # "leftover" filters are a per-rule static property.
        relational: List[int] = []
        relational_slots: Set[int] = set()
        for position, literal in enumerate(rule.body):
            if literal.negated or literal.atom.predicate in builtins:
                continue
            relational.append(position)
            for term in literal.atom.terms:
                if isinstance(term, Variable):
                    relational_slots.add(slot_of[term])
        self.relational = tuple(relational)
        self.filters = tuple(
            _CompiledFilter(literal, position, slot_of, relational_slots, builtins)
            for position, literal in enumerate(rule.body)
            if literal.negated or literal.atom.predicate in builtins
        )

        # Precompiled head projection.
        head_spec: List[Tuple[bool, object]] = []
        self.head_unbound: Optional[Variable] = None
        for term in rule.head.terms:
            if isinstance(term, Constant):
                head_spec.append((False, term.value))
            else:
                head_spec.append((True, slot_of[term]))
                if slot_of[term] not in relational_slots and self.head_unbound is None:
                    self.head_unbound = term
        self.head_spec: ValueSpec = tuple(head_spec)

        #: Default join-order memo, used when the caller supplies none.
        #: Engines sharing this plan pass an instance-local memo instead.
        self._plans: PlanMemo = {}

        #: Statically-seeded plans per delta position, compiled once from
        #: *estimated* relation sizes (repro/analysis/cost.py) instead of
        #: live ones.  Consulted by :meth:`_plan_for` on a cold memo only —
        #: join order affects performance, never the fixpoint, so a seed is
        #: always safe; once live sizes disagree with the estimates enough
        #: to miss the memo again, the runtime planner takes over.
        self.seed_plans: Dict[Optional[int], _JoinPlan] = {}

    # ------------------------------------------------------------------
    # Plan lookup (bucket-memoised) and compilation
    # ------------------------------------------------------------------
    def plan_count(self) -> int:
        """Number of compiled join plans in the default memo (tests)."""
        return len(self._plans)

    def seed(self, delta_position: Optional[int], sizes: Mapping[int, int]) -> None:
        """Compile (once) a statically-seeded plan for ``delta_position``.

        ``sizes`` maps relational body positions to *estimated* relation
        sizes — typically from :func:`repro.analysis.cost.relation_estimates`
        at registry compile time, before any database exists.
        """
        if delta_position not in self.seed_plans:
            self.seed_plans[delta_position] = self._compile(delta_position, sizes)

    def _plan_for(
        self,
        facts: IndexedDatabase,
        delta: Optional[IndexedDatabase],
        delta_position: Optional[int],
        memo: Optional[PlanMemo] = None,
        use_seeds: bool = True,
    ) -> _JoinPlan:
        body = self.rule.body
        sizes: List[int] = []
        for position in self.relational:
            predicate = body[position].atom.predicate
            source = delta if (position == delta_position and delta is not None) else facts
            sizes.append(len(source.lookup(predicate)))
        signature = tuple(size_bucket(size) for size in sizes)
        key = (delta_position, signature)
        if memo is None:
            memo = self._plans
        plan = memo.get(key)
        if plan is None:
            if use_seeds:
                seed = self.seed_plans.get(delta_position)
            else:
                seed = None
            if seed is not None and all(k[0] != delta_position for k in memo):
                # Cold memo for this delta position: trust the static seed
                # and skip the greedy replan.  Later bucket-signature misses
                # (live sizes drifting from the estimates) recompile
                # adaptively as before.
                plan = seed
            else:
                plan = self._compile(delta_position, dict(zip(self.relational, sizes)))
            memo[key] = plan
        return plan

    def _compile(
        self, delta_position: Optional[int], sizes: Mapping[int, int]
    ) -> _JoinPlan:
        body = self.rule.body
        slot_of = self.slot_of

        # Greedy selectivity order, exactly as the PR-1 join: the delta
        # literal seeds the order, then each pick maximises already-bound
        # terms and tie-breaks on smaller relation size.
        order = greedy_join_order(body, self.relational, delta_position, sizes)
        bound: Set[int] = set()

        # Second pass: per-step layouts plus filter hoist points.
        hoistable = sorted(
            (f for f in self.filters if f.unbound_term is None), key=lambda f: f.order
        )
        leftover = tuple(
            f for f in self.filters if f.unbound_term is not None
        )
        initial_filters = tuple(f for f in hoistable if not f.slots)
        pending = [f for f in hoistable if f.slots]
        steps: List[_JoinStep] = []
        for position in order:
            atom = body[position].atom
            bound_positions: List[int] = []
            key_spec: List[Tuple[bool, object]] = []
            bind_spec: List[Tuple[int, int]] = []
            check_spec: List[Tuple[int, int]] = []
            first_seen: Dict[int, int] = {}  # slot -> fact index of first unbound use
            for index, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    bound_positions.append(index)
                    key_spec.append((False, term.value))
                    continue
                slot = slot_of[term]
                if slot in bound:
                    bound_positions.append(index)
                    key_spec.append((True, slot))
                elif slot in first_seen:
                    check_spec.append((index, first_seen[slot]))
                else:
                    first_seen[slot] = index
                    bind_spec.append((index, slot))
            bound.update(first_seen)
            # NB: subset comparison is a partial order — "not <=" is NOT the
            # same as ">" here (a filter can be incomparable to bound).
            ready = tuple(f for f in pending if f.slots <= bound)
            if ready:
                pending = [f for f in pending if not (f.slots <= bound)]
            steps.append(
                _JoinStep(
                    position,
                    atom.predicate,
                    position == delta_position,
                    len(atom.terms),
                    tuple(bound_positions),
                    tuple(key_spec),
                    tuple(bind_spec),
                    tuple(check_spec),
                    ready,
                )
            )
        # Any hoistable filter still pending would need a slot no relational
        # literal binds — excluded by construction (unbound_term is set).
        assert not pending
        return _JoinPlan(tuple(steps), initial_filters, leftover)

    # ------------------------------------------------------------------
    # Plan interpretation
    # ------------------------------------------------------------------
    def run(
        self,
        facts: IndexedDatabase,
        delta: Optional[IndexedDatabase] = None,
        delta_position: Optional[int] = None,
        memo: Optional[PlanMemo] = None,
        use_seeds: bool = True,
    ) -> List[Fact]:
        """All head facts derivable by this rule (delta-restricted when asked).

        ``memo`` is the join-order memo to consult (defaulting to this
        plan's own); engines that share one plan through the registry pass
        an instance-local memo so their size-bucket histories stay separate.
        ``use_seeds=False`` opts out of statically-seeded plans (the
        property tests compare both paths).  The result is fully
        materialised before the caller inserts it, so inserting derived
        facts never mutates a relation mid-probe.
        """
        plan = self._plan_for(facts, delta, delta_position, memo, use_seeds)
        row: List[object] = [None] * self.nvars
        for compiled in plan.initial_filters:
            if not compiled.passes(row, facts):
                return []
        rows = [row]
        for step in plan.steps:
            source = delta if step.from_delta else facts
            relation = source.lookup(step.predicate)  # type: ignore[union-attr]
            probe = relation.probe
            positions = step.bound_positions
            key_spec = step.key_spec
            bind_spec = step.bind_spec
            check_spec = step.check_spec
            filters_after = step.filters_after
            arity = step.arity
            next_rows: List[List[object]] = []
            append = next_rows.append
            for row in rows:
                key = tuple(row[p] if s else p for s, p in key_spec)
                for fact in probe(positions, key):
                    if len(fact) != arity:
                        continue
                    if check_spec:
                        if any(fact[i] != fact[j] for i, j in check_spec):
                            continue
                    new = row[:]
                    for index, slot in bind_spec:
                        new[slot] = fact[index]
                    if filters_after:
                        if not all(f.passes(new, facts) for f in filters_after):
                            continue
                    append(new)
            rows = next_rows
            if not rows:
                return []
        leftover = plan.leftover_filters
        head_spec = self.head_spec
        head_unbound = self.head_unbound
        out: List[Fact] = []
        emit = out.append
        for row in rows:
            if leftover:
                if not all(f.passes(row, facts) for f in leftover):
                    continue
            if head_unbound is not None:
                from .engine import EvaluationError

                raise EvaluationError(
                    f"unbound variable {head_unbound} in rule head"
                )
            emit(tuple(row[p] if s else p for s, p in head_spec))
        return out


def compile_stratum(
    rules: Sequence[Rule], builtins: Mapping[str, Callable[..., bool]]
) -> Tuple[List[RulePlan], Dict[str, List[Tuple[RulePlan, int]]]]:
    """Compile one stratum into rule plans plus its delta trigger map.

    ``triggers[p]`` lists every ``(plan, position)`` whose body literal at
    ``position`` is a positive relational occurrence of ``p`` and ``p`` is
    derived inside the stratum — the only (rule, delta-position) pairs
    semi-naive iteration ever needs to fire for a delta on ``p``.
    """
    head_predicates = {rule.head.predicate for rule in rules}
    plans = [RulePlan(rule, builtins) for rule in rules]
    triggers: Dict[str, List[Tuple[RulePlan, int]]] = {}
    for plan in plans:
        for position, literal in enumerate(plan.rule.body):
            predicate = literal.atom.predicate
            if literal.negated or predicate in builtins:
                continue
            if predicate in head_predicates:
                triggers.setdefault(predicate, []).append((plan, position))
    return plans, triggers

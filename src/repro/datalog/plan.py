"""Compile-once rule plans for the semi-naive engine.

The PR-1 indexed join re-derived its whole strategy on every ``_join`` call:
the greedy join order was recomputed from live relation sizes, the bound
argument positions and probe keys were rebuilt per literal, builtin/negation
filters were re-partitioned into ready/pending lists, and every matched fact
went through a generic term-by-term unification with ``isinstance`` checks
and dictionary copies.  For deep recursions (transitive closure, graph
reachability) that per-call overhead dominates the actual probing.

This module moves all of that work to compile time:

* :class:`RulePlan` — built once per rule at engine construction.  It fixes a
  variable→slot layout (substitutions become flat lists indexed by slot
  instead of dictionaries), precompiles every builtin/negated literal into a
  :class:`_CompiledFilter`, and precompiles the head projection.
* ``RulePlan.run(facts, delta, delta_position)`` — looks up (or compiles) a
  :class:`_JoinPlan` for the requested delta position and the current
  *size buckets* of the joined relations, then interprets it.  Join orders
  are memoised per ``(delta_position, bucket signature)`` with coarse
  power-of-two buckets (``size.bit_length()``), so the greedy planner only
  re-runs when a relation size crosses a bucket boundary — a handful of
  times over a whole fixpoint instead of once per iteration.  The memo is
  database-sized state: when a plan is shared across engines through
  :mod:`repro.datalog.registry`, each engine passes its own memo into
  ``run`` so one engine's relation sizes never steer another's joins.
* :class:`_JoinStep` — one probe of the join: the bound argument
  positions, a precompiled key spec (constants inlined, variables as slots),
  a bind spec for newly-bound slots, intra-atom equality checks for repeated
  variables, and the filters that become ready once this step has bound its
  variables (the hoist points are resolved ahead of time).
* **Specialised executors** — every :class:`_JoinPlan` is lowered at
  compile time into a chain of per-step closures (probe → intersect/check →
  filter → project) with the step's constants bound in closure cells, plus
  a projection closure; ``RulePlan.run`` just resolves the delta relation
  and calls the chain.  Hot step shapes (full scans binding one or two
  slots, single-slot-key probes extending one slot) get dedicated closure
  bodies without the generic spec interpretation; everything else falls
  back to a generic closure that mirrors the old interpreted loop exactly.
  Executors are built wherever plans are built — including the statically
  seeded plans the registry compiles (:mod:`repro.analysis.cost`), so a
  shared program carries its specialised executors with it.

Plans and executors are written against the storage *protocols* of
:mod:`repro.datalog.index` (``FactStorage`` / ``ProbeSource``), so one
compiled program runs unchanged over the tuple-at-a-time backend and the
columnar backend (:mod:`repro.datalog.columns`).

The executors produce exactly the facts the PR-1 indexed join produced —
the property tests assert equivalence against both the legacy indexed path
and the seed nested-loop join, on every storage backend.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .ast import Constant, Literal, Rule, Variable
from .index import DeltaSource, FactStorage, ProbeSource

Fact = Tuple[object, ...]

#: A compiled step closure: ``(rows, facts, delta_rel) -> rows``.
StepRunner = Callable[[List[List[object]], FactStorage, Optional[ProbeSource]], List[List[object]]]

#: A compiled projection closure: ``(rows, facts) -> facts``.
Projector = Callable[[List[List[object]], FactStorage], List[Fact]]

#: A compiled whole-rule executor: ``(facts, delta_rel) -> facts``.
Executor = Callable[[FactStorage, Optional[ProbeSource]], List[Fact]]

#: ``(is_slot, payload)`` — payload is a slot index when ``is_slot`` else a
#: constant value.  Used for probe keys, filter arguments and head terms.
ValueSpec = Tuple[Tuple[bool, object], ...]

#: ``(delta_position, bucket signature)`` → compiled :class:`_JoinPlan`.
#: Engines that share a plan (repro/datalog/registry.py) each pass their own
#: memo into :meth:`RulePlan.run`, keeping database-sized state per engine.
PlanMemo = Dict[Tuple[Optional[int], Tuple[int, ...]], "_JoinPlan"]


def size_bucket(size: int) -> int:
    """Coarse power-of-two bucket of a relation size.

    Plans are memoised per bucket signature: the greedy join order only
    replans when a relation size crosses a power-of-two boundary.
    """
    return size.bit_length()


def greedy_join_order(
    body: Sequence[Literal],
    relational: Sequence[int],
    delta_position: Optional[int],
    sizes: Mapping[int, float],
    bound: Optional[Set[Variable]] = None,
) -> List[int]:
    """Greedy selectivity ordering of the positive relational literals.

    This is THE join-order policy of the engine — shared verbatim between
    runtime plan compilation (:meth:`RulePlan._compile`, with live relation
    sizes) and static analysis (:mod:`repro.analysis.dataflow`, with
    estimated sizes), so the adornments the analyzer reports are exactly
    the binding patterns the interpreter will probe with.

    The delta literal (when present) seeds the order — it carries the
    novelty and is typically the smallest relation.  Each following pick
    maximises the number of already-bound terms (constants plus variables
    bound by earlier literals, plus any ``bound`` variables the caller
    supplies, e.g. head variables bound by a demanded adornment) and
    tie-breaks on smaller relation size.
    """
    remaining = list(relational)
    order: List[int] = []
    seen: Set[Variable] = set(bound) if bound else set()

    def absorb(position: int) -> None:
        for term in body[position].atom.terms:
            if isinstance(term, Variable):
                seen.add(term)

    if delta_position is not None and delta_position in remaining:
        remaining.remove(delta_position)
        order.append(delta_position)
        absorb(delta_position)
    while remaining:

        def selectivity(position: int) -> Tuple[int, float]:
            atom = body[position].atom
            bound_terms = sum(
                1
                for term in atom.terms
                if isinstance(term, Constant) or term in seen
            )
            return (bound_terms, -sizes[position])

        best = max(remaining, key=selectivity)
        remaining.remove(best)
        order.append(best)
        absorb(best)
    return order


class _CompiledFilter:
    """A builtin comparison or negated literal, precompiled to slot form.

    ``slots`` is the set of row slots the filter reads; a filter is hoisted
    to the earliest join step after which all of them are bound.  Filters
    over variables no relational literal binds keep the seed behaviour:
    they raise :class:`~repro.datalog.engine.EvaluationError` the first time
    a substitution actually reaches them.
    """

    __slots__ = ("spec", "negated", "fn", "predicate", "slots", "unbound_term", "order")

    def __init__(
        self,
        literal: Literal,
        order: int,
        slot_of: Mapping[Variable, int],
        relational_slots: Set[int],
        builtins: Mapping[str, Callable[..., bool]],
    ) -> None:
        atom = literal.atom
        self.order = order
        self.negated = literal.negated
        self.fn = builtins.get(atom.predicate)
        self.predicate = atom.predicate
        spec: List[Tuple[bool, object]] = []
        slots: Set[int] = set()
        self.unbound_term: Optional[Variable] = None
        for term in atom.terms:
            if isinstance(term, Constant):
                spec.append((False, term.value))
            else:
                slot = slot_of[term]
                spec.append((True, slot))
                slots.add(slot)
                if slot not in relational_slots and self.unbound_term is None:
                    self.unbound_term = term
        self.spec: ValueSpec = tuple(spec)
        self.slots = frozenset(slots)

    def passes(self, row: List[object], facts: FactStorage) -> bool:
        if self.unbound_term is not None:
            # Matches the seed _ground_terms error (it reuses the head
            # message even for body filters).
            from .engine import EvaluationError

            raise EvaluationError(f"unbound variable {self.unbound_term} in rule head")
        values = tuple(row[p] if s else p for s, p in self.spec)
        if self.fn is not None:
            holds = self.fn(*values)
            return not holds if self.negated else holds
        # Negated relational literal; its relation is complete (stratified
        # negation evaluates strictly lower strata first).
        return not facts.contains_fact(self.predicate, values)


class _JoinStep:
    """One probe of a compiled join: everything the interpreter needs."""

    __slots__ = (
        "position",
        "predicate",
        "from_delta",
        "arity",
        "bound_positions",
        "key_spec",
        "bind_spec",
        "check_spec",
        "filters_after",
    )

    def __init__(
        self,
        position: int,
        predicate: str,
        from_delta: bool,
        arity: int,
        bound_positions: Tuple[int, ...],
        key_spec: ValueSpec,
        bind_spec: Tuple[Tuple[int, int], ...],
        check_spec: Tuple[Tuple[int, int], ...],
        filters_after: Tuple[_CompiledFilter, ...],
    ) -> None:
        self.position = position
        self.predicate = predicate
        self.from_delta = from_delta
        self.arity = arity
        self.bound_positions = bound_positions
        self.key_spec = key_spec
        self.bind_spec = bind_spec
        self.check_spec = check_spec
        self.filters_after = filters_after


def _build_step_runner(step: _JoinStep) -> StepRunner:
    """Lower one join step into a closure with its constants in cells.

    The hot shapes get dedicated bodies (no spec interpretation per tuple):

    * **scan+bind1 / scan+bind2** — an unbound literal (typically the
      delta seed) binding one or two fresh slots;
    * **probe1+bind1** — one slot-valued bound position extending one slot
      (the classic index-nested-loop step), probed through the storage
      layer's ``probe1`` so no key tuple is allocated.

    Everything else (constants in keys, repeated variables, hoisted
    filters, multi-position keys) runs the generic body, which replicates
    the old interpreted loop exactly.
    """
    predicate = step.predicate
    from_delta = step.from_delta
    arity = step.arity
    positions = step.bound_positions
    key_spec = step.key_spec
    bind_spec = step.bind_spec
    check_spec = step.check_spec
    filters_after = step.filters_after

    if from_delta:
        def source_relation(
            facts: FactStorage, delta_rel: Optional[ProbeSource]
        ) -> ProbeSource:
            assert delta_rel is not None
            return delta_rel
    else:
        def source_relation(
            facts: FactStorage, delta_rel: Optional[ProbeSource]
        ) -> ProbeSource:
            return facts.lookup(predicate)

    plain = not check_spec and not filters_after
    if plain and not positions and len(bind_spec) == 1:
        ((index0, slot0),) = bind_spec

        def run_scan1(
            rows: List[List[object]],
            facts: FactStorage,
            delta_rel: Optional[ProbeSource],
        ) -> List[List[object]]:
            relation = source_relation(facts, delta_rel)
            out: List[List[object]] = []
            append = out.append
            for row in rows:
                for f in relation:
                    if len(f) == arity:
                        new = row[:]
                        new[slot0] = f[index0]
                        append(new)
            return out

        return run_scan1
    if plain and not positions and len(bind_spec) == 2:
        (index0, slot0), (index1, slot1) = bind_spec

        def run_scan2(
            rows: List[List[object]],
            facts: FactStorage,
            delta_rel: Optional[ProbeSource],
        ) -> List[List[object]]:
            relation = source_relation(facts, delta_rel)
            out: List[List[object]] = []
            append = out.append
            for row in rows:
                for f in relation:
                    if len(f) == arity:
                        new = row[:]
                        new[slot0] = f[index0]
                        new[slot1] = f[index1]
                        append(new)
            return out

        return run_scan2
    if (
        plain
        and len(positions) == 1
        and len(bind_spec) == 1
        and key_spec[0][0]
    ):
        position0 = positions[0]
        key_slot = key_spec[0][1]
        ((index0, slot0),) = bind_spec

        def run_probe1(
            rows: List[List[object]],
            facts: FactStorage,
            delta_rel: Optional[ProbeSource],
        ) -> List[List[object]]:
            relation = source_relation(facts, delta_rel)
            probe1 = relation.probe1
            out: List[List[object]] = []
            append = out.append
            for row in rows:
                for f in probe1(position0, row[key_slot]):
                    if len(f) == arity:
                        new = row[:]
                        new[slot0] = f[index0]
                        append(new)
            return out

        return run_probe1

    def run_generic(
        rows: List[List[object]],
        facts: FactStorage,
        delta_rel: Optional[ProbeSource],
    ) -> List[List[object]]:
        relation = source_relation(facts, delta_rel)
        probe = relation.probe
        out: List[List[object]] = []
        append = out.append
        for row in rows:
            key = tuple(row[p] if s else p for s, p in key_spec)
            for fact in probe(positions, key):
                if len(fact) != arity:
                    continue
                if check_spec:
                    if any(fact[i] != fact[j] for i, j in check_spec):
                        continue
                new = row[:]
                for index, slot in bind_spec:
                    new[slot] = fact[index]
                if filters_after:
                    if not all(f.passes(new, facts) for f in filters_after):
                        continue
                append(new)
        return out

    return run_generic


def _build_projector(
    head_spec: ValueSpec,
    head_unbound: Optional[Variable],
    leftover_filters: Tuple[_CompiledFilter, ...],
) -> Projector:
    """Lower the head projection (plus leftover filters) into a closure."""
    if head_unbound is None and not leftover_filters:
        if all(is_slot for is_slot, _ in head_spec):
            slots = tuple(payload for _, payload in head_spec)
            if len(slots) == 1:
                (head0,) = slots

                def project1(rows: List[List[object]], facts: FactStorage) -> List[Fact]:
                    return [(row[head0],) for row in rows]

                return project1
            if len(slots) == 2:
                head0, head1 = slots

                def project2(rows: List[List[object]], facts: FactStorage) -> List[Fact]:
                    return [(row[head0], row[head1]) for row in rows]

                return project2

        def project_spec(rows: List[List[object]], facts: FactStorage) -> List[Fact]:
            return [tuple(row[p] if s else p for s, p in head_spec) for row in rows]

        return project_spec

    def project_guarded(rows: List[List[object]], facts: FactStorage) -> List[Fact]:
        out: List[Fact] = []
        emit = out.append
        for row in rows:
            if leftover_filters:
                if not all(f.passes(row, facts) for f in leftover_filters):
                    continue
            if head_unbound is not None:
                from .engine import EvaluationError

                raise EvaluationError(
                    f"unbound variable {head_unbound} in rule head"
                )
            emit(tuple(row[p] if s else p for s, p in head_spec))
        return out

    return project_guarded


def _build_fused_terminal(step: _JoinStep, head_spec: ValueSpec) -> Optional[StepRunner]:
    """Fuse the last join step with the head projection when possible.

    For a plain final step (no repeated-variable checks, no hoisted
    filters) whose matches feed straight into a slot-only head, the
    executor can emit head tuples directly from the probe — no extended
    row is ever copied and no separate projection pass runs.  This is the
    per-tuple hot path of every linear-recursive rule (transitive closure,
    reachability, same-generation).  Returns ``None`` when the shape does
    not apply; the caller falls back to the unfused chain.
    """
    if step.check_spec or step.filters_after:
        return None
    if not all(is_slot for is_slot, _ in head_spec):
        return None
    last_binds = {slot: index for index, slot in step.bind_spec}
    #: Per head term: (from_fact, index) — fact column or row slot.
    emit_spec = tuple(
        (True, last_binds[payload]) if payload in last_binds else (False, payload)
        for _, payload in head_spec
    )
    predicate = step.predicate
    from_delta = step.from_delta
    arity = step.arity
    positions = step.bound_positions
    key_spec = step.key_spec

    if from_delta:
        def source_relation(
            facts: FactStorage, delta_rel: Optional[ProbeSource]
        ) -> ProbeSource:
            assert delta_rel is not None
            return delta_rel
    else:
        def source_relation(
            facts: FactStorage, delta_rel: Optional[ProbeSource]
        ) -> ProbeSource:
            return facts.lookup(predicate)

    probe1_shape = len(positions) == 1 and len(key_spec) == 1 and key_spec[0][0]
    scan_shape = not positions
    if not probe1_shape and not scan_shape:
        return None

    if probe1_shape:
        position0 = positions[0]
        key_slot = key_spec[0][1]
        if len(emit_spec) == 1:
            ((fact0, index0),) = emit_spec
            if fact0:

                def fused_probe1_f(rows, facts, delta_rel):
                    probe1 = source_relation(facts, delta_rel).probe1
                    out: List[Fact] = []
                    append = out.append
                    for row in rows:
                        for f in probe1(position0, row[key_slot]):
                            if len(f) == arity:
                                append((f[index0],))
                    return out

                return fused_probe1_f

            def fused_probe1_r(rows, facts, delta_rel):
                probe1 = source_relation(facts, delta_rel).probe1
                out: List[Fact] = []
                append = out.append
                for row in rows:
                    head = (row[index0],)
                    for f in probe1(position0, row[key_slot]):
                        if len(f) == arity:
                            append(head)
                return out

            return fused_probe1_r
        if len(emit_spec) == 2:
            (fact0, index0), (fact1, index1) = emit_spec
            if fact0 and not fact1:

                def fused_probe1_fr(rows, facts, delta_rel):
                    probe1 = source_relation(facts, delta_rel).probe1
                    out: List[Fact] = []
                    append = out.append
                    for row in rows:
                        value1 = row[index1]
                        for f in probe1(position0, row[key_slot]):
                            if len(f) == arity:
                                append((f[index0], value1))
                    return out

                return fused_probe1_fr
            if not fact0 and fact1:

                def fused_probe1_rf(rows, facts, delta_rel):
                    probe1 = source_relation(facts, delta_rel).probe1
                    out: List[Fact] = []
                    append = out.append
                    for row in rows:
                        value0 = row[index0]
                        for f in probe1(position0, row[key_slot]):
                            if len(f) == arity:
                                append((value0, f[index1]))
                    return out

                return fused_probe1_rf
            if fact0 and fact1:

                def fused_probe1_ff(rows, facts, delta_rel):
                    probe1 = source_relation(facts, delta_rel).probe1
                    out: List[Fact] = []
                    append = out.append
                    for row in rows:
                        for f in probe1(position0, row[key_slot]):
                            if len(f) == arity:
                                append((f[index0], f[index1]))
                    return out

                return fused_probe1_ff

            def fused_probe1_rr(rows, facts, delta_rel):
                probe1 = source_relation(facts, delta_rel).probe1
                out: List[Fact] = []
                append = out.append
                for row in rows:
                    head = (row[index0], row[index1])
                    for f in probe1(position0, row[key_slot]):
                        if len(f) == arity:
                            append(head)
                return out

            return fused_probe1_rr

        def fused_probe1(rows, facts, delta_rel):
            probe1 = source_relation(facts, delta_rel).probe1
            out: List[Fact] = []
            append = out.append
            for row in rows:
                for f in probe1(position0, row[key_slot]):
                    if len(f) == arity:
                        append(tuple(f[i] if g else row[i] for g, i in emit_spec))
            return out

        return fused_probe1

    # Scan shape (single-literal rules, copy rules): emit per matching fact.
    if len(emit_spec) == 1 and emit_spec[0][0]:
        ((_, index0),) = emit_spec

        def fused_scan_f(rows, facts, delta_rel):
            relation = source_relation(facts, delta_rel)
            out: List[Fact] = []
            append = out.append
            for row in rows:
                for f in relation:
                    if len(f) == arity:
                        append((f[index0],))
            return out

        return fused_scan_f

    def fused_scan(rows, facts, delta_rel):
        relation = source_relation(facts, delta_rel)
        out: List[Fact] = []
        append = out.append
        for row in rows:
            for f in relation:
                if len(f) == arity:
                    append(tuple(f[i] if g else row[i] for g, i in emit_spec))
        return out

    return fused_scan


def _build_executor(
    steps: Tuple[_JoinStep, ...],
    initial_filters: Tuple[_CompiledFilter, ...],
    project: Projector,
    nvars: int,
    head_spec: ValueSpec,
    head_unbound: Optional[Variable],
    leftover_filters: Tuple[_CompiledFilter, ...],
) -> Executor:
    """Chain the step closures into one whole-rule executor.

    When the rule's tail allows it, the last step and the projection fuse
    into a single closure (:func:`_build_fused_terminal`); the common
    shapes (no constants-only initial filters, one or two join steps —
    every linear and binary-recursive rule) are unrolled.
    """
    terminal: Optional[StepRunner] = None
    if steps and head_unbound is None and not leftover_filters:
        terminal = _build_fused_terminal(steps[-1], head_spec)
    if terminal is not None:
        runners = tuple(_build_step_runner(step) for step in steps[:-1])
        emit = terminal
        if not initial_filters and len(runners) == 0:

            def execute_t0(
                facts: FactStorage, delta_rel: Optional[ProbeSource]
            ) -> List[Fact]:
                return emit([[None] * nvars], facts, delta_rel)

            return execute_t0
        if not initial_filters and len(runners) == 1:
            (run0,) = runners

            def execute_t1(
                facts: FactStorage, delta_rel: Optional[ProbeSource]
            ) -> List[Fact]:
                rows = run0([[None] * nvars], facts, delta_rel)
                return emit(rows, facts, delta_rel) if rows else []

            return execute_t1
        if not initial_filters and len(runners) == 2:
            run0, run1 = runners

            def execute_t2(
                facts: FactStorage, delta_rel: Optional[ProbeSource]
            ) -> List[Fact]:
                rows = run0([[None] * nvars], facts, delta_rel)
                if not rows:
                    return []
                rows = run1(rows, facts, delta_rel)
                return emit(rows, facts, delta_rel) if rows else []

            return execute_t2

        def execute_t(
            facts: FactStorage, delta_rel: Optional[ProbeSource]
        ) -> List[Fact]:
            row: List[object] = [None] * nvars
            for compiled in initial_filters:
                if not compiled.passes(row, facts):
                    return []
            rows = [row]
            for run in runners:
                rows = run(rows, facts, delta_rel)
                if not rows:
                    return []
            return emit(rows, facts, delta_rel)

        return execute_t

    runners = tuple(_build_step_runner(step) for step in steps)
    if not initial_filters and len(runners) == 1:
        (run0,) = runners

        def execute1(facts: FactStorage, delta_rel: Optional[ProbeSource]) -> List[Fact]:
            rows = run0([[None] * nvars], facts, delta_rel)
            return project(rows, facts) if rows else []

        return execute1
    if not initial_filters and len(runners) == 2:
        run0, run1 = runners

        def execute2(facts: FactStorage, delta_rel: Optional[ProbeSource]) -> List[Fact]:
            rows = run0([[None] * nvars], facts, delta_rel)
            if not rows:
                return []
            rows = run1(rows, facts, delta_rel)
            return project(rows, facts) if rows else []

        return execute2

    def execute(facts: FactStorage, delta_rel: Optional[ProbeSource]) -> List[Fact]:
        row: List[object] = [None] * nvars
        for compiled in initial_filters:
            if not compiled.passes(row, facts):
                return []
        rows = [row]
        for run in runners:
            rows = run(rows, facts, delta_rel)
            if not rows:
                return []
        return project(rows, facts)

    return execute


class _JoinPlan:
    """A fixed join order lowered to a specialised executor closure chain.

    The step/filter layouts are kept alongside the executor for
    introspection (``analysis/explain`` renders them) — evaluation goes
    through :attr:`executor` only.
    """

    __slots__ = ("steps", "initial_filters", "leftover_filters", "executor")

    def __init__(
        self,
        steps: Tuple[_JoinStep, ...],
        initial_filters: Tuple[_CompiledFilter, ...],
        leftover_filters: Tuple[_CompiledFilter, ...],
        executor: Executor,
    ) -> None:
        self.steps = steps
        self.initial_filters = initial_filters
        self.leftover_filters = leftover_filters
        self.executor = executor


class RulePlan:
    """The compile-once evaluation strategy of a single rule."""

    __slots__ = (
        "rule",
        "head_predicate",
        "nvars",
        "slot_of",
        "relational",
        "filters",
        "head_spec",
        "head_unbound",
        "_project",
        "_rel_preds",
        "_body_preds",
        "_plans",
        "seed_plans",
    )

    def __init__(self, rule: Rule, builtins: Mapping[str, Callable[..., bool]]) -> None:
        self.rule = rule
        self.head_predicate = rule.head.predicate

        # Variable→slot layout over the whole rule (body first, then head).
        slot_of: Dict[Variable, int] = {}
        for literal in rule.body:
            for term in literal.atom.terms:
                if isinstance(term, Variable) and term not in slot_of:
                    slot_of[term] = len(slot_of)
        for term in rule.head.terms:
            if isinstance(term, Variable) and term not in slot_of:
                slot_of[term] = len(slot_of)
        self.slot_of = slot_of
        self.nvars = len(slot_of)

        # Positive relational literals are joined; builtins and negated
        # literals become filters.  Which slots the join can ever bind is
        # order-independent (every order visits all relational literals), so
        # "leftover" filters are a per-rule static property.
        relational: List[int] = []
        relational_slots: Set[int] = set()
        for position, literal in enumerate(rule.body):
            if literal.negated or literal.atom.predicate in builtins:
                continue
            relational.append(position)
            for term in literal.atom.terms:
                if isinstance(term, Variable):
                    relational_slots.add(slot_of[term])
        self.relational = tuple(relational)
        #: Predicate names hoisted out of the AST for the per-firing hot
        #: path (plan lookup and delta resolution touch these every call).
        self._rel_preds = tuple(
            rule.body[position].atom.predicate for position in relational
        )
        self._body_preds = tuple(literal.atom.predicate for literal in rule.body)
        self.filters = tuple(
            _CompiledFilter(literal, position, slot_of, relational_slots, builtins)
            for position, literal in enumerate(rule.body)
            if literal.negated or literal.atom.predicate in builtins
        )

        # Precompiled head projection.
        head_spec: List[Tuple[bool, object]] = []
        self.head_unbound: Optional[Variable] = None
        for term in rule.head.terms:
            if isinstance(term, Constant):
                head_spec.append((False, term.value))
            else:
                head_spec.append((True, slot_of[term]))
                if slot_of[term] not in relational_slots and self.head_unbound is None:
                    self.head_unbound = term
        self.head_spec: ValueSpec = tuple(head_spec)

        #: The projection closure is rule-static (the head spec, the
        #: unbound-head guard and the leftover filters do not depend on the
        #: join order), so it is built once and shared by every _JoinPlan.
        self._project = _build_projector(
            self.head_spec,
            self.head_unbound,
            tuple(f for f in self.filters if f.unbound_term is not None),
        )

        #: Default join-order memo, used when the caller supplies none.
        #: Engines sharing this plan pass an instance-local memo instead.
        self._plans: PlanMemo = {}

        #: Statically-seeded plans per delta position, compiled once from
        #: *estimated* relation sizes (repro/analysis/cost.py) instead of
        #: live ones.  Consulted by :meth:`_plan_for` on a cold memo only —
        #: join order affects performance, never the fixpoint, so a seed is
        #: always safe; once live sizes disagree with the estimates enough
        #: to miss the memo again, the runtime planner takes over.
        self.seed_plans: Dict[Optional[int], _JoinPlan] = {}

    # ------------------------------------------------------------------
    # Plan lookup (bucket-memoised) and compilation
    # ------------------------------------------------------------------
    def plan_count(self) -> int:
        """Number of compiled join plans in the default memo (tests)."""
        return len(self._plans)

    def seed(self, delta_position: Optional[int], sizes: Mapping[int, int]) -> None:
        """Compile (once) a statically-seeded plan for ``delta_position``.

        ``sizes`` maps relational body positions to *estimated* relation
        sizes — typically from :func:`repro.analysis.cost.relation_estimates`
        at registry compile time, before any database exists.
        """
        if delta_position not in self.seed_plans:
            self.seed_plans[delta_position] = self._compile(delta_position, sizes)

    def _plan_for(
        self,
        facts: FactStorage,
        delta: Optional[DeltaSource],
        delta_position: Optional[int],
        memo: Optional[PlanMemo] = None,
        use_seeds: bool = True,
    ) -> _JoinPlan:
        # size_bucket() inlined: this runs once per rule firing, so the hit
        # path computes only the bucket signature; the full size map is
        # rebuilt on a memo miss (compile time dwarfs the extra lookups).
        signature: List[int] = []
        append = signature.append
        for position, predicate in zip(self.relational, self._rel_preds):
            if position == delta_position and delta is not None:
                append(len(delta.lookup(predicate)).bit_length())
            else:
                append(len(facts.lookup(predicate)).bit_length())
        key = (delta_position, tuple(signature))
        if memo is None:
            memo = self._plans
        plan = memo.get(key)
        if plan is None:
            if use_seeds:
                seed = self.seed_plans.get(delta_position)
            else:
                seed = None
            if seed is not None and all(k[0] != delta_position for k in memo):
                # Cold memo for this delta position: trust the static seed
                # and skip the greedy replan.  Later bucket-signature misses
                # (live sizes drifting from the estimates) recompile
                # adaptively as before.
                plan = seed
            else:
                sizes = {
                    position: len(
                        (
                            delta
                            if (position == delta_position and delta is not None)
                            else facts
                        ).lookup(predicate)
                    )
                    for position, predicate in zip(self.relational, self._rel_preds)
                }
                plan = self._compile(delta_position, sizes)
            memo[key] = plan
        return plan

    def _compile(
        self, delta_position: Optional[int], sizes: Mapping[int, int]
    ) -> _JoinPlan:
        body = self.rule.body
        slot_of = self.slot_of

        # Greedy selectivity order, exactly as the PR-1 join: the delta
        # literal seeds the order, then each pick maximises already-bound
        # terms and tie-breaks on smaller relation size.
        order = greedy_join_order(body, self.relational, delta_position, sizes)
        bound: Set[int] = set()

        # Second pass: per-step layouts plus filter hoist points.
        hoistable = sorted(
            (f for f in self.filters if f.unbound_term is None), key=lambda f: f.order
        )
        leftover = tuple(
            f for f in self.filters if f.unbound_term is not None
        )
        initial_filters = tuple(f for f in hoistable if not f.slots)
        pending = [f for f in hoistable if f.slots]
        steps: List[_JoinStep] = []
        for position in order:
            atom = body[position].atom
            bound_positions: List[int] = []
            key_spec: List[Tuple[bool, object]] = []
            bind_spec: List[Tuple[int, int]] = []
            check_spec: List[Tuple[int, int]] = []
            first_seen: Dict[int, int] = {}  # slot -> fact index of first unbound use
            for index, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    bound_positions.append(index)
                    key_spec.append((False, term.value))
                    continue
                slot = slot_of[term]
                if slot in bound:
                    bound_positions.append(index)
                    key_spec.append((True, slot))
                elif slot in first_seen:
                    check_spec.append((index, first_seen[slot]))
                else:
                    first_seen[slot] = index
                    bind_spec.append((index, slot))
            bound.update(first_seen)
            # NB: subset comparison is a partial order — "not <=" is NOT the
            # same as ">" here (a filter can be incomparable to bound).
            ready = tuple(f for f in pending if f.slots <= bound)
            if ready:
                pending = [f for f in pending if not (f.slots <= bound)]
            steps.append(
                _JoinStep(
                    position,
                    atom.predicate,
                    position == delta_position,
                    len(atom.terms),
                    tuple(bound_positions),
                    tuple(key_spec),
                    tuple(bind_spec),
                    tuple(check_spec),
                    ready,
                )
            )
        # Any hoistable filter still pending would need a slot no relational
        # literal binds — excluded by construction (unbound_term is set).
        assert not pending
        steps_tuple = tuple(steps)
        return _JoinPlan(
            steps_tuple,
            initial_filters,
            leftover,
            _build_executor(
                steps_tuple,
                initial_filters,
                self._project,
                self.nvars,
                self.head_spec,
                self.head_unbound,
                leftover,
            ),
        )

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def run(
        self,
        facts: FactStorage,
        delta: Optional[DeltaSource] = None,
        delta_position: Optional[int] = None,
        memo: Optional[PlanMemo] = None,
        use_seeds: bool = True,
    ) -> List[Fact]:
        """All head facts derivable by this rule (delta-restricted when asked).

        ``memo`` is the join-order memo to consult (defaulting to this
        plan's own); engines that share one plan through the registry pass
        an instance-local memo so their size-bucket histories stay separate.
        ``use_seeds=False`` opts out of statically-seeded plans (the
        property tests compare both paths).  The result is fully
        materialised before the caller inserts it, so inserting derived
        facts never mutates a relation mid-probe.

        ``facts`` / ``delta`` may be any storage backend satisfying the
        protocols of :mod:`repro.datalog.index`; evaluation dispatches to
        the plan's precompiled executor closure chain.
        """
        plan = self._plan_for(facts, delta, delta_position, memo, use_seeds)
        delta_rel: Optional[ProbeSource] = None
        if delta is not None and delta_position is not None:
            delta_rel = delta.lookup(self._body_preds[delta_position])
        return plan.executor(facts, delta_rel)


def compile_stratum(
    rules: Sequence[Rule], builtins: Mapping[str, Callable[..., bool]]
) -> Tuple[List[RulePlan], Dict[str, List[Tuple[RulePlan, int]]]]:
    """Compile one stratum into rule plans plus its delta trigger map.

    ``triggers[p]`` lists every ``(plan, position)`` whose body literal at
    ``position`` is a positive relational occurrence of ``p`` and ``p`` is
    derived inside the stratum — the only (rule, delta-position) pairs
    semi-naive iteration ever needs to fire for a delta on ``p``.
    """
    head_predicates = {rule.head.predicate for rule in rules}
    plans = [RulePlan(rule, builtins) for rule in rules]
    triggers: Dict[str, List[Tuple[RulePlan, int]]] = {}
    for plan in plans:
        for position, literal in enumerate(plan.rule.body):
            predicate = literal.atom.predicate
            if literal.negated or predicate in builtins:
                continue
            if predicate in head_predicates:
                triggers.setdefault(predicate, []).append((plan, position))
    return plans, triggers

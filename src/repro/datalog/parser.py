"""Textual parser for datalog programs.

Supported syntax (a superset of the examples in the paper, e.g. Example 2.1)::

    Italic(X) :- label_i(X).
    Italic(X) :- Italic(X0), firstchild(X0, X).
    Italic(X) :- Italic(X0), nextsibling(X0, X).

* ``:-`` and the arrow ``<-`` are both accepted as the rule separator.
* Identifiers starting with an uppercase letter or ``_`` are variables;
  everything else (including quoted strings and numbers) is a constant.
* ``not`` or ``!`` in front of a body atom negates it.
* ``%`` and ``#`` start line comments.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, NamedTuple, Optional

from .ast import Atom, Constant, Literal, Program, Rule, Span, Term, Variable, set_span


class DatalogSyntaxError(ValueError):
    """Raised when a program text cannot be parsed.

    Carries the 1-based source position (``line``, ``column``) when the
    failure can be localised, so tooling (:mod:`repro.analysis`) can point
    at the offending rule text.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        if line is not None:
            message = f"{message} (line {line}, col {column})"
        super().__init__(message)
        self.line = line
        self.column = column


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>[%#][^\n]*)
  | (?P<ARROW>:-|<-|←)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<NOT>\bnot\b|!)
  | (?P<STRING>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<NUMBER>-?\d+(?:\.\d+)?)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_\-*+]*)
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str
    value: str
    line: int  # 1-based
    column: int  # 1-based


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise DatalogSyntaxError(
                f"unexpected character {text[position]!r}",
                line,
                position - line_start + 1,
            )
        kind = match.lastgroup or ""
        value = match.group()
        token_line, token_column = line, position - line_start + 1
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = position + value.rindex("\n") + 1
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        tokens.append(Token(kind, value, token_line, token_column))
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    def peek(self) -> Optional[Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def last(self) -> Optional[Token]:
        if self._position:
            return self._tokens[self._position - 1]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            last = self.last()
            raise DatalogSyntaxError(
                "unexpected end of input",
                last.line if last else None,
                last.column if last else None,
            )
        self._position += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token.kind != kind:
            raise DatalogSyntaxError(
                f"expected {kind}, found {token.value!r}", token.line, token.column
            )
        return token.value

    def at_end(self) -> bool:
        return self._position >= len(self._tokens)


def _parse_term(stream: _TokenStream) -> Term:
    token = stream.next()
    kind, value = token.kind, token.value
    if kind == "STRING":
        return Constant(value[1:-1])
    if kind == "NUMBER":
        number = float(value)
        if number.is_integer():
            return Constant(int(number))
        return Constant(number)
    if kind == "NAME":
        if value[0].isupper() or value[0] == "_":
            return Variable(value)
        return Constant(value)
    raise DatalogSyntaxError(
        f"expected a term, found {value!r}", token.line, token.column
    )


def _parse_atom(stream: _TokenStream) -> Atom:
    predicate = stream.expect("NAME")
    terms: List[Term] = []
    token = stream.peek()
    if token is not None and token[0] == "LPAREN":
        stream.next()
        token = stream.peek()
        if token is not None and token[0] != "RPAREN":
            terms.append(_parse_term(stream))
            while stream.peek() is not None and stream.peek()[0] == "COMMA":
                stream.next()
                terms.append(_parse_term(stream))
        stream.expect("RPAREN")
    return Atom(predicate, tuple(terms))


def _parse_literal(stream: _TokenStream) -> Literal:
    token = stream.peek()
    negated = False
    if token is not None and token[0] == "NOT":
        stream.next()
        negated = True
    return Literal(_parse_atom(stream), negated=negated)


def _parse_rule(stream: _TokenStream) -> Rule:
    start = stream.peek()
    head = _parse_atom(stream)
    token = stream.peek()
    body: List[Literal] = []
    if token is not None and token[0] == "ARROW":
        stream.next()
        body.append(_parse_literal(stream))
        while stream.peek() is not None and stream.peek()[0] == "COMMA":
            stream.next()
            body.append(_parse_literal(stream))
    stream.expect("DOT")
    rule = Rule(head, tuple(body))
    end = stream.last()
    if start is not None and end is not None:
        set_span(rule, Span(start.line, start.column, end.line, end.column))
    return rule


def parse_rules(text: str) -> List[Rule]:
    """Parse a sequence of rules/facts from program text."""
    stream = _TokenStream(_tokenize(text))
    rules: List[Rule] = []
    while not stream.at_end():
        rules.append(_parse_rule(stream))
    return rules


def parse_program(
    text: str,
    edb_predicates: Iterable[str] = (),
) -> Program:
    """Parse program text into a :class:`Program`.

    ``edb_predicates`` declares the extensional predicates; when omitted,
    every predicate that never occurs in a rule head is treated as EDB.
    """
    rules = parse_rules(text)
    declared: FrozenSet[str] = frozenset(edb_predicates)
    if not declared:
        heads = {rule.head.predicate for rule in rules}
        body_predicates = {
            literal.atom.predicate for rule in rules for literal in rule.body
        }
        declared = frozenset(body_predicates - heads)
    return Program(rules=rules, edb_predicates=declared)


def parse_atom_text(text: str) -> Atom:
    """Parse a single atom such as ``price(X)`` (useful in tests)."""
    stream = _TokenStream(_tokenize(text))
    parsed = _parse_atom(stream)
    if not stream.at_end():
        raise DatalogSyntaxError(f"trailing input after atom in {text!r}")
    return parsed

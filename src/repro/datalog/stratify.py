"""Stratification of datalog programs with negation.

Elog supports stratified (datalog) negation (Section 3.3); the generic engine
therefore evaluates programs stratum by stratum.  A program is stratifiable
iff its predicate dependency graph has no cycle through a negative edge.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from .ast import Program, Rule


class StratificationError(ValueError):
    """Raised when a program is not stratifiable."""


def dependency_graph(program: Program) -> Dict[str, Set[Tuple[str, bool]]]:
    """Predicate dependency graph.

    ``graph[p]`` contains ``(q, negated)`` whenever some rule with head ``p``
    has a body literal over ``q``.
    """
    graph: Dict[str, Set[Tuple[str, bool]]] = defaultdict(set)
    for rule in program.rules:
        head = rule.head.predicate
        graph.setdefault(head, set())
        for literal in rule.body:
            graph[head].add((literal.atom.predicate, literal.negated))
    return dict(graph)


def stratify(program: Program) -> List[List[Rule]]:
    """Split ``program`` into strata (lists of rules), lowest stratum first.

    Raises :class:`StratificationError` when negation occurs in a recursive
    cycle.  EDB predicates always live in stratum 0.
    """
    graph = dependency_graph(program)
    idb = program.idb_predicates()

    # Iteratively compute stratum numbers: stratum(p) >= stratum(q) for
    # positive edges p -> q and stratum(p) >= stratum(q) + 1 for negative
    # edges.  A fixpoint beyond |IDB| strata means there is a negative cycle.
    stratum: Dict[str, int] = {predicate: 0 for predicate in graph}
    limit = len(idb) + 1
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > limit + 1:
            raise StratificationError("program is not stratifiable (negative cycle)")
        for head, dependencies in graph.items():
            for body_predicate, negated in dependencies:
                if body_predicate not in stratum:
                    continue
                required = stratum[body_predicate] + (1 if negated else 0)
                if stratum.get(head, 0) < required:
                    stratum[head] = required
                    if stratum[head] > limit:
                        raise StratificationError(
                            "program is not stratifiable (negative cycle)"
                        )
                    changed = True

    # Bucket rules by the stratum of their head predicate.
    buckets: Dict[int, List[Rule]] = defaultdict(list)
    for rule in program.rules:
        buckets[stratum.get(rule.head.predicate, 0)].append(rule)
    return [buckets[level] for level in sorted(buckets)]


def is_stratifiable(program: Program) -> bool:
    try:
        stratify(program)
    except StratificationError:
        return False
    return True

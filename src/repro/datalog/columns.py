"""Columnar relation storage: batch-oriented joins over posting sets.

The tuple-at-a-time storage of :mod:`repro.datalog.index` answers every
probe through a hash index keyed by *composite* bound-position tuples, and
the semi-naive loop materialises each iteration's delta into a separate
(recycled) :class:`~repro.datalog.index.IndexedDatabase`.  Both are
per-tuple designs: every probe allocates a key tuple, every delta rebuilds
bucket dictionaries, and the engine pays Python-level overhead per fact.

This module is the batch-oriented alternative behind the same storage
protocol (:class:`~repro.datalog.index.FactStorage`):

* :class:`ColumnarRelation` — one relation as an *append-only row array*
  plus per-column postings.  Every distinct fact tuple is interned exactly
  once (``rows[row_id] is the fact``), so the posting set for a column
  value is a set of interned rows — operationally identical to a set of
  row ids (each row object *is* its id's referent) while letting probes
  return matches with zero per-probe materialisation.  Multi-position
  probes under ``key_mode="prefix"`` are answered by **batch set
  intersection** over the per-column posting sets; under
  ``key_mode="full"`` (the default) a composite full-bound-position index
  is materialised lazily, exactly like the tuple layer — the
  ``index_key_*`` benchmark workloads compare the two.
* :class:`ColumnarWindow` — the semi-naive delta as a **row-id range
  slice** ``rows[lo:hi)`` over the append-only array.  The engine never
  copies or re-indexes a delta: it just advances per-predicate watermarks
  and slides one reusable window per relation.
* :class:`ColumnarDatabase` — the predicate-keyed collection implementing
  the same surface as :class:`~repro.datalog.index.IndexedDatabase`, plus
  the watermark helpers (:meth:`row_count`, :meth:`window`) the batched
  semi-naive loop of :class:`~repro.datalog.engine.SemiNaiveEngine` runs
  on.
* :class:`StorageStats` — the counters surfaced through
  ``SemiNaiveEngine.engine_info()`` / ``Session.engine_info()``: rows
  interned, posting-set intersections, delta batches and their sizes.

Columnar state is engine-internal scratch, like compiled plans: it is
rejected at the :mod:`repro.distrib` envelope boundary (workers rebuild
storage from the plain database payload), and fixpoint caching /
plan-registry fingerprints never see it — both key on plain databases and
program content, so they are storage-invariant by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .ast import Database

Fact = Tuple[object, ...]

_EMPTY: Tuple[Fact, ...] = ()

#: Accepted values of ``EngineOptions.index_keys`` / ``key_mode``.
KEY_MODES = ("full", "prefix")


class StorageStats:
    """Monotonic counters of one engine's columnar storage activity."""

    __slots__ = (
        "rows_interned",
        "posting_intersections",
        "delta_batches",
        "delta_rows",
        "max_delta_batch",
    )

    def __init__(self) -> None:
        #: Distinct fact tuples appended to row arrays (EDB load + derived).
        self.rows_interned = 0
        #: Multi-column probes answered by posting-set intersection
        #: (``key_mode="prefix"`` only; ``"full"`` probes a composite index).
        self.posting_intersections = 0
        #: Delta windows applied by the semi-naive loop.
        self.delta_batches = 0
        #: Total rows across all applied delta windows.
        self.delta_rows = 0
        #: Largest single delta window.
        self.max_delta_batch = 0


class ColumnarRelation:
    """One relation as an append-only row array plus per-column postings.

    ``rows`` is insertion-ordered and append-only: a fact's index in it is
    its row id, which is what makes range-slice deltas sound.  ``_row_of``
    interns facts (dedup + membership).  Postings and composite indexes are
    built lazily on first probe and maintained by *batch catch-up*: each
    access path records the row watermark it covers, appends touch no
    index at all, and a probe first folds in ``rows[covered:]``.  An access
    path that is never probed again (e.g. naive-round postings on a
    derived relation) therefore costs nothing as the relation grows, and a
    static relation's catch-up is a single integer comparison.
    """

    __slots__ = (
        "rows",
        "key_mode",
        "_row_of",
        "_postings",
        "_posting_covered",
        "_composites",
        "_composite_covered",
        "_stats",
    )

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        key_mode: str = "full",
        stats: Optional[StorageStats] = None,
    ) -> None:
        if key_mode not in KEY_MODES:
            raise ValueError(
                f"ColumnarRelation.key_mode must be one of {KEY_MODES}, "
                f"got {key_mode!r}"
            )
        self.rows: List[Fact] = []
        self.key_mode = key_mode
        self._row_of: Dict[Fact, int] = {}
        self._postings: Dict[int, Dict[object, Set[Fact]]] = {}
        self._posting_covered: Dict[int, int] = {}
        self._composites: Dict[Tuple[int, ...], Dict[Tuple[object, ...], List[Fact]]] = {}
        self._composite_covered: Dict[Tuple[int, ...], int] = {}
        self._stats = stats if stats is not None else StorageStats()
        if facts:
            # Bulk EDB load: no postings or composites exist yet, so
            # interning is the whole job — skip the per-add index upkeep.
            rows = self.rows
            row_of = self._row_of
            for f in facts:
                if f not in row_of:
                    row_of[f] = len(rows)
                    rows.append(f)
            self._stats.rows_interned += len(rows)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._row_of

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    # -- updates -------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Intern ``fact``; returns True iff it was new.

        Appends never touch an index: every access path catches up to the
        current watermark on its next probe (batch maintenance)."""
        row_of = self._row_of
        if fact in row_of:
            return False
        row_of[fact] = len(self.rows)
        self.rows.append(fact)
        self._stats.rows_interned += 1
        return True

    def add_batch(self, new_facts: Iterable[Fact]) -> int:
        """Bulk-append facts; returns how many were actually new.

        Interning dedups within the batch and against the relation; index
        upkeep is deferred to the next probe of each access path, so the
        batch itself is one pure interning pass.
        """
        rows = self.rows
        row_of = self._row_of
        before = len(rows)
        for fact in new_facts:
            if fact not in row_of:
                row_of[fact] = len(rows)
                rows.append(fact)
        count = len(rows) - before
        self._stats.rows_interned += count
        return count

    # -- probing -------------------------------------------------------------
    def ensure_column(self, position: int) -> Dict[object, Set[Fact]]:
        """The posting sets for one column, caught up to the watermark.

        Materialised on first use; later calls fold ``rows[covered:]`` into
        the buckets in one batch (a no-op comparison when nothing new)."""
        postings = self._postings.get(position)
        if postings is None:
            postings = self._postings[position] = {}
            covered = 0
        else:
            covered = self._posting_covered[position]
        rows = self.rows
        n = len(rows)
        if covered < n:
            for i in range(covered, n):
                fact = rows[i]
                if position < len(fact):
                    bucket = postings.get(fact[position])
                    if bucket is None:
                        postings[fact[position]] = {fact}
                    else:
                        bucket.add(fact)
            self._posting_covered[position] = n
        return postings

    def _ensure_composite(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[object, ...], List[Fact]]:
        buckets = self._composites.get(positions)
        if buckets is None:
            buckets = self._composites[positions] = {}
            covered = 0
        else:
            covered = self._composite_covered[positions]
        rows = self.rows
        n = len(rows)
        if covered < n:
            last = positions[-1]
            for i in range(covered, n):
                fact = rows[i]
                if last < len(fact):
                    key = tuple(fact[p] for p in positions)
                    matches = buckets.get(key)
                    if matches is None:
                        buckets[key] = [fact]
                    else:
                        matches.append(fact)
            self._composite_covered[positions] = n
        return buckets

    def ensure_index(self, positions: Tuple[int, ...]) -> None:
        """Eagerly materialise the access path a probe on ``positions`` uses.

        Called by the engine for the static index advice of
        :mod:`repro.analysis.cost` — single positions always mean one
        posting column; multi-position specs mean a composite index under
        ``key_mode="full"`` and the per-column postings under ``"prefix"``.
        """
        if len(positions) == 1:
            self.ensure_column(positions[0])
        elif self.key_mode == "full":
            self._ensure_composite(positions)
        else:
            for position in positions:
                self.ensure_column(position)

    def probe1(self, position: int, value: object) -> Iterable[Fact]:
        """Rows whose column ``position`` equals ``value`` (the hot path).

        Returns the posting set itself — zero per-probe materialisation.
        Callers must not mutate the result.
        """
        rows = self.rows
        postings = self._postings.get(position)
        if postings is None:
            if not rows:
                # Also keeps the shared _EMPTY_COLUMNAR sentinel immutable.
                return _EMPTY
            postings = self.ensure_column(position)
        elif self._posting_covered[position] != len(rows):
            self.ensure_column(position)
        return postings.get(value, _EMPTY)

    def probe(
        self, positions: Tuple[int, ...], key: Tuple[object, ...]
    ) -> Iterable[Fact]:
        """Rows matching ``key`` on ``positions`` (ascending).

        Single positions read one posting set; multiple positions read the
        composite index (``key_mode="full"``) or intersect per-column
        posting sets as one batch set operation (``key_mode="prefix"``).
        """
        if not positions:
            return self.rows
        if len(positions) == 1:
            return self.probe1(positions[0], key[0])
        if not self.rows:
            return _EMPTY
        if self.key_mode == "full":
            return self._ensure_composite(positions).get(key, _EMPTY)
        self._stats.posting_intersections += 1
        sets: List[Set[Fact]] = []
        for position, value in zip(positions, key):
            bucket = self.ensure_column(position).get(value)
            if not bucket:
                return _EMPTY
            sets.append(bucket)
        sets.sort(key=len)
        result = sets[0]
        for other in sets[1:]:
            result = result & other
            if not result:
                return _EMPTY
        return result

    def index_count(self) -> int:
        """Materialised access paths (posting columns plus composites)."""
        return len(self._postings) + len(self._composites)


class ColumnarWindow:
    """A row-id range ``[lo, hi)`` over one relation — the semi-naive delta.

    The engine keeps one window per derived predicate and slides ``lo`` /
    ``hi`` along the append-only row array as watermarks advance; applying
    a delta never copies or re-indexes facts.  A window doubles as the
    delta *database* the rule plans consult: :meth:`lookup` answers for its
    own predicate (anything else is empty by construction — a plan's delta
    step only ever reads the delta predicate).
    """

    __slots__ = ("predicate", "relation", "lo", "hi")

    def __init__(
        self, predicate: str, relation: ColumnarRelation, lo: int = 0, hi: int = 0
    ) -> None:
        self.predicate = predicate
        self.relation = relation
        self.lo = lo
        self.hi = hi

    def lookup(self, predicate: str) -> "ColumnarWindow | ColumnarRelation":
        return self if predicate == self.predicate else _EMPTY_COLUMNAR

    def __len__(self) -> int:
        return self.hi - self.lo

    def __bool__(self) -> bool:
        return self.hi > self.lo

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.relation.rows[self.lo : self.hi])

    def probe1(self, position: int, value: object) -> List[Fact]:
        """Range-restricted probe: scan the slice (deltas are small)."""
        return [
            fact
            for fact in self.relation.rows[self.lo : self.hi]
            if position < len(fact) and fact[position] == value
        ]

    def probe(
        self, positions: Tuple[int, ...], key: Tuple[object, ...]
    ) -> Sequence[Fact]:
        rows = self.relation.rows[self.lo : self.hi]
        if not positions:
            return rows
        last = positions[-1]
        return [
            fact
            for fact in rows
            if last < len(fact)
            and all(fact[p] == v for p, v in zip(positions, key))
        ]


class ColumnarDatabase:
    """Predicate-keyed :class:`ColumnarRelation` store (storage protocol).

    Implements the same surface as
    :class:`~repro.datalog.index.IndexedDatabase` plus the watermark
    helpers of the batched semi-naive loop.  All relations share the
    database's ``key_mode`` and :class:`StorageStats`.
    """

    __slots__ = ("relations", "key_mode", "stats")

    def __init__(
        self,
        database: Optional[Database] = None,
        key_mode: str = "full",
        stats: Optional[StorageStats] = None,
    ) -> None:
        if key_mode not in KEY_MODES:
            raise ValueError(
                f"ColumnarDatabase.key_mode must be one of {KEY_MODES}, "
                f"got {key_mode!r}"
            )
        self.relations: Dict[str, ColumnarRelation] = {}
        self.key_mode = key_mode
        self.stats = stats if stats is not None else StorageStats()
        if database:
            for predicate, facts in database.items():
                self.relations[predicate] = ColumnarRelation(
                    facts, key_mode, self.stats
                )

    # -- access --------------------------------------------------------------
    def relation(self, predicate: str) -> ColumnarRelation:
        """The (possibly empty, lazily created) relation for ``predicate``."""
        rel = self.relations.get(predicate)
        if rel is None:
            rel = self.relations[predicate] = ColumnarRelation(
                (), self.key_mode, self.stats
            )
        return rel

    def lookup(self, predicate: str) -> ColumnarRelation:
        """Read-only access: missing predicates map to a shared empty
        relation without creating an entry."""
        rel = self.relations.get(predicate)
        return rel if rel is not None else _EMPTY_COLUMNAR

    def facts_of(self, predicate: str) -> Set[Fact]:
        rel = self.relations.get(predicate)
        return set(rel.rows) if rel is not None else set()

    def size(self, predicate: str) -> int:
        rel = self.relations.get(predicate)
        return len(rel.rows) if rel is not None else 0

    def contains_fact(self, predicate: str, fact: Fact) -> bool:
        rel = self.relations.get(predicate)
        return rel is not None and fact in rel

    def __contains__(self, predicate: str) -> bool:
        return predicate in self.relations

    def __bool__(self) -> bool:
        return any(rel.rows for rel in self.relations.values())

    # -- updates -------------------------------------------------------------
    def add_fact(self, predicate: str, fact: Fact) -> bool:
        return self.relation(predicate).add(fact)

    def add_batch(self, predicate: str, facts: Iterable[Fact]) -> int:
        return self.relation(predicate).add_batch(facts)

    def load(self, batches: Dict[str, List[Fact]]) -> None:
        for predicate, facts in batches.items():
            if facts:
                self.relation(predicate).add_batch(facts)

    def clear(self) -> None:
        """Drop every relation (row arrays are append-only, so clearing
        means starting over — the columnar loop never recycles deltas)."""
        self.relations.clear()

    def prune_empty(self, predicates: Iterable[str]) -> None:
        """Drop still-empty relations the engine materialised as scratch.

        The sweep loop binds head relations and delta windows eagerly; any
        that never received a row must not surface as a spurious empty
        entry in :meth:`to_database` (the tuple layer only creates
        relations on first insert)."""
        for predicate in predicates:
            rel = self.relations.get(predicate)
            if rel is not None and not rel.rows:
                del self.relations[predicate]

    # -- watermarks (batched semi-naive loop) --------------------------------
    def row_count(self, predicate: str) -> int:
        """The current high watermark of ``predicate``'s row array."""
        rel = self.relations.get(predicate)
        return len(rel.rows) if rel is not None else 0

    def window(self, predicate: str, lo: int = 0, hi: int = 0) -> ColumnarWindow:
        """A (reusable) delta window over ``predicate``'s row array."""
        return ColumnarWindow(predicate, self.relation(predicate), lo, hi)

    # -- export --------------------------------------------------------------
    def to_database(self) -> Database:
        """A plain ``{predicate: set of facts}`` snapshot.

        This is the only shape that escapes the engine — fixpoint results,
        cache entries and distrib payloads all carry plain databases, which
        is what keeps every cache fingerprint storage-invariant.
        """
        return {predicate: set(rel.rows) for predicate, rel in self.relations.items()}


#: Shared sentinel for :meth:`ColumnarDatabase.lookup` misses; never mutated
#: (probes on an empty relation return before materialising postings).
_EMPTY_COLUMNAR = ColumnarRelation()

"""Function-free datalog: AST, parser, stratification, and evaluation."""

from .ast import (
    Atom,
    Constant,
    Database,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    const,
    fact,
    neg,
    rule,
    var,
)
from .cache import CacheInfo, FixpointCache, LruMap, database_content_hash
from .engine import (
    EvaluationError,
    EvaluationResult,
    SemiNaiveEngine,
    evaluate_program,
    query_program,
)
from .index import IndexedDatabase, RelationIndex
from .plan import RulePlan, compile_stratum
from .ltur import GroundHornSolver, solve_ground_program
from .parser import DatalogSyntaxError, parse_atom_text, parse_program, parse_rules
from .stratify import StratificationError, is_stratifiable, stratify
from .tree_edb import (
    label_predicate,
    nodes_for_indexes,
    tree_database,
    tree_fingerprint,
    tree_signature,
)

__all__ = [
    "Atom",
    "CacheInfo",
    "Constant",
    "Database",
    "DatalogSyntaxError",
    "EvaluationError",
    "EvaluationResult",
    "FixpointCache",
    "GroundHornSolver",
    "IndexedDatabase",
    "Literal",
    "LruMap",
    "Program",
    "RelationIndex",
    "Rule",
    "RulePlan",
    "SemiNaiveEngine",
    "StratificationError",
    "Variable",
    "compile_stratum",
    "database_content_hash",
    "atom",
    "const",
    "evaluate_program",
    "fact",
    "is_stratifiable",
    "label_predicate",
    "neg",
    "nodes_for_indexes",
    "parse_atom_text",
    "parse_program",
    "parse_rules",
    "query_program",
    "rule",
    "solve_ground_program",
    "stratify",
    "tree_database",
    "tree_fingerprint",
    "tree_signature",
    "var",
]

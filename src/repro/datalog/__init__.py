"""Function-free datalog: AST, parser, stratification, and evaluation."""

from .ast import (
    Atom,
    Constant,
    Database,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    const,
    fact,
    neg,
    rule,
    var,
)
from .cache import CacheInfo, FixpointCache, LruMap, database_content_hash
from .engine import (
    EvaluationError,
    EvaluationResult,
    SemiNaiveEngine,
    evaluate_program,
    query_program,
)
from .index import IndexedDatabase, RelationIndex
from .ltur import GroundHornSolver, solve_ground_program
from .options import DEFAULT_OPTIONS, EngineOptions, resolve_options
from .parser import DatalogSyntaxError, parse_atom_text, parse_program, parse_rules
from .plan import RulePlan, compile_stratum
from .registry import (
    CompiledProgram,
    PlanRegistry,
    clear_plan_registry,
    plan_registry_info,
    program_fingerprint,
    shared_compiled_program,
    shared_registry,
)
from .stratify import StratificationError, is_stratifiable, stratify
from .tree_edb import (
    label_predicate,
    nodes_for_indexes,
    tree_database,
    tree_fingerprint,
    tree_signature,
)

__all__ = [
    "Atom",
    "CacheInfo",
    "CompiledProgram",
    "Constant",
    "Database",
    "DatalogSyntaxError",
    "DEFAULT_OPTIONS",
    "EngineOptions",
    "EvaluationError",
    "EvaluationResult",
    "FixpointCache",
    "GroundHornSolver",
    "IndexedDatabase",
    "Literal",
    "LruMap",
    "PlanRegistry",
    "Program",
    "RelationIndex",
    "Rule",
    "RulePlan",
    "SemiNaiveEngine",
    "StratificationError",
    "Variable",
    "clear_plan_registry",
    "compile_stratum",
    "database_content_hash",
    "plan_registry_info",
    "program_fingerprint",
    "shared_compiled_program",
    "shared_registry",
    "atom",
    "const",
    "evaluate_program",
    "fact",
    "is_stratifiable",
    "label_predicate",
    "neg",
    "nodes_for_indexes",
    "parse_atom_text",
    "parse_program",
    "parse_rules",
    "query_program",
    "resolve_options",
    "rule",
    "solve_ground_program",
    "stratify",
    "tree_database",
    "tree_fingerprint",
    "tree_signature",
    "var",
]

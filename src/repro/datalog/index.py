"""Hash-index layer for datalog relations, and THE storage protocol.

The generic semi-naive engine originally matched every body literal by
scanning the whole relation once per partial substitution — an
O(|R|^k) nested-loop join.  This module provides the indexed alternative:

* :class:`RelationIndex` — one relation (a set of fact tuples) plus hash
  indexes keyed by tuples of argument positions.  Indexes are built lazily
  on first probe and maintained incrementally as facts are added
  (``add``) or in a single pass per index for a whole delta batch
  (``add_batch``); ``clear`` empties buckets in place so recycled delta
  storage keeps its index structure warm.  The semi-naive loop therefore
  never rebuilds an index from scratch.
* :class:`IndexedDatabase` — a predicate-keyed collection of
  :class:`RelationIndex` instances with the same ``{predicate: facts}``
  shape as :data:`~repro.datalog.ast.Database`, plus bulk ``load`` and
  in-place ``clear`` for the delta-compaction path of the engine.

The engine probes an index with the currently-bound prefix of a literal
(bound variables plus constants), turning each join step into expected
O(matching facts) instead of O(|R|).

**Storage protocol.**  This tuple-at-a-time layer and the columnar layer
(:mod:`repro.datalog.columns`) are interchangeable behind two structural
protocols: :class:`ProbeSource` (what one relation answers — ``probe`` /
``probe1`` / iteration / ``len``) and :class:`FactStorage` (the
predicate-keyed database surface).  The compiled rule executors of
:mod:`repro.datalog.plan` are written against the protocols only, so one
compiled program serves every storage backend — which is what keeps plan
sharing and fixpoint caching storage-invariant.

**Index keys.**  Both backends support two key modes for multi-position
probes (``EngineOptions.index_keys``): ``"full"`` materialises one
composite index per bound-position *tuple* (one hash lookup per probe,
one index per binding pattern), while ``"prefix"`` materialises only
single-position access paths and narrows the remaining positions by
filtering (tuple layer) or posting-set intersection (columnar layer).
The ``index_key_*`` workloads of ``benchmarks/bench_rule_plans.py``
measure the trade-off; ``"full"`` is the measured default.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Set, Tuple

from .ast import Database

Fact = Tuple[object, ...]

_EMPTY: Tuple[Fact, ...] = ()

#: Accepted values of the ``key_mode`` knob (``EngineOptions.index_keys``).
KEY_MODES = ("full", "prefix")


class ProbeSource(Protocol):
    """One relation as the rule executors see it (structural)."""

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Fact]: ...

    def probe(
        self, positions: Tuple[int, ...], key: Tuple[object, ...]
    ) -> Iterable[Fact]: ...

    def probe1(self, position: int, value: object) -> Iterable[Fact]: ...


class DeltaSource(Protocol):
    """What a semi-naive delta must answer: a relation per predicate.

    Satisfied by full databases (:class:`IndexedDatabase`,
    :class:`~repro.datalog.columns.ColumnarDatabase`) and by the columnar
    row-range windows (:class:`~repro.datalog.columns.ColumnarWindow`).
    """

    def lookup(self, predicate: str) -> ProbeSource: ...


class FactStorage(Protocol):
    """The predicate-keyed database surface shared by both backends."""

    def relation(self, predicate: str) -> ProbeSource: ...

    def lookup(self, predicate: str) -> ProbeSource: ...

    def facts_of(self, predicate: str) -> Set[Fact]: ...

    def size(self, predicate: str) -> int: ...

    def contains_fact(self, predicate: str, fact: Fact) -> bool: ...

    def add_fact(self, predicate: str, fact: Fact) -> bool: ...

    def load(self, batches: Dict[str, List[Fact]]) -> None: ...

    def to_database(self) -> Database: ...


class RelationIndex:
    """A relation plus lazily-built, incrementally-maintained hash indexes.

    Each index is keyed by a sorted tuple of argument positions; the bucket
    for a key holds every fact whose projection onto those positions equals
    the key.  Facts too short for an index's positions are simply absent
    from that index (they can never match a probe on those positions).

    ``key_mode="full"`` (default) materialises one composite index per
    probed position tuple; ``"prefix"`` answers multi-position probes from
    the first position's single-column index, filtering the rest — fewer
    indexes to maintain, more facts touched per probe.
    """

    __slots__ = ("facts", "key_mode", "_indexes")

    def __init__(self, facts: Iterable[Fact] = (), key_mode: str = "full") -> None:
        if key_mode not in KEY_MODES:
            raise ValueError(
                f"RelationIndex.key_mode must be one of {KEY_MODES}, "
                f"got {key_mode!r}"
            )
        self.facts: Set[Fact] = set(facts)
        self.key_mode = key_mode
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[object, ...], List[Fact]]] = {}

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self.facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts)

    def __bool__(self) -> bool:
        return bool(self.facts)

    # -- updates -------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert ``fact``; returns True iff it was new.

        Every materialised index is updated in O(1), keeping index
        maintenance amortised-constant per derived fact.
        """
        if fact in self.facts:
            return False
        self.facts.add(fact)
        for positions, buckets in self._indexes.items():
            if positions[-1] >= len(fact):
                continue
            key = tuple(fact[p] for p in positions)
            buckets.setdefault(key, []).append(fact)
        return True

    def add_batch(self, new_facts: Iterable[Fact]) -> int:
        """Bulk-insert facts, updating each materialised index in one pass.

        The semi-naive loop collects an iteration's delta as plain lists and
        loads them here, so k materialised indexes cost k tight passes over
        the batch instead of k dictionary updates per individual ``add``.
        Returns the number of facts that were actually new.
        """
        # Dedup within the batch as well as against the relation: a fact
        # appearing twice in one batch must land in each index bucket once,
        # or every later probe would yield duplicate join rows.
        known = self.facts
        batch_seen: Set[Fact] = set()
        fresh: List[Fact] = []
        for fact in new_facts:
            if fact in known or fact in batch_seen:
                continue
            batch_seen.add(fact)
            fresh.append(fact)
        if not fresh:
            return 0
        self.facts.update(fresh)
        for positions, buckets in self._indexes.items():
            last = positions[-1]
            setdefault = buckets.setdefault
            for fact in fresh:
                if last >= len(fact):
                    continue
                setdefault(tuple(fact[p] for p in positions), []).append(fact)
        return len(fresh)

    def clear(self) -> None:
        """Drop all facts but keep materialised index *structure* alive.

        Buckets are emptied in place and the set of indexed position tuples
        is preserved, so a relation reused as semi-naive delta storage keeps
        its indexes warm across iterations instead of lazily rebuilding them
        from scratch each time.
        """
        self.facts.clear()
        for buckets in self._indexes.values():
            buckets.clear()

    # -- probing -------------------------------------------------------------
    def ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[object, ...], List[Fact]]:
        """Materialise (once) and return the hash index for ``positions``.

        Normally indexes appear lazily on first :meth:`probe`; the engine
        also calls this eagerly before a first fixpoint for the key specs
        the static index advisor (:mod:`repro.analysis.cost`) predicts the
        compiled plans will probe with.
        """
        if self.key_mode == "prefix" and len(positions) > 1:
            # Prefix keys: only single-position indexes are materialised;
            # multi-position probes narrow through probe() instead.
            positions = (positions[0],)
        buckets = self._indexes.get(positions)
        if buckets is None:
            buckets = {}
            last = positions[-1]
            for fact in self.facts:
                if last >= len(fact):
                    continue
                buckets.setdefault(tuple(fact[p] for p in positions), []).append(fact)
            self._indexes[positions] = buckets
        return buckets

    def probe(self, positions: Tuple[int, ...], key: Tuple[object, ...]) -> Iterable[Fact]:
        """Facts whose values at ``positions`` (ascending) equal ``key``.

        With no bound positions this is a full scan by definition; otherwise
        the positions index is materialised on first use and probed in O(1).
        Under ``key_mode="prefix"`` a multi-position probe reads the first
        position's index and filters the remaining bound positions.
        """
        if not positions:
            return self.facts
        if not self.facts:
            # Also keeps the shared _EMPTY_RELATION sentinel truly immutable.
            return _EMPTY
        if self.key_mode == "prefix" and len(positions) > 1:
            prefix = self.ensure_index((positions[0],)).get((key[0],), _EMPTY)
            if not prefix:
                return _EMPTY
            rest = tuple(zip(positions[1:], key[1:]))
            return [
                fact
                for fact in prefix
                if positions[-1] < len(fact)
                and all(fact[p] == v for p, v in rest)
            ]
        return self.ensure_index(positions).get(key, _EMPTY)

    def probe1(self, position: int, value: object) -> Iterable[Fact]:
        """Single-position probe without key-tuple allocation (hot path of
        the compiled rule executors)."""
        if not self.facts:
            return _EMPTY
        return self.ensure_index((position,)).get((value,), _EMPTY)

    def index_count(self) -> int:
        """Number of materialised indexes (introspection / tests)."""
        return len(self._indexes)


class IndexedDatabase:
    """A set of :class:`RelationIndex` instances keyed by predicate name.

    ``key_mode`` is applied to every relation (see :class:`RelationIndex`).
    """

    __slots__ = ("relations", "key_mode")

    def __init__(
        self, database: Optional[Database] = None, key_mode: str = "full"
    ) -> None:
        if key_mode not in KEY_MODES:
            raise ValueError(
                f"IndexedDatabase.key_mode must be one of {KEY_MODES}, "
                f"got {key_mode!r}"
            )
        self.relations: Dict[str, RelationIndex] = {}
        self.key_mode = key_mode
        if database:
            for predicate, facts in database.items():
                self.relations[predicate] = RelationIndex(facts, key_mode)

    # -- access --------------------------------------------------------------
    def relation(self, predicate: str) -> RelationIndex:
        """The (possibly empty, lazily created) relation for ``predicate``."""
        index = self.relations.get(predicate)
        if index is None:
            index = self.relations[predicate] = RelationIndex((), self.key_mode)
        return index

    def lookup(self, predicate: str) -> RelationIndex:
        """Read-only access: missing predicates map to a shared empty
        relation without creating an entry (keeps the result database free
        of spurious empty extensions)."""
        index = self.relations.get(predicate)
        return index if index is not None else _EMPTY_RELATION

    def facts_of(self, predicate: str) -> Set[Fact]:
        index = self.relations.get(predicate)
        return index.facts if index is not None else set()

    def size(self, predicate: str) -> int:
        index = self.relations.get(predicate)
        return len(index) if index is not None else 0

    def contains_fact(self, predicate: str, fact: Fact) -> bool:
        index = self.relations.get(predicate)
        return index is not None and fact in index

    def __contains__(self, predicate: str) -> bool:
        return predicate in self.relations

    def __bool__(self) -> bool:
        return any(self.relations.values())

    # -- updates -------------------------------------------------------------
    def add_fact(self, predicate: str, fact: Fact) -> bool:
        """Insert a fact, updating indexes incrementally; True iff new."""
        return self.relation(predicate).add(fact)

    def load(self, batches: Dict[str, List[Fact]]) -> None:
        """Bulk-load ``{predicate: facts}`` via batched index updates."""
        for predicate, facts in batches.items():
            if facts:
                self.relation(predicate).add_batch(facts)

    def clear(self) -> None:
        """Empty every relation in place, keeping index structure warm.

        Used by the semi-naive loop to recycle delta storage across
        iterations instead of allocating a fresh database per round.
        """
        for relation in self.relations.values():
            relation.clear()

    # -- export --------------------------------------------------------------
    def to_database(self) -> Database:
        """A plain ``{predicate: set of facts}`` snapshot."""
        return {
            predicate: set(index.facts) for predicate, index in self.relations.items()
        }


#: Shared sentinel for :meth:`IndexedDatabase.lookup` misses; never mutated.
_EMPTY_RELATION = RelationIndex()

"""Shared compiled-program registry: cross-engine rule-plan reuse.

The Transformation Server (Section 5) hosts hundreds of wrapper components,
and in practice most of them wrap the same handful of Elog / monadic-datalog
programs.  Before this module, every :class:`~repro.datalog.engine.
SemiNaiveEngine` recompiled the identical program at construction —
stratification, one :class:`~repro.datalog.plan.RulePlan` per rule, the
per-stratum delta trigger maps — so N components over K distinct programs
paid N compilations instead of K.

:class:`PlanRegistry` interns those compilation artifacts process-wide:

* Programs are keyed by a cheap, order-independent content fingerprint
  (:func:`program_fingerprint`, mirroring
  :func:`repro.datalog.cache.database_content_hash`), and every fingerprint
  hit is verified exactly against a stored rule-set snapshot before the
  compiled program is shared — a colliding hash can never alias two
  different programs.  Programs whose rule *sets* are equal share one
  compilation regardless of rule order or duplication (neither affects the
  fixpoint).
* The shared :class:`CompiledProgram` holds only immutable-per-program
  state: the strata, the ``RulePlan`` list per stratum, and the trigger
  maps.  Everything sized by the *database* rather than the program —
  join-order memos keyed by size buckets, delta databases, fixpoint LRUs —
  stays instance-local in the engines (see ``SemiNaiveEngine._plan_memos``),
  so two engines over wildly different databases never fight over plans and
  sharing is safe under concurrent evaluation.
* Entries are evicted least-recently-used; hit/miss counters are exposed
  through :meth:`PlanRegistry.info` exactly like the fixpoint cache, so the
  server benchmarks can assert "200 components, 4 programs, 4 compilations".

``SemiNaiveEngine(share_plans=False)`` opts an engine out (the ablation
baseline); the registry itself is a module-level singleton reachable through
:func:`shared_registry` / :func:`shared_compiled_program`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from .ast import Program, Rule
from .cache import CacheInfo, VerifiedLruBuckets
from .plan import RulePlan, compile_stratum
from .stratify import stratify

#: Exact identity of a program for sharing purposes: the rule set plus the
#: EDB split.  Rule order and duplication are deliberately ignored — both
#: are fixpoint-preserving, so programs differing only in those share.
ProgramSnapshot = Tuple[FrozenSet[Rule], FrozenSet[str]]


def program_fingerprint(program: Program) -> int:
    """A cheap, order-independent content fingerprint of ``program``.

    Mirrors :func:`repro.datalog.cache.database_content_hash`: XOR-combining
    per-rule hashes makes the result independent of rule order without
    sorting, and the rule count plus the EDB predicate set are folded in so
    that structurally different programs rarely collide.  Collisions are
    harmless — the registry verifies every hit exactly against a
    :data:`ProgramSnapshot`.
    """
    rules_hash = 0
    for rule in program.rules:
        rules_hash ^= hash(rule)
    return hash((len(program.rules), rules_hash, program.edb_predicates))


def program_snapshot(program: Program) -> ProgramSnapshot:
    return (frozenset(program.rules), program.edb_predicates)


class CompiledProgram:
    """The shared, per-program compilation artifacts of one datalog program.

    Everything here depends only on the program text (and the builtin
    table), never on a database: strata, rule plans, and trigger maps are
    immutable once built and safe to share across any number of engines.
    Database-dependent state — the bucket-keyed join-order memos that
    ``RulePlan.run`` consults — is supplied per call by each engine.
    """

    __slots__ = (
        "fingerprint",
        "strata",
        "stratum_plans",
        "stratum_triggers",
        "index_advice",
    )

    def __init__(
        self,
        program: Program,
        builtins: Mapping[str, Callable[..., bool]],
        fingerprint: int,
    ) -> None:
        self.fingerprint = fingerprint
        self.strata: List[List[Rule]] = stratify(program)
        self.stratum_plans: List[List[RulePlan]] = []
        self.stratum_triggers: List[Dict[str, List[Tuple[RulePlan, int]]]] = []
        for stratum_rules in self.strata:
            plans, triggers = compile_stratum(stratum_rules, builtins)
            self.stratum_plans.append(plans)
            self.stratum_triggers.append(triggers)
        # Seed every plan from the static cost model and record which hash
        # indexes the seeded plans will probe (the engine pre-builds them).
        # The plans are not yet published to any engine here, so seeding
        # needs no locking; the import is lazy only to keep the low-level
        # datalog package importable without the analysis layer at
        # module-import time (analysis imports plan/stratify from here).
        from ..analysis.cost import seed_rule_plans

        self.index_advice: Dict[str, Tuple[Tuple[int, ...], ...]] = seed_rule_plans(
            self.stratum_plans, self.stratum_triggers, program
        )

    def plans(self) -> Iterator[RulePlan]:
        """All rule plans across strata (introspection / memo setup)."""
        for stratum in self.stratum_plans:
            yield from stratum


class _Entry:
    __slots__ = ("snapshot", "builtins", "compiled")

    def __init__(
        self,
        snapshot: ProgramSnapshot,
        builtins: Mapping[str, Callable[..., bool]],
        compiled: CompiledProgram,
    ) -> None:
        self.snapshot = snapshot
        self.builtins = builtins
        self.compiled = compiled


class _AnalysisEntry:
    __slots__ = ("snapshot", "key", "value")

    def __init__(self, snapshot: ProgramSnapshot, key: object, value: object) -> None:
        self.snapshot = snapshot
        self.key = key
        self.value = value


class PlanRegistry:
    """An LRU of compiled programs keyed by content fingerprints.

    Built on the same :class:`~repro.datalog.cache.VerifiedLruBuckets` core
    as the fixpoint cache: fingerprint buckets disambiguated by exact
    snapshot comparison, least-recently-used eviction, and hit/miss
    counters behind :meth:`info`.  Builtin tables are compared by identity
    (every engine shares the class-level ``SemiNaiveEngine.BUILTINS``
    mapping); a caller with a custom table gets its own entries.  All
    registry operations are lock-protected so engines constructed from
    concurrent server threads share safely; compilation itself runs outside
    the lock.
    """

    # __weakref__ lets per-registry companion caches (e.g. the automata
    # layer's evaluator caches) key weakly on the registry without pinning
    # it alive.
    __slots__ = (
        "hits",
        "misses",
        "analysis_hits",
        "analysis_misses",
        "_entries",
        "_analysis",
        "_lock",
        "__weakref__",
    )

    def __init__(self, capacity: int = 256) -> None:
        self.hits = 0
        self.misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        # One lock serves both the counters and the bucket core (re-entrant,
        # so the buckets' own internal locking nests under the compound
        # find-or-insert sections below without deadlocking).
        self._lock = threading.RLock()
        self._entries: VerifiedLruBuckets[_Entry] = VerifiedLruBuckets(
            capacity, lock=self._lock
        )
        # Companion store for per-program derived artifacts (static-analysis
        # reports).  Kept generic — the registry stays analysis-agnostic;
        # callers supply the compute closure and an extra key for variants
        # (e.g. which EDB signature the analysis assumed).
        self._analysis: VerifiedLruBuckets[_AnalysisEntry] = VerifiedLruBuckets(
            capacity, lock=self._lock
        )

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def compiled(
        self, program: Program, builtins: Mapping[str, Callable[..., bool]]
    ) -> CompiledProgram:
        """The shared compilation of ``program``, compiling on first use."""
        fingerprint = program_fingerprint(program)
        snapshot = program_snapshot(program)

        def matches(entry: _Entry) -> bool:
            return entry.builtins is builtins and entry.snapshot == snapshot

        with self._lock:
            entry = self._entries.find(fingerprint, matches)
            if entry is not None:
                self.hits += 1
                return entry.compiled
            self.misses += 1
        compiled = CompiledProgram(program, builtins, fingerprint)
        with self._lock:
            # A racing thread may have compiled the same program meanwhile;
            # keep its entry so every engine shares one object.
            entry = self._entries.find(fingerprint, matches)
            if entry is not None:
                return entry.compiled
            self._entries.insert(fingerprint, _Entry(snapshot, builtins, compiled))
        return compiled

    def analysis_cached(
        self,
        program: Program,
        compute: Callable[[], object],
        key: object = None,
    ) -> object:
        """A per-program derived artifact, computed once per content.

        Keyed by the same content fingerprint/snapshot discipline as
        :meth:`compiled` — two content-equal programs (regardless of rule
        order or duplication) share one ``compute()`` result.  ``key``
        distinguishes variants of the artifact for the same program (the
        analysis layer passes the assumed EDB signature).  ``compute`` runs
        outside the lock; on a race the first inserted value wins.
        """
        fingerprint = hash((program_fingerprint(program), key))
        snapshot = program_snapshot(program)

        def matches(entry: _AnalysisEntry) -> bool:
            return entry.key == key and entry.snapshot == snapshot

        with self._lock:
            entry = self._analysis.find(fingerprint, matches)
            if entry is not None:
                self.analysis_hits += 1
                return entry.value
            self.analysis_misses += 1
        value = compute()
        with self._lock:
            entry = self._analysis.find(fingerprint, matches)
            if entry is not None:
                return entry.value
            self._analysis.insert(
                fingerprint, _AnalysisEntry(snapshot, key, value)
            )
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._analysis.clear()
            self.hits = 0
            self.misses = 0
            self.analysis_hits = 0
            self.analysis_misses = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self.hits, self.misses, len(self._entries), self.capacity)

    def analysis_info(self) -> CacheInfo:
        """Hit/miss statistics of the analysis-artifact store."""
        with self._lock:
            return CacheInfo(
                self.analysis_hits,
                self.analysis_misses,
                len(self._analysis),
                self._analysis.capacity,
            )

    def compile_count(self) -> int:
        """How many compilations this registry has actually performed.

        Every miss of :meth:`compiled` is one real compilation; the distrib
        workers report this so the executor can assert "each distinct
        program compiled once per worker, not per document".
        """
        with self._lock:
            return self.misses

    def rehydrate(
        self,
        program: Program,
        builtins: Mapping[str, Callable[..., bool]],
        expected_fingerprint: Optional[int] = None,
    ) -> CompiledProgram:
        """The distrib worker's re-hydration entry point.

        Compiled plans are deliberately never pickled (they close over the
        builtin callables); a worker receiving a task envelope recompiles
        the shipped *program* through its own registry — once per distinct
        program per worker, the LRU serving every later document.  When the
        envelope carries the sender's ``expected_fingerprint``, the
        re-hydrated compilation is verified against it, so a program
        mangled in transit (or a protocol mismatch between parent and
        worker versions) fails loudly instead of evaluating the wrong
        rules.
        """
        compiled = self.compiled(program, builtins)
        if (
            expected_fingerprint is not None
            and compiled.fingerprint != expected_fingerprint
        ):
            raise ValueError(
                "re-hydrated program fingerprint "
                f"{compiled.fingerprint} does not match the task envelope's "
                f"{expected_fingerprint}; parent and worker disagree about "
                "the program content"
            )
        return compiled

    # -- pickling (the distrib worker protocol) --------------------------
    #
    # Compiled entries hold RulePlans closing over builtin callables
    # (lambdas) — they cannot cross a process boundary, and shipping them
    # would defeat the whole re-hydration design.  A pickled registry is
    # therefore an *empty* registry of the same capacity: the receiving
    # process recompiles on demand through :meth:`rehydrate`.
    def __getstate__(self):
        return {"capacity": self.capacity}

    def __setstate__(self, state) -> None:
        self.hits = 0
        self.misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        self._lock = threading.RLock()
        self._entries = VerifiedLruBuckets(state["capacity"], lock=self._lock)
        self._analysis = VerifiedLruBuckets(state["capacity"], lock=self._lock)


#: Process-wide singleton: every engine with ``share_plans=True`` (the
#: default) compiles through this registry.
_SHARED_REGISTRY = PlanRegistry()


def shared_registry() -> PlanRegistry:
    """The process-wide compiled-program registry."""
    return _SHARED_REGISTRY


def shared_compiled_program(
    program: Program, builtins: Mapping[str, Callable[..., bool]]
) -> CompiledProgram:
    """Compile ``program`` through the shared registry (or reuse)."""
    return _SHARED_REGISTRY.compiled(program, builtins)


def plan_registry_info() -> CacheInfo:
    """Hit/miss statistics of the shared registry (tests / monitoring)."""
    return _SHARED_REGISTRY.info()


def clear_plan_registry() -> None:
    """Drop every shared compilation and reset the counters."""
    _SHARED_REGISTRY.clear()

"""Abstract syntax of (function-free) datalog programs.

This is the substrate language of Section 2: terms are either variables or
constants, atoms combine a predicate symbol with a tuple of terms, rules are
Horn clauses (optionally with negated body literals, interpreted under
stratified semantics), and programs are rule collections with a designated
set of extensional (EDB) predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A datalog variable (by convention capitalised in the textual syntax)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant; the payload may be any hashable Python value."""

    value: object

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


Term = Union[Variable, Constant]


@dataclass(frozen=True)
class Span:
    """A source location (1-based line/column range) of a parsed construct.

    Spans are carried *outside* dataclass equality: parsers attach them to
    frozen AST nodes via :func:`set_span` (a plain ``__dict__`` attribute,
    never a field), so two content-equal rules parsed from different places
    still compare, hash and fingerprint identically — plan-registry sharing
    and analysis caching stay keyed by content alone.
    """

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        return f"line {self.line}, col {self.column}"


def set_span(node: object, span: Span) -> None:
    """Attach a source span to an AST node (frozen dataclasses included)."""
    object.__setattr__(node, "_span", span)


def get_span(node: object) -> Optional[Span]:
    """The source span attached to ``node`` by its parser, if any."""
    return getattr(node, "_span", None)


def is_variable(term: Term) -> bool:
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    return isinstance(term, Constant)


@dataclass(frozen=True)
class Atom:
    """A predicate applied to a tuple of terms."""

    predicate: str
    terms: Tuple[Term, ...]

    def __hash__(self) -> int:
        # Cached: atoms are immutable and hashed hot — program fingerprints
        # (repro/datalog/registry.py) and plan/slot tables hash the same
        # objects over and over, and the generated dataclass hash walks the
        # whole term tuple every call.
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash((self.predicate, self.terms))
            object.__setattr__(self, "_hash", value)
        return value

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        inner = ", ".join(str(term) for term in self.terms)
        return f"{self.predicate}({inner})"

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Set[Variable]:
        return {term for term in self.terms if isinstance(term, Variable)}

    def is_ground(self) -> bool:
        return all(isinstance(term, Constant) for term in self.terms)

    def substitute(self, substitution: Dict[Variable, Term]) -> "Atom":
        return Atom(
            self.predicate,
            tuple(
                substitution.get(term, term) if isinstance(term, Variable) else term
                for term in self.terms
            ),
        )


@dataclass(frozen=True)
class Literal:
    """A possibly-negated atom occurring in a rule body."""

    atom: Atom
    negated: bool = False

    def __str__(self) -> str:
        return f"not {self.atom}" if self.negated else str(self.atom)

    def variables(self) -> Set[Variable]:
        return self.atom.variables()


@dataclass(frozen=True)
class Rule:
    """A datalog rule  head :- body."""

    head: Atom
    body: Tuple[Literal, ...] = ()

    def __hash__(self) -> int:
        # Cached for the same reason as :meth:`Atom.__hash__`: rule hashing
        # is the per-construction cost of registry fingerprints.
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash((self.head, self.body))
            object.__setattr__(self, "_hash", value)
        return value

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body_text = ", ".join(str(literal) for literal in self.body)
        return f"{self.head} :- {body_text}."

    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def variables(self) -> Set[Variable]:
        result = set(self.head.variables())
        for literal in self.body:
            result |= literal.variables()
        return result

    def positive_body(self) -> List[Atom]:
        return [literal.atom for literal in self.body if not literal.negated]

    def negative_body(self) -> List[Atom]:
        return [literal.atom for literal in self.body if literal.negated]

    def is_safe(self) -> bool:
        """Safety: every head / negated-body variable occurs in a positive body atom.

        Cached per rule object — every engine construction re-validates its
        program, and with the plan registry sharing compilation the repeated
        safety walk would otherwise dominate construction.
        """
        cached = self.__dict__.get("_safe")
        if cached is not None:
            return cached
        positive_variables: Set[Variable] = set()
        for atom in self.positive_body():
            positive_variables |= atom.variables()
        needed = set(self.head.variables())
        for atom in self.negative_body():
            needed |= atom.variables()
        safe = needed <= positive_variables
        object.__setattr__(self, "_safe", safe)
        return safe


@dataclass
class Program:
    """A datalog program: a list of rules plus an EDB/IDB split.

    ``edb_predicates`` lists the extensional predicates (supplied by the
    database, here: the tree relations); every predicate appearing in a rule
    head is intensional.
    """

    rules: List[Rule] = field(default_factory=list)
    edb_predicates: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        self.rules = list(self.rules)
        self.edb_predicates = frozenset(self.edb_predicates)

    # -- structure ---------------------------------------------------------
    def idb_predicates(self) -> Set[str]:
        return {rule.head.predicate for rule in self.rules}

    def all_predicates(self) -> Set[str]:
        result = set(self.edb_predicates) | self.idb_predicates()
        for rule in self.rules:
            for literal in rule.body:
                result.add(literal.atom.predicate)
        return result

    def rules_for(self, predicate: str) -> List[Rule]:
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        self.rules.extend(rules)

    def size(self) -> int:
        """Program size |P|: total number of atoms occurring in the program."""
        return sum(1 + len(rule.body) for rule in self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    # -- validation ----------------------------------------------------------
    def check_safety(self) -> None:
        for rule in self.rules:
            if not rule.is_safe():
                raise ValueError(f"unsafe rule: {rule}")

    def uses_negation(self) -> bool:
        return any(literal.negated for rule in self.rules for literal in rule.body)

    def is_monadic(self) -> bool:
        """True iff every intensional predicate is unary (monadic datalog)."""
        idb = self.idb_predicates()
        for rule in self.rules:
            if rule.head.arity != 1:
                return False
            for literal in rule.body:
                if literal.atom.predicate in idb and literal.atom.arity != 1:
                    return False
        return True


# ---------------------------------------------------------------------------
# Convenience constructors used throughout tests and higher layers
# ---------------------------------------------------------------------------


def var(name: str) -> Variable:
    return Variable(name)


def const(value: object) -> Constant:
    return Constant(value)


def atom(predicate: str, *terms: Union[Term, str, int, float]) -> Atom:
    """Build an atom, coercing bare strings starting with an uppercase letter
    or underscore to variables and everything else to constants."""
    converted: List[Term] = []
    for term in terms:
        if isinstance(term, (Variable, Constant)):
            converted.append(term)
        elif isinstance(term, str) and term[:1].isupper():
            converted.append(Variable(term))
        elif isinstance(term, str) and term.startswith("_"):
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(predicate, tuple(converted))


def rule(head: Atom, *body: Union[Atom, Literal]) -> Rule:
    literals = tuple(
        item if isinstance(item, Literal) else Literal(item) for item in body
    )
    return Rule(head, literals)


def neg(item: Atom) -> Literal:
    return Literal(item, negated=True)


def fact(predicate: str, *values: object) -> Rule:
    return Rule(Atom(predicate, tuple(Constant(value) for value in values)))


Fact = Tuple[object, ...]
Database = Dict[str, Set[Tuple[object, ...]]]


def empty_database(predicates: Optional[Sequence[str]] = None) -> Database:
    return {predicate: set() for predicate in (predicates or [])}

"""The simulated Web: offline document acquisition.

The paper's applications wrap live Web sites; in this offline reproduction a
:class:`SimulatedWeb` holds a set of URL -> HTML mappings (produced by the
site generators in :mod:`repro.web.sites`) and serves parsed documents to the
Extractor and the Transformation Server.  Pages can be *mutated* between
fetches, which is how source monitoring / change detection (Section 5, the
flight application of Section 6.2) is exercised — and *faults* can be
installed (:meth:`SimulatedWeb.install_faults`) so the resilience layer's
failure modes are exercised against the same pages.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..elog.extractor import Fetcher
from ..html import parse_html
from ..resilience.errors import PermanentFetchError
from ..tree.document import Document

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultPlan


def _normalise(url: str) -> str:
    url = url.strip().lower()
    for prefix in ("https://", "http://"):
        if url.startswith(prefix):
            url = url[len(prefix):]
    return url.rstrip("/")


def _resolve_key(key: str, published: Dict[str, object]) -> Optional[str]:
    """The published key serving ``key``, deterministically.

    Exact match wins outright.  Lenient prefix matching — wrappers may name
    a site by its entry-URL prefix — used to return whichever candidate
    dict iteration happened to visit first; with several prefix-matching
    pages that made the served page an accident of insertion order.  Now
    the *longest* matching candidate wins (the most specific page), with
    lexicographic order breaking exact-length ties, so resolution is a pure
    function of the published set.
    """
    if key in published:
        return key
    best: Optional[str] = None
    for candidate in published:
        if candidate.startswith(key) or key.startswith(candidate):
            if best is None or (len(candidate), candidate) > (len(best), best):
                best = candidate
    return best


class SimulatedWeb(Fetcher):
    """An in-memory Web of HTML pages addressed by URL.

    ``fetch_log`` records every fetch *attempt* (``fetch`` and
    ``fetch_html`` alike — politeness and dedup accounting must see both
    entry points, and a failed request still hit the server);
    ``error_log`` additionally records ``(url, error message)`` per failed
    attempt.  :meth:`install_faults` arms a seeded
    :class:`~repro.resilience.faults.FaultPlan` so site-level tests inject
    failures without wrapping the fetcher.
    """

    def __init__(self) -> None:
        self._pages: Dict[str, str] = {}
        self.fetch_log: List[str] = []
        self.error_log: List[Tuple[str, str]] = []
        self._fault_plan: Optional["FaultPlan"] = None
        self._fault_sleep: Callable[[float], None] = time.sleep

    # -- publishing -------------------------------------------------------
    def publish(self, url: str, html: str) -> None:
        """Publish (or replace) the page at ``url``."""
        self._pages[_normalise(url)] = html

    def publish_many(self, pages: Dict[str, str]) -> None:
        for url, html in pages.items():
            self.publish(url, html)

    def update(self, url: str, transform: Callable[[str], str]) -> None:
        """Mutate an already published page (simulates a site change)."""
        key = _normalise(url)
        self._pages[key] = transform(self._pages[key])

    def remove(self, url: str) -> None:
        self._pages.pop(_normalise(url), None)

    # -- fault injection --------------------------------------------------
    def install_faults(
        self,
        plan: Optional["FaultPlan"],
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Arm (or with ``None`` disarm) a fault plan on this web.

        Every subsequent fetch is adjudicated by the plan before the page
        is served: injected latency sleeps (through ``sleep``, injectable
        so tests burn no wall-clock), injected errors raise.  Fetch
        counting, logging and the plan's own tallies all still apply.
        """
        self._fault_plan = plan
        self._fault_sleep = sleep

    def _adjudicate(self, url: str) -> None:
        if self._fault_plan is None:
            return
        decision = self._fault_plan.decide(url)
        if decision.delay_s:
            self._fault_sleep(decision.delay_s)
        if decision.error is not None:
            raise decision.error

    # -- fetching -----------------------------------------------------------
    def fetch(self, url: str) -> Document:
        html = self.fetch_html(url)
        return parse_html(html, url=url)

    def fetch_html(self, url: str) -> str:
        self.fetch_log.append(url)
        try:
            self._adjudicate(url)
            key = _resolve_key(_normalise(url), self._pages)
            if key is None:
                raise PermanentFetchError(f"no page published at {url!r}", url=url)
        except Exception as error:
            self.error_log.append((url, str(error)))
            raise
        return self._pages[key]

    def has(self, url: str) -> bool:
        return _resolve_key(_normalise(url), self._pages) is not None

    def urls(self) -> List[str]:
        return sorted(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    # -- helpers ---------------------------------------------------------------
    _normalise = staticmethod(_normalise)

    def _resolve(self, url: str) -> Optional[str]:
        return _resolve_key(_normalise(url), self._pages)


class StaticDocumentFetcher(Fetcher):
    """A fetcher over already-parsed documents (used in unit tests)."""

    def __init__(self, documents: Dict[str, Document]) -> None:
        self._documents = {_normalise(url): doc for url, doc in documents.items()}

    def fetch(self, url: str) -> Document:
        key = _resolve_key(_normalise(url), self._documents)
        if key is None:
            raise PermanentFetchError(f"no document registered for {url!r}", url=url)
        return self._documents[key]

"""The simulated Web: offline document acquisition.

The paper's applications wrap live Web sites; in this offline reproduction a
:class:`SimulatedWeb` holds a set of URL -> HTML mappings (produced by the
site generators in :mod:`repro.web.sites`) and serves parsed documents to the
Extractor and the Transformation Server.  Pages can be *mutated* between
fetches, which is how source monitoring / change detection (Section 5, the
flight application of Section 6.2) is exercised.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..elog.extractor import Fetcher
from ..html import parse_html
from ..tree.document import Document


class SimulatedWeb(Fetcher):
    """An in-memory Web of HTML pages addressed by URL."""

    def __init__(self) -> None:
        self._pages: Dict[str, str] = {}
        self.fetch_log: List[str] = []

    # -- publishing -------------------------------------------------------
    def publish(self, url: str, html: str) -> None:
        """Publish (or replace) the page at ``url``."""
        self._pages[self._normalise(url)] = html

    def publish_many(self, pages: Dict[str, str]) -> None:
        for url, html in pages.items():
            self.publish(url, html)

    def update(self, url: str, transform: Callable[[str], str]) -> None:
        """Mutate an already published page (simulates a site change)."""
        key = self._normalise(url)
        self._pages[key] = transform(self._pages[key])

    def remove(self, url: str) -> None:
        self._pages.pop(self._normalise(url), None)

    # -- fetching -----------------------------------------------------------
    def fetch(self, url: str) -> Document:
        key = self._resolve(url)
        if key is None:
            raise KeyError(f"no page published at {url!r}")
        self.fetch_log.append(url)
        return parse_html(self._pages[key], url=url)

    def fetch_html(self, url: str) -> str:
        key = self._resolve(url)
        if key is None:
            raise KeyError(f"no page published at {url!r}")
        return self._pages[key]

    def has(self, url: str) -> bool:
        return self._resolve(url) is not None

    def urls(self) -> List[str]:
        return sorted(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _normalise(url: str) -> str:
        url = url.strip().lower()
        for prefix in ("https://", "http://"):
            if url.startswith(prefix):
                url = url[len(prefix):]
        return url.rstrip("/")

    def _resolve(self, url: str) -> Optional[str]:
        key = self._normalise(url)
        if key in self._pages:
            return key
        # lenient matching: wrappers may name a site by its entry URL prefix
        for candidate in self._pages:
            if candidate.startswith(key) or key.startswith(candidate):
                return candidate
        return None


class StaticDocumentFetcher(Fetcher):
    """A fetcher over already-parsed documents (used in unit tests)."""

    def __init__(self, documents: Dict[str, Document]) -> None:
        self._documents = {SimulatedWeb._normalise(url): doc for url, doc in documents.items()}

    def fetch(self, url: str) -> Document:
        key = SimulatedWeb._normalise(url)
        if key in self._documents:
            return self._documents[key]
        for candidate, document in self._documents.items():
            if candidate.startswith(key) or key.startswith(candidate):
                return document
        raise KeyError(f"no document registered for {url!r}")

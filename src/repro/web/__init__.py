"""The simulated Web: fetchers and synthetic site generators."""

from .fetcher import SimulatedWeb, StaticDocumentFetcher

__all__ = ["SimulatedWeb", "StaticDocumentFetcher"]

"""Synthetic airport arrival/departure boards (Section 6.2).

Flight timetables are "either scattered into different airport information
systems or into the portals of individual airlines"; the generator produces
one board per airport with flight number, route, scheduled time and status.
Statuses can be advanced deterministically to exercise change detection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

STATUSES = ("scheduled", "boarding", "departed", "delayed", "cancelled", "landed")
CITIES = ("Vienna", "Paris", "London", "Frankfurt", "Rome", "Madrid", "Zurich", "Prague")
AIRLINES = ("OS", "AF", "BA", "LH", "AZ", "IB", "LX", "OK")


@dataclass
class Flight:
    number: str
    origin: str
    destination: str
    scheduled: str
    status: str

    def with_status(self, status: str) -> "Flight":
        return replace(self, status=status)


def generate_flights(count: int, seed: int = 0, airport: str = "Vienna") -> List[Flight]:
    rng = random.Random(seed)
    flights: List[Flight] = []
    for index in range(count):
        airline = rng.choice(AIRLINES)
        destination = rng.choice([city for city in CITIES if city != airport])
        flights.append(
            Flight(
                number=f"{airline} {rng.randint(100, 999)}",
                origin=airport,
                destination=destination,
                scheduled=f"{rng.randint(6, 22):02d}:{rng.choice(('00', '15', '30', '45'))}",
                status=rng.choice(("scheduled", "scheduled", "boarding", "delayed")),
            )
        )
    return flights


def departures_page(airport: str, flights: Sequence[Flight]) -> str:
    rows = "".join(
        "<tr>"
        f'<td class="flight">{flight.number}</td>'
        f'<td class="dest">{flight.destination}</td>'
        f'<td class="time">{flight.scheduled}</td>'
        f'<td class="status">{flight.status}</td>'
        "</tr>"
        for flight in flights
    )
    return (
        f"<html><body><h1>{airport} departures</h1>"
        '<table class="departures">'
        "<tr><th>flight</th><th>to</th><th>time</th><th>status</th></tr>"
        f"{rows}</table></body></html>"
    )


def airport_site(airport: str = "Vienna", count: int = 10, seed: int = 0) -> Dict[str, str]:
    flights = generate_flights(count, seed=seed, airport=airport)
    return {f"{airport.lower()}-airport.test/departures": departures_page(airport, flights)}


def advance_statuses(flights: Sequence[Flight], changes: Dict[str, str]) -> List[Flight]:
    """Return a new flight list with the given flight numbers re-statused."""
    return [
        flight.with_status(changes[flight.number]) if flight.number in changes else flight
        for flight in flights
    ]

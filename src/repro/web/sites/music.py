"""Synthetic radio playlist, music chart and lyrics sites (Section 6.1).

The "Now Playing" application integrates 14 sites in three groups: radio
channels (currently playing song), charts (rankings), and a lyrics server.
These generators produce structurally distinct pages per group, keyed by a
shared song universe so the integration step has real joins to perform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

SONGS: Tuple[Tuple[str, str], ...] = (
    ("Vienna Calling", "The Falcons"),
    ("Datalog Nights", "Query Queens"),
    ("Monadic Love", "Second Order"),
    ("Tree of Hearts", "The Leaves"),
    ("Infinite Scroll", "Pipe Dreams"),
    ("Wrapper's Delight", "The Extractors"),
    ("Blue Danube Remix", "Schema Less"),
    ("Crawling Back to You", "Deep Links"),
)


@dataclass
class Station:
    name: str
    url: str
    current_song: str
    current_artist: str
    stream_url: str


def stations(count: int = 6, seed: int = 0) -> List[Station]:
    rng = random.Random(seed)
    result: List[Station] = []
    for index in range(count):
        song, artist = SONGS[rng.randrange(len(SONGS))]
        name = f"Radio {chr(ord('A') + index)}"
        result.append(
            Station(
                name=name,
                url=f"radio-{chr(ord('a') + index)}.test/nowplaying",
                current_song=song,
                current_artist=artist,
                stream_url=f"stream://radio-{chr(ord('a') + index)}",
            )
        )
    return result


def radio_page(station: Station) -> str:
    return (
        "<html><body>"
        f"<h1>{station.name}</h1>"
        '<div class="nowplaying">'
        f'<span class="song">{station.current_song}</span>'
        f'<span class="artist">{station.current_artist}</span>'
        f'<a class="stream" href="{station.stream_url}">listen live</a>'
        "</div>"
        '<div class="schedule"><p>news at noon</p></div>'
        "</body></html>"
    )


def chart_page(name: str, seed: int = 0, size: int = 8) -> str:
    rng = random.Random(seed)
    order = list(SONGS)
    rng.shuffle(order)
    rows = "".join(
        "<tr>"
        f'<td class="pos">{position + 1}</td>'
        f'<td class="song">{song}</td>'
        f'<td class="artist">{artist}</td>'
        "</tr>"
        for position, (song, artist) in enumerate(order[:size])
    )
    return (
        f"<html><body><h1>{name}</h1>"
        f'<table class="chart"><tr><th>#</th><th>song</th><th>artist</th></tr>{rows}</table>'
        "</body></html>"
    )


def lyrics_page(song: str, artist: str) -> str:
    lines = "".join(
        f"<p class='line'>{song.lower()} line {i + 1}</p>" for i in range(4)
    )
    return (
        "<html><body>"
        f'<div class="lyrics"><h2 class="song">{song}</h2>'
        f'<h3 class="artist">{artist}</h3>{lines}</div>'
        "</body></html>"
    )


def now_playing_site(
    station_count: int = 6, chart_count: int = 5, seed: int = 0
) -> Dict[str, str]:
    """The full 14-site universe of the Now Playing application
    (6 radio stations + 5 charts + 1 lyrics page per song)."""
    site: Dict[str, str] = {}
    for station in stations(station_count, seed=seed):
        site[station.url] = radio_page(station)
    for index in range(chart_count):
        site[f"charts-{index + 1}.test/top"] = chart_page(
            f"Chart {index + 1}", seed=seed + index
        )
    for song, artist in SONGS:
        slug = song.lower().replace(" ", "-")
        site[f"lyrics.test/{slug}"] = lyrics_page(song, artist)
    return site


def retune_station(html: str, new_song: str, new_artist: str) -> str:
    """Simulate the radio station switching to another song."""
    import re

    html = re.sub(
        r'<span class="song">[^<]*</span>', f'<span class="song">{new_song}</span>', html
    )
    return re.sub(
        r'<span class="artist">[^<]*</span>',
        f'<span class="artist">{new_artist}</span>',
        html,
    )

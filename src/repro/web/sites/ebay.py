"""Synthetic eBay-style auction result pages (the Figure 5 workload).

The generator reproduces the structural idioms the Figure 5 wrapper relies
on: a page header, a list-header ``table`` whose text contains "item", then
one ``table`` per offered item (the sequence the ``tableseq`` pattern
extracts), terminated by an ``hr``.  Each item table holds a hyperlinked item
description, a price cell with a currency symbol, and a bids cell.

All content is deterministic in the seed, so experiments are repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

ADJECTIVES = (
    "vintage", "rare", "antique", "mint", "boxed", "signed", "limited",
    "classic", "restored", "original",
)
ITEMS = (
    "camera", "watch", "guitar", "lamp", "typewriter", "radio", "globe",
    "poster", "telescope", "clock", "record player", "chess set",
)
CURRENCIES = ("$", "EUR", "GBP")


@dataclass
class AuctionItem:
    """Ground truth for one offered item."""

    description: str
    price: float
    currency: str
    bids: int
    url: str

    def price_text(self) -> str:
        if self.currency == "$":
            return f"$ {self.price:.2f}"
        return f"{self.currency} {self.price:.2f}"


def generate_items(count: int, seed: int = 0) -> List[AuctionItem]:
    rng = random.Random(seed)
    items: List[AuctionItem] = []
    for index in range(count):
        description = f"{rng.choice(ADJECTIVES)} {rng.choice(ITEMS)} #{index + 1}"
        items.append(
            AuctionItem(
                description=description,
                price=round(rng.uniform(1.0, 500.0), 2),
                currency=rng.choice(CURRENCIES),
                bids=rng.randint(0, 42),
                url=f"/item/{index + 1}",
            )
        )
    return items


def render_page(
    items: List[AuctionItem],
    title: str = "eBay search results",
    extra_navigation: bool = True,
    next_page_url: Optional[str] = None,
) -> str:
    """Render a result page for ``items``."""
    parts: List[str] = [
        "<html><head><title>%s</title></head><body>" % title,
        '<div class="banner"><h1>%s</h1><p>all categories</p></div>' % title,
    ]
    if extra_navigation:
        parts.append(
            '<table class="nav"><tr><td><a href="/home">home</a></td>'
            '<td><a href="/sell">sell</a></td></tr></table>'
        )
    # The list header: a table whose text contains "item".
    parts.append(
        '<table class="listheader"><tr>'
        "<td><b>item</b></td><td><b>price</b></td><td><b>bids</b></td>"
        "</tr></table>"
    )
    # One table per offered item.
    for item in items:
        parts.append(
            '<table class="listing"><tr>'
            f'<td class="desc"><a href="{item.url}">{item.description}</a></td>'
            f'<td class="price">{item.price_text()}</td>'
            f'<td class="bids">{item.bids} bids</td>'
            "</tr></table>"
        )
    parts.append("<hr/>")
    if next_page_url:
        parts.append(f'<p class="pager"><a href="{next_page_url}">next page</a></p>')
    parts.append('<div class="footer">copyright</div>')
    parts.append("</body></html>")
    return "\n".join(parts)


def ebay_page(count: int = 10, seed: int = 0, **kwargs) -> str:
    """Convenience: generate items and render the page."""
    return render_page(generate_items(count, seed=seed), **kwargs)


def ebay_site(
    pages: int = 1, items_per_page: int = 10, seed: int = 0, base_url: str = "www.ebay.com"
) -> Dict[str, str]:
    """A multi-page result site (for crawling experiments).

    Returns a {url: html} mapping where page k links to page k+1.
    """
    site: Dict[str, str] = {}
    for page_index in range(pages):
        items = generate_items(items_per_page, seed=seed + page_index)
        next_url = (
            f"{base_url}/page/{page_index + 2}" if page_index + 1 < pages else None
        )
        url = base_url if page_index == 0 else f"{base_url}/page/{page_index + 1}"
        site[url] = render_page(items, next_page_url=next_url)
    return site


def perturb_layout(html: str, seed: int = 0) -> str:
    """Inject layout changes *outside* the item tables (robustness testing).

    Section 2.5 argues that schema-less wrappers survive changes in parts of
    the document not relevant to the extracted objects; this helper adds
    banners, navigation rows and footer clutter without touching the item
    listing structure.
    """
    rng = random.Random(seed)
    additions = [
        '<div class="promo">daily deals — up to %d%% off</div>' % rng.randint(5, 70),
        '<table class="extra-nav"><tr><td><a href="/help">help</a></td></tr></table>',
        '<p class="notice">new privacy policy effective %d/2004</p>' % rng.randint(1, 12),
    ]
    mutated = html.replace(
        '<div class="banner">', "".join(additions) + '<div class="banner">', 1
    )
    mutated = mutated.replace(
        '<div class="footer">copyright</div>',
        '<div class="footer">copyright</div><div class="legal">terms of use</div>',
    )
    return mutated

"""Deterministic synthetic site generators for the paper's applications."""

"""Synthetic bookstore / bestseller pages (the Figure 4 and Figure 7 workloads).

Three "competing" book shops publish bestseller lists with different layouts
(a table shop, a list shop, and a div shop) so that the Figure 7 pipeline has
genuinely heterogeneous sources to integrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

TITLES = (
    "The Art of Wrapping", "Monadic Tales", "Datalog Rising", "Trees of Vienna",
    "The Visual Web", "Queries at Midnight", "The Complexity Garden",
    "A Pattern of Patterns", "The Information Pipe", "Back and Forth",
    "The Schemaless Sea", "Second Order Secrets",
)
AUTHORS = (
    "A. Writer", "B. Novelist", "C. Scholar", "D. Logician", "E. Theorist",
    "F. Hacker", "G. Analyst",
)


@dataclass
class Book:
    title: str
    author: str
    price: float
    rank: int

    def price_text(self, currency: str = "$") -> str:
        return f"{currency} {self.price:.2f}"


def generate_books(count: int, seed: int = 0, price_offset: float = 0.0) -> List[Book]:
    rng = random.Random(seed)
    titles = list(TITLES)
    rng.shuffle(titles)
    books: List[Book] = []
    for index in range(count):
        title = titles[index % len(titles)]
        books.append(
            Book(
                title=title,
                author=rng.choice(AUTHORS),
                price=round(rng.uniform(8.0, 45.0) + price_offset, 2),
                rank=index + 1,
            )
        )
    return books


def table_shop_page(books: List[Book]) -> str:
    """An Amazon-like bestseller table (the Figure 4 example layout)."""
    rows = "".join(
        "<tr>"
        f'<td class="rank">{book.rank}</td>'
        f'<td class="title"><a href="/book/{book.rank}">{book.title}</a></td>'
        f'<td class="author">{book.author}</td>'
        f'<td class="price">{book.price_text()}</td>'
        "</tr>"
        for book in books
    )
    return (
        "<html><head><title>Bestsellers</title></head><body>"
        "<h1>Bestsellers</h1>"
        '<table class="bestsellers">'
        "<tr><th>rank</th><th>title</th><th>author</th><th>price</th></tr>"
        f"{rows}</table>"
        "<p>updated daily</p></body></html>"
    )


def list_shop_page(books: List[Book]) -> str:
    """A shop that publishes its chart as an ordered list."""
    items = "".join(
        "<li>"
        f'<span class="title">{book.title}</span> by '
        f'<span class="author">{book.author}</span> — '
        f'<span class="price">EUR {book.price:.2f}</span>'
        "</li>"
        for book in books
    )
    return (
        "<html><body><div id='chart'><h2>Top books</h2>"
        f"<ol>{items}</ol></div></body></html>"
    )


def div_shop_page(books: List[Book]) -> str:
    """A shop using nested div markup."""
    entries = "".join(
        '<div class="entry">'
        f'<div class="t">{book.title}</div>'
        f'<div class="a">{book.author}</div>'
        f'<div class="p">$ {book.price:.2f}</div>'
        "</div>"
        for book in books
    )
    return f"<html><body><div class='shop'><h2>Our picks</h2>{entries}</div></body></html>"


def bookstore_site(count: int = 8, seed: int = 0) -> Dict[str, str]:
    """Three book sources over an overlapping title universe."""
    return {
        "books-a.test/bestsellers": table_shop_page(generate_books(count, seed=seed)),
        "books-b.test/chart": list_shop_page(generate_books(count, seed=seed + 1, price_offset=2.0)),
        "books-c.test/picks": div_shop_page(generate_books(count, seed=seed + 2, price_offset=-1.5)),
    }

"""Synthetic press sites and stock quote pages (Section 6.3, press clipping).

The press-clipping application extracts news from press Web sites, aggregates
them with the latest stock quotes, and republishes the integrated result
(using the NITF element vocabulary).  Two press sites with different layouts
and one quotes page are generated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

COMPANIES = ("Alpengold AG", "Donau Motors", "Wien Soft", "Tyrol Energy", "Graz Pharma")
HEADLINE_TEMPLATES = (
    "{company} announces record quarter",
    "{company} expands into new markets",
    "Analysts upgrade {company}",
    "{company} faces supply questions",
    "{company} unveils new product line",
)


@dataclass
class NewsItem:
    headline: str
    company: str
    body: str
    date: str


@dataclass
class Quote:
    company: str
    price: float
    change_percent: float


def generate_news(count: int, seed: int = 0) -> List[NewsItem]:
    rng = random.Random(seed)
    items: List[NewsItem] = []
    for index in range(count):
        company = rng.choice(COMPANIES)
        headline = rng.choice(HEADLINE_TEMPLATES).format(company=company)
        items.append(
            NewsItem(
                headline=headline,
                company=company,
                body=f"{company} reported details on {rng.randint(1, 28)}.0{rng.randint(1, 9)}.2004.",
                date=f"2004-0{rng.randint(1, 6)}-{rng.randint(10, 28)}",
            )
        )
    return items


def generate_quotes(seed: int = 0) -> List[Quote]:
    rng = random.Random(seed)
    return [
        Quote(company=company, price=round(rng.uniform(10, 200), 2),
              change_percent=round(rng.uniform(-5, 5), 2))
        for company in COMPANIES
    ]


def press_site_a(items: List[NewsItem]) -> str:
    articles = "".join(
        '<div class="article">'
        f'<h2 class="headline">{item.headline}</h2>'
        f'<span class="date">{item.date}</span>'
        f'<p class="body">{item.body}</p>'
        "</div>"
        for item in items
    )
    return f"<html><body><h1>Financial Daily</h1>{articles}</body></html>"


def press_site_b(items: List[NewsItem]) -> str:
    rows = "".join(
        "<tr>"
        f'<td class="headline"><a href="/story/{index}">{item.headline}</a></td>'
        f'<td class="date">{item.date}</td>'
        "</tr>"
        for index, item in enumerate(items)
    )
    return (
        "<html><body><h1>Market Wire</h1>"
        f'<table class="stories">{rows}</table></body></html>'
    )


def quotes_page(quotes: List[Quote]) -> str:
    rows = "".join(
        "<tr>"
        f'<td class="company">{quote.company}</td>'
        f'<td class="price">{quote.price:.2f}</td>'
        f'<td class="change">{quote.change_percent:+.2f} %</td>'
        "</tr>"
        for quote in quotes
    )
    return (
        "<html><body><h1>Exchange quotes</h1>"
        '<table class="quotes"><tr><th>company</th><th>price</th><th>change</th></tr>'
        f"{rows}</table></body></html>"
    )


def press_clipping_site(count: int = 6, seed: int = 0) -> Dict[str, str]:
    return {
        "financial-daily.test/news": press_site_a(generate_news(count, seed=seed)),
        "market-wire.test/stories": press_site_b(generate_news(count, seed=seed + 1)),
        "exchange.test/quotes": quotes_page(generate_quotes(seed=seed)),
    }

"""Synthetic competitor price lists, power spot markets, weather and water
levels (Sections 6.4, 6.6 and 6.7).

* competitor shops for business-intelligence price monitoring,
* power exchange spot price tables,
* weather and river water-level pages (the power-trading application
  integrates these with the spot prices),
* a small viticulture/pesticide advisory page for the agrochemical portal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

PRODUCTS = (
    "ignition coil", "brake pad set", "oil filter", "spark plug", "timing belt",
    "alternator", "radiator", "fuel pump",
)
REGIONS = ("Wachau", "Burgenland", "Styria", "Vienna")
RIVERS = ("Danube", "Inn", "Mur", "Drau")


@dataclass
class PriceEntry:
    product: str
    price: float


def competitor_prices(count: int, seed: int = 0, markup: float = 0.0) -> List[PriceEntry]:
    rng = random.Random(seed)
    entries: List[PriceEntry] = []
    for index in range(count):
        product = PRODUCTS[index % len(PRODUCTS)]
        entries.append(PriceEntry(product=product, price=round(rng.uniform(10, 300) + markup, 2)))
    return entries


def competitor_page(shop_name: str, entries: Sequence[PriceEntry]) -> str:
    rows = "".join(
        "<tr>"
        f'<td class="product">{entry.product}</td>'
        f'<td class="price">EUR {entry.price:.2f}</td>'
        "</tr>"
        for entry in entries
    )
    return (
        f"<html><body><h1>{shop_name}</h1>"
        f'<table class="pricelist">{rows}</table></body></html>'
    )


def competitor_sites(shops: int = 3, count: int = 6, seed: int = 0) -> Dict[str, str]:
    return {
        f"competitor-{index + 1}.test/prices": competitor_page(
            f"Competitor {index + 1}",
            competitor_prices(count, seed=seed + index, markup=2.5 * index),
        )
        for index in range(shops)
    }


def spot_market_page(exchange: str = "EXAA", hours: int = 24, seed: int = 0) -> str:
    rng = random.Random(seed)
    rows = "".join(
        "<tr>"
        f'<td class="hour">{hour:02d}:00</td>'
        f'<td class="price">{rng.uniform(18, 95):.2f}</td>'
        "</tr>"
        for hour in range(hours)
    )
    return (
        f"<html><body><h1>{exchange} spot prices (EUR/MWh)</h1>"
        f'<table class="spot">{rows}</table></body></html>'
    )


def weather_page(region: str = "Vienna", seed: int = 0) -> str:
    rng = random.Random(seed)
    days = "".join(
        '<div class="day">'
        f'<span class="date">2004-06-{14 + offset}</span>'
        f'<span class="temp">{rng.randint(12, 34)} C</span>'
        f'<span class="rain">{rng.randint(0, 20)} mm</span>'
        "</div>"
        for offset in range(5)
    )
    return f"<html><body><h1>Weather {region}</h1><div class='forecast'>{days}</div></body></html>"


def water_level_page(seed: int = 0) -> str:
    rng = random.Random(seed)
    rows = "".join(
        "<tr>"
        f'<td class="river">{river}</td>'
        f'<td class="level">{rng.randint(150, 620)} cm</td>'
        "</tr>"
        for river in RIVERS
    )
    return (
        "<html><body><h1>Water levels</h1>"
        f'<table class="levels">{rows}</table></body></html>'
    )


def power_trading_site(seed: int = 0) -> Dict[str, str]:
    return {
        "exaa.test/spot": spot_market_page("EXAA", seed=seed),
        "eex.test/spot": spot_market_page("EEX", seed=seed + 1),
        "weather.test/vienna": weather_page("Vienna", seed=seed),
        "hydro.test/levels": water_level_page(seed=seed),
    }


def viticulture_page(seed: int = 0) -> str:
    rng = random.Random(seed)
    rows = "".join(
        "<tr>"
        f'<td class="region">{region}</td>'
        f'<td class="pest">powdery mildew</td>'
        f'<td class="recommendation">spray within {rng.randint(2, 9)} days</td>'
        "</tr>"
        for region in REGIONS
    )
    return (
        "<html><body><h1>Viticulture advisory</h1>"
        f'<table class="advisory">{rows}</table></body></html>'
    )

"""HTML to :class:`~repro.tree.document.Document` parsing.

The paper's wrappers operate on HTML parse trees.  lxml / BeautifulSoup are
not available in this offline environment, so the parser is built on the
standard library :class:`html.parser.HTMLParser` and produces the unranked
ordered labelled trees used by every other package.

The parser is deliberately forgiving: real-world HTML (and the paper's
screenshots show plenty of it) has unclosed ``<td>``/``<li>``/``<p>``
elements, void elements without slashes, and stray end tags.  The cleanup
rules below mirror the relevant parts of the WHATWG tree-construction
algorithm closely enough for wrapping purposes.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import Dict, List, Optional, Tuple

from ..tree.builder import TreeBuilder
from ..tree.document import Document

# Elements that never have content.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

# When a start tag in the key set is seen and an element in the value set is
# open, that element is implicitly closed first.
IMPLIED_END_TAGS: Dict[str, frozenset] = {
    "li": frozenset({"li"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "p": frozenset({"p"}),
    "option": frozenset({"option"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "thead": frozenset({"tr", "td", "th"}),
    "tbody": frozenset({"tr", "td", "th", "thead"}),
    "tfoot": frozenset({"tr", "td", "th", "tbody"}),
}


class _DocumentHTMLParser(HTMLParser):
    """Stdlib-based event source feeding a :class:`TreeBuilder`."""

    def __init__(self, keep_whitespace_text: bool = False) -> None:
        super().__init__(convert_charrefs=True)
        self.builder = TreeBuilder(root_label="#document")
        self.keep_whitespace_text = keep_whitespace_text
        self._open_labels: List[str] = []

    # -- start / end tags ------------------------------------------------
    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        tag = tag.lower()
        attributes = {name: (value if value is not None else "") for name, value in attrs}
        self._close_implied(tag)
        if tag in VOID_ELEMENTS:
            self.builder.empty(tag, attributes)
            return
        self.builder.start(tag, attributes)
        self._open_labels.append(tag)

    def handle_startendtag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        tag = tag.lower()
        attributes = {name: (value if value is not None else "") for name, value in attrs}
        self.builder.empty(tag, attributes)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in VOID_ELEMENTS:
            return
        if tag in self._open_labels:
            # Pop up to and including the matching open element.
            while self._open_labels:
                closed = self._open_labels.pop()
                self.builder.end()
                if closed == tag:
                    break
        # A stray end tag with no matching start tag is silently ignored.

    def _close_implied(self, incoming_tag: str) -> None:
        implied = IMPLIED_END_TAGS.get(incoming_tag)
        if not implied:
            return
        while self._open_labels and self._open_labels[-1] in implied:
            self._open_labels.pop()
            self.builder.end()

    # -- character data ----------------------------------------------------
    def handle_data(self, data: str) -> None:
        if not self.keep_whitespace_text and not data.strip():
            return
        self.builder.text(data)

    def handle_comment(self, data: str) -> None:
        self.builder.comment(data)

    def handle_decl(self, decl: str) -> None:  # <!DOCTYPE ...>
        return

    def error(self, message: str) -> None:  # pragma: no cover - py<3.10 shim
        return


def parse_html(
    markup: str,
    url: Optional[str] = None,
    keep_whitespace_text: bool = False,
) -> Document:
    """Parse an HTML string into a :class:`Document`.

    The returned document has a synthetic ``#document`` root whose children
    are the top-level nodes of the markup (typically a single ``html``
    element).  ``url`` is recorded on the document for crawling support.
    """
    parser = _DocumentHTMLParser(keep_whitespace_text=keep_whitespace_text)
    parser.feed(markup)
    parser.close()
    return parser.builder.finish(url=url)


def parse_html_fragment(markup: str, keep_whitespace_text: bool = False) -> Document:
    """Parse an HTML fragment (no surrounding ``html``/``body`` required)."""
    return parse_html(markup, keep_whitespace_text=keep_whitespace_text)


def body_of(document: Document):
    """Return the ``body`` element of a parsed HTML document.

    Falls back to the document root's first element child when the markup had
    no explicit body.
    """
    body = document.find_first("body")
    if body is not None:
        return body
    for child in document.root.children:
        if child.label not in ("#text", "#comment"):
            return child
    return document.root

"""HTML substrate: parsing markup into tau_ur documents and rendering back."""

from .parser import VOID_ELEMENTS, body_of, parse_html, parse_html_fragment
from .render import render_text, render_text_with_spans, to_html

__all__ = [
    "VOID_ELEMENTS",
    "body_of",
    "parse_html",
    "parse_html_fragment",
    "render_text",
    "render_text_with_spans",
    "to_html",
]

"""Rendering documents back to HTML and to displayed text.

The visual wrapper builder (Section 3.2) maps a user's "mouse selection" on a
*rendered* page to a node of the parse tree.  To simulate that we need a
rendering that records, for every node, the character range it occupies in
the rendered text — :func:`render_text_with_spans` provides exactly that.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Tuple, Union

from ..tree.document import Document
from ..tree.node import Node

from .parser import VOID_ELEMENTS

# Elements rendered as block-level (emit line breaks around their content).
BLOCK_ELEMENTS = frozenset(
    {
        "address", "article", "aside", "blockquote", "body", "div", "dl",
        "dd", "dt", "fieldset", "figure", "footer", "form", "h1", "h2", "h3",
        "h4", "h5", "h6", "header", "hr", "html", "li", "main", "nav", "ol",
        "p", "pre", "section", "table", "tbody", "td", "tfoot", "th", "thead",
        "tr", "ul", "#document",
    }
)

SKIPPED_ELEMENTS = frozenset({"script", "style", "head", "#comment"})


def to_html(node_or_document: Union[Node, Document]) -> str:
    """Serialise a node or document back to HTML markup."""
    root = node_or_document.root if isinstance(node_or_document, Document) else node_or_document
    parts: List[str] = []
    _write_html(root, parts)
    return "".join(parts)


def _write_html(node: Node, parts: List[str]) -> None:
    stack: List[Union[Node, str]] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        if item.label == "#text":
            parts.append(escape(item.text, quote=False))
            continue
        if item.label == "#comment":
            parts.append(f"<!--{item.text}-->")
            continue
        if item.label == "#document":
            stack.extend(reversed(item.children))
            continue
        attributes = "".join(
            f' {name}="{escape(value, quote=True)}"'
            for name, value in item.attributes.items()
        )
        if item.label in VOID_ELEMENTS and not item.children:
            parts.append(f"<{item.label}{attributes}/>")
            continue
        parts.append(f"<{item.label}{attributes}>")
        stack.append(f"</{item.label}>")
        stack.extend(reversed(item.children))


def render_text(node_or_document: Union[Node, Document]) -> str:
    """Plain-text rendering approximating what a browser displays."""
    text, _ = render_text_with_spans(node_or_document)
    return text


def render_text_with_spans(
    node_or_document: Union[Node, Document],
) -> Tuple[str, Dict[int, Tuple[int, int]]]:
    """Render to text and record each node's character span.

    Returns ``(text, spans)`` where ``spans[id(node)] = (start, end)`` gives
    the half-open character interval of the rendered text that the node's
    subtree produced.  Nodes that render nothing get an empty interval at
    their position.  The visual layer uses the spans to map a selected screen
    region back to the best-matching tree node.
    """
    root = node_or_document.root if isinstance(node_or_document, Document) else node_or_document
    parts: List[str] = []
    spans: Dict[int, Tuple[int, int]] = {}
    _render_node(root, parts, spans, 0)
    return "".join(parts), spans


def _render_node(
    node: Node,
    parts: List[str],
    spans: Dict[int, Tuple[int, int]],
    offset: int,
) -> int:
    if node.label in SKIPPED_ELEMENTS:
        spans[id(node)] = (offset, offset)
        return offset
    start = offset
    if node.label == "#text":
        text = " ".join(node.text.split())
        if text:
            if parts and not parts[-1].endswith(("\n", " ")):
                parts.append(" ")
                offset += 1
                start = offset
            parts.append(text)
            offset += len(text)
        spans[id(node)] = (start, offset)
        return offset
    is_block = node.label in BLOCK_ELEMENTS
    if is_block and parts and not parts[-1].endswith("\n"):
        parts.append("\n")
        offset += 1
        start = offset
    for child in node.children:
        offset = _render_node(child, parts, spans, offset)
    if is_block and parts and not parts[-1].endswith("\n"):
        parts.append("\n")
        offset += 1
    spans[id(node)] = (start, offset)
    return offset

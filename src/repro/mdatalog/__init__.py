"""Monadic datalog over trees: the theoretical core of the Lixto framework."""

from .evaluator import MonadicTreeEvaluator, evaluate, select
from .program import MonadicityError, MonadicProgram, italic_program
from .queries import (
    InformationExtractionFunction,
    UnaryQuery,
    extraction_functions,
    intersection,
    label_query,
    query_from_callable,
    union,
)
from .tmnf import TMNFRewriteError, is_tmnf, rule_tmnf_form, to_tmnf
from .wrap import assignment_from_queries, wrap_tree, wrap_with_program

__all__ = [
    "InformationExtractionFunction",
    "MonadicProgram",
    "MonadicTreeEvaluator",
    "MonadicityError",
    "TMNFRewriteError",
    "UnaryQuery",
    "assignment_from_queries",
    "evaluate",
    "extraction_functions",
    "intersection",
    "is_tmnf",
    "italic_program",
    "label_query",
    "query_from_callable",
    "rule_tmnf_form",
    "select",
    "to_tmnf",
    "union",
    "wrap_tree",
    "wrap_with_program",
]

"""Evaluation of monadic datalog over trees in time O(|P| * |dom|).

Theorem 2.4 of the paper: over tau_ur, monadic datalog has O(|P| * |dom|)
combined complexity.  The proof grounds the program (linear because the
binary tree relations are functional in both directions) and evaluates the
ground program with a linear-time unit-resolution procedure [Minoux 29].

:class:`MonadicTreeEvaluator` implements exactly that pipeline:

1. rewrite the program to TMNF (Theorem 2.7) — or accept it as-is when it is
   already in TMNF;
2. ground each TMNF rule against the document (at most one ground instance
   per node or per edge of the relevant relation);
3. run :class:`~repro.datalog.ltur.GroundHornSolver`.

Programs outside the TMNF-rewritable fragment (cyclic rule bodies, negation)
transparently fall back to the generic semi-naive engine over the tree
database, preserving semantics at the price of the general-case complexity.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..datalog.ast import Rule, Variable
from ..datalog.cache import CacheInfo, LruMap
from ..datalog.engine import SemiNaiveEngine
from ..datalog.ltur import GroundHornSolver
from ..datalog.options import UNSET, EngineOptions, resolve_options
from ..datalog.registry import PlanRegistry
from ..datalog.tree_edb import label_predicate, tree_database, tree_fingerprint
from ..tree.document import Document
from ..tree.node import Node
from .program import MonadicProgram
from .tmnf import TMNFRewriteError, is_tmnf, rule_tmnf_form, to_tmnf

GroundAtom = Tuple[str, int]  # (predicate, preorder index)

#: Shared TMNF rewrites (cross-evaluator program reuse, mirroring the
#: compiled-plan registry of :mod:`repro.datalog.registry`): hundreds of
#: server components wrapping the same monadic program pay one Theorem-2.7
#: rewrite.  Keyed exactly — the rule tuple plus the query predicates — so
#: a hit can never alias two different programs; the sentinel records
#: programs outside the TMNF fragment so their failed rewrite is not
#: retried per component either.
_TMNF_UNREWRITABLE = object()
_TMNF_CACHE: LruMap[Tuple[object, ...], object] = LruMap(64)


def _shared_tmnf_program(program: MonadicProgram) -> Optional[MonadicProgram]:
    key = (tuple(program.rules), program.query_predicates)
    cached = _TMNF_CACHE.get(key)
    if cached is not None:
        return None if cached is _TMNF_UNREWRITABLE else cached  # type: ignore[return-value]
    try:
        tmnf = program if is_tmnf(program) else to_tmnf(program)
    except TMNFRewriteError:
        _TMNF_CACHE.put(key, _TMNF_UNREWRITABLE)
        return None
    _TMNF_CACHE.put(key, tmnf)
    return tmnf


class MonadicTreeEvaluator:
    """Evaluates a monadic datalog program over documents.

    The evaluator is reusable: construct once per program, call
    :meth:`evaluate` per document.  Both pipelines memoise fixpoints across
    a working set of ``cache_size`` hot documents (the
    :mod:`repro.server.pipeline` access pattern): the generic engine through
    its content-keyed fixpoint LRU, the ground pipeline through an LRU of
    LTUR truth sets keyed by exact tree fingerprints — node identities are
    re-resolved per call, so cached truths are safe across equal-but-distinct
    document objects.

    ``share_plans=True`` (the default) additionally shares the per-program
    analysis across evaluator instances: the TMNF rewrite through the
    module-level rewrite cache, and (in the generic fallback) the engine's
    compiled rule plans through :mod:`repro.datalog.registry` — the
    process-wide registry, or the one passed as ``registry=`` (a
    :class:`repro.api.Session` passes its own).  Per-document caches are
    always instance-local.

    Tuning is declared through one :class:`~repro.datalog.options.
    EngineOptions` (``options=``); the pre-façade kwargs (``force_generic``,
    ``use_index``, ``cache_size``, ``share_plans``) still work but emit
    :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        program: MonadicProgram,
        force_generic: object = UNSET,
        use_index: object = UNSET,
        cache_size: object = UNSET,
        share_plans: object = UNSET,
        *,
        options: Optional[EngineOptions] = None,
        registry: Optional[PlanRegistry] = None,
    ) -> None:
        options = resolve_options(
            "MonadicTreeEvaluator",
            options,
            {
                "force_generic": force_generic,
                "use_index": use_index,
                "cache_size": cache_size,
                "share_plans": share_plans,
            },
        )
        self.program = program
        self.options = options
        self.uses_ground_pipeline = False
        self._tmnf_program: Optional[MonadicProgram] = None
        self._generic_engine: Optional[SemiNaiveEngine] = None
        self._ground_cache: LruMap[
            Tuple[Tuple[str, int], ...], FrozenSet[GroundAtom]
        ] = LruMap(options.cache_size)

        if not options.force_generic and not program.uses_negation():
            if options.share_plans:
                self._tmnf_program = _shared_tmnf_program(program)
            else:
                try:
                    self._tmnf_program = (
                        program if is_tmnf(program) else to_tmnf(program)
                    )
                except TMNFRewriteError:
                    self._tmnf_program = None
            self.uses_ground_pipeline = self._tmnf_program is not None
        if self._tmnf_program is None:
            self._generic_engine = SemiNaiveEngine(
                program.to_datalog_program(),
                options=options,
                registry=registry,
            )

    def fixpoint_cache_info(self) -> CacheInfo:
        """Hit/miss statistics of whichever fixpoint cache is active."""
        if self._generic_engine is not None:
            return self._generic_engine.fixpoint_cache_info()
        return self._ground_cache.info()

    def engine_info(self):
        """Storage/executor counters of the generic fallback engine, or
        ``None`` when the Theorem-2.4 ground+LTUR pipeline is active (it
        evaluates propositionally — there is no relational storage to
        count)."""
        if self._generic_engine is not None:
            return self._generic_engine.engine_info()
        return None

    # ------------------------------------------------------------------
    def evaluate(self, document: Document) -> Dict[str, List[Node]]:
        """Evaluate and return {query predicate: nodes in document order}."""
        if self.uses_ground_pipeline:
            truth = self._evaluate_ground(document)
            result: Dict[str, List[Node]] = {}
            for predicate in self.program.query_predicates:
                indexes = sorted(
                    index for (name, index) in truth if name == predicate
                )
                result[predicate] = [document.node_at(index) for index in indexes]
            return result
        return self._evaluate_generic(document)

    def select(self, document: Document, predicate: str) -> List[Node]:
        """The nodes selected by one unary predicate, in document order.

        Any predicate the program derives is selectable — query predicates
        and auxiliary IDB predicates alike — mirroring
        :meth:`~repro.datalog.engine.EvaluationResult.query`, whose fixpoint
        also contains the auxiliary relations.  A predicate the program
        never defines yields ``[]`` rather than an error: the stack-wide
        unknown-predicate contract (see docs/API.md) is lenient at query
        time and strict only at declaration time
        (``MonadicProgram(query_predicates=...)``).
        """
        if predicate in self.program.query_predicates:
            return self.evaluate(document).get(predicate, [])
        return self._select_indexes(document, predicate)

    def _select_indexes(self, document: Document, predicate: str) -> List[Node]:
        """Resolve one non-query predicate through whichever pipeline runs.

        Only *unary* extensions select nodes — the ground pipeline never
        derives anything else, and the generic engine's fixpoint also
        carries the binary tree relations, which must not leak out as
        (duplicated) first components.  Both pipelines therefore agree:
        binary and unknown predicates alike come back empty.
        """
        if self.uses_ground_pipeline:
            truth = self._evaluate_ground(document)
            indexes = sorted(index for (name, index) in truth if name == predicate)
        else:
            assert self._generic_engine is not None
            derived = self._generic_engine.fixpoint(tree_database(document))
            indexes = sorted(
                value[0] for value in derived.query(predicate) if len(value) == 1
            )
        return [document.node_at(index) for index in indexes]

    # ------------------------------------------------------------------
    # Grounding pipeline (Theorem 2.4)
    # ------------------------------------------------------------------
    def _evaluate_ground(self, document: Document) -> FrozenSet[GroundAtom]:
        assert self._tmnf_program is not None
        # The fingerprint is exact (labels + shape determine every tau_ur
        # relation), so equal-but-distinct documents share one grounding and
        # solve; document mutations change the fingerprint and re-evaluate.
        fingerprint = tree_fingerprint(document)
        cached = self._ground_cache.get(fingerprint)
        if cached is not None:
            return cached
        solver = GroundHornSolver()
        self._add_edb_facts(document, solver)
        for rule in self._tmnf_program.rules:
            self._ground_rule(rule, document, solver)
        truth = frozenset(solver.solve())  # type: ignore[arg-type]
        self._ground_cache.put(fingerprint, truth)
        return truth

    def _add_edb_facts(self, document: Document, solver: GroundHornSolver) -> None:
        for node in document:
            index = node.preorder_index
            solver.add_fact((label_predicate(node.label), index))
            if node.is_root:
                solver.add_fact(("root", index))
            if node.is_leaf:
                solver.add_fact(("leaf", index))
            if node.is_last_sibling:
                solver.add_fact(("lastsibling", index))
            if node.is_first_sibling:
                solver.add_fact(("firstsibling", index))

    def _ground_rule(
        self, rule: Rule, document: Document, solver: GroundHornSolver
    ) -> None:
        form = rule_tmnf_form(rule)
        head_predicate = rule.head.predicate
        head_variable = rule.head.terms[0]
        if form == 1:
            body_predicate = rule.body[0].atom.predicate
            for node in document:
                index = node.preorder_index
                solver.add_rule((head_predicate, index), ((body_predicate, index),))
            return
        if form == 3:
            first, second = (literal.atom.predicate for literal in rule.body)
            for node in document:
                index = node.preorder_index
                solver.add_rule(
                    (head_predicate, index), ((first, index), (second, index))
                )
            return
        if form == 2:
            unary_atom = next(l.atom for l in rule.body if l.atom.arity == 1)
            binary_atom = next(l.atom for l in rule.body if l.atom.arity == 2)
            body_predicate = unary_atom.predicate
            relation = binary_atom.predicate
            source_variable = unary_atom.terms[0]
            # Orientation: the rule is  p(x) <- p0(x0), B(a, b)  with
            # {a, b} == {x0, x}.  Enumerate the pairs of B and instantiate.
            for parent, child in self._relation_pairs(relation, document):
                assignment: Dict[Variable, int] = {
                    binary_atom.terms[0]: parent.preorder_index,  # type: ignore[index]
                    binary_atom.terms[1]: child.preorder_index,  # type: ignore[index]
                }
                head_index = assignment[head_variable]  # type: ignore[index]
                body_index = assignment[source_variable]  # type: ignore[index]
                solver.add_rule(
                    (head_predicate, head_index), ((body_predicate, body_index),)
                )
            return
        raise TMNFRewriteError(f"rule {rule} is not in TMNF")  # pragma: no cover

    @staticmethod
    def _relation_pairs(
        relation: str, document: Document
    ) -> Iterable[Tuple[Node, Node]]:
        if relation == "firstchild":
            return document.firstchild_pairs()
        if relation == "nextsibling":
            return document.nextsibling_pairs()
        if relation == "lastchild":
            return (
                (node, node.children[-1]) for node in document if node.children
            )
        if relation == "child":
            return document.child_pairs()
        raise TMNFRewriteError(f"unsupported binary relation {relation!r}")

    # ------------------------------------------------------------------
    # Generic fallback
    # ------------------------------------------------------------------
    def _evaluate_generic(self, document: Document) -> Dict[str, List[Node]]:
        assert self._generic_engine is not None
        # The tree database is rebuilt per call (O(|dom|)) so document
        # mutations are always observed; fixpoint() memoises per database
        # CONTENT in an LRU, so repeated select() calls against a working
        # set of hot documents all evaluate once.
        database = tree_database(document)
        derived = self._generic_engine.fixpoint(database)
        result: Dict[str, List[Node]] = {}
        for predicate in self.program.query_predicates:
            indexes = sorted(value[0] for value in derived.query(predicate))
            result[predicate] = [document.node_at(index) for index in indexes]
        return result


def evaluate(program: MonadicProgram, document: Document) -> Dict[str, List[Node]]:
    """One-shot evaluation helper."""
    return MonadicTreeEvaluator(program).evaluate(document)


def select(program: MonadicProgram, document: Document, predicate: str) -> List[Node]:
    """One-shot helper returning the nodes selected by ``predicate``."""
    return MonadicTreeEvaluator(program).select(document, predicate)

"""The output-tree ("tree minor") construction of Section 2.1.

Given a set of information extraction functions evaluated over an input tree,
the paper describes the natural way to compute the wrapping result: the
output tree contains a node for every input node that was assigned at least
one extraction predicate, relabelled accordingly; it contains an edge from v
to w whenever there is a directed path from v to w in the input tree on which
no intermediate node was assigned an extraction predicate.  Document order is
preserved.  Nodes not assigned any predicate are filtered out.

This is exactly what :func:`wrap_tree` computes.  When a node matches several
predicates, either the caller-provided label function decides the output
label, or labels are joined with "+" (matching the XML Designer's behaviour
of letting the pattern name act as a default label).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..tree.document import Document
from ..tree.node import Node
from ..xmlgen.document import XmlElement


def assignment_from_queries(
    document: Document,
    selections: Mapping[str, Iterable[Node]],
) -> Dict[int, List[str]]:
    """Turn per-predicate node selections into a node -> predicates map."""
    assignment: Dict[int, List[str]] = {}
    for predicate in sorted(selections):
        for node in selections[predicate]:
            assignment.setdefault(node.preorder_index, []).append(predicate)
    return assignment


def wrap_tree(
    document: Document,
    selections: Mapping[str, Iterable[Node]],
    label_for: Optional[Callable[[Node, Sequence[str]], str]] = None,
    root_name: str = "result",
    include_text: bool = True,
) -> XmlElement:
    """Compute the output tree of the wrapping process as an XML element.

    Parameters
    ----------
    document:
        The wrapped input document.
    selections:
        Mapping from extraction-predicate name to the selected nodes.
    label_for:
        Optional function choosing the output label of a node given the
        predicates assigned to it.  Default: single predicate name, or the
        names joined with ``+``.
    root_name:
        Name of the synthetic root of the output tree (needed because the
        selected nodes may be incomparable in the input tree).
    include_text:
        When true, a relabelled node with no relabelled descendants carries
        the normalised text content of its input subtree.
    """
    assignment = assignment_from_queries(document, selections)
    output_root = XmlElement(root_name)
    if not assignment:
        return output_root

    def choose_label(node: Node, predicates: Sequence[str]) -> str:
        if label_for is not None:
            return label_for(node, predicates)
        return predicates[0] if len(predicates) == 1 else "+".join(predicates)

    # Walk the input tree in document order keeping a stack of the nearest
    # relabelled ancestors; attach each relabelled node to the closest one.
    stack: List[tuple] = []  # (input node, output element)
    order: List[Node] = list(document)
    elements_by_index: Dict[int, XmlElement] = {}
    for node in order:
        # Pop ancestors that are not ancestors of the current node.
        while stack and not stack[-1][0].is_ancestor_of(node):
            stack.pop()
        predicates = assignment.get(node.preorder_index)
        if predicates is None:
            continue
        parent_element = stack[-1][1] if stack else output_root
        element = parent_element.add(choose_label(node, predicates))
        element.attributes["source_order"] = str(node.preorder_index)
        elements_by_index[node.preorder_index] = element
        stack.append((node, element))

    if include_text:
        for index, element in elements_by_index.items():
            if not element.children:
                element.text = document.node_at(index).normalized_text()
    # The synthetic attribute was useful for ordering debuggability; keep it
    # only when it carries information (more than one child anywhere).
    for element in output_root.iter():
        element.attributes.pop("source_order", None)
    return output_root


def wrap_with_program(
    document: Document,
    selections: Mapping[str, Iterable[Node]],
    auxiliary: Iterable[str] = (),
    root_name: str = "result",
) -> XmlElement:
    """Like :func:`wrap_tree` but dropping auxiliary predicates first.

    Section 2.1: "not all intensional predicates define information
    extraction functions.  Some have to be declared as auxiliary."
    """
    hidden = set(auxiliary)
    visible = {
        predicate: nodes
        for predicate, nodes in selections.items()
        if predicate not in hidden
    }
    return wrap_tree(document, visible, root_name=root_name)

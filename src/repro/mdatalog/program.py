"""Monadic datalog programs over tree structures.

A monadic datalog program (Section 2.3) is a datalog program all of whose
intensional predicates are unary.  Over the tree signature tau_ur it captures
exactly the unary MSO queries (Theorem 2.5) while remaining evaluable in time
O(|P| * |dom|) (Theorem 2.4).

:class:`MonadicProgram` wraps a generic :class:`~repro.datalog.ast.Program`
with monadicity/signature validation and convenience accessors for
"information extraction functions" — the designated query predicates.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from ..datalog.ast import Program, Rule
from ..datalog.parser import parse_rules
from ..datalog.tree_edb import TAU_UR_BINARY, TAU_UR_UNARY

# Binary relations a monadic program over trees may use in rule bodies.
ALLOWED_BINARY = frozenset(TAU_UR_BINARY) | frozenset({"child"})


class MonadicityError(ValueError):
    """Raised when a program violates the monadic datalog restrictions."""


class MonadicProgram:
    """A validated monadic datalog program over the tree signature.

    Parameters
    ----------
    rules:
        The datalog rules.
    query_predicates:
        The intensional predicates that define information extraction
        functions.  Intensional predicates not listed here are auxiliary
        (Section 2.1).  When omitted, every intensional predicate is
        considered a query predicate.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        query_predicates: Optional[Iterable[str]] = None,
    ) -> None:
        self.rules: List[Rule] = list(rules)
        self._validate()
        idb = {rule.head.predicate for rule in self.rules}
        if query_predicates is None:
            self.query_predicates: FrozenSet[str] = frozenset(idb)
        else:
            requested = frozenset(query_predicates)
            unknown = requested - idb
            if unknown:
                raise MonadicityError(
                    f"query predicates {sorted(unknown)} are not defined by any rule"
                )
            self.query_predicates = requested

    # ------------------------------------------------------------------
    @classmethod
    def parse(
        cls,
        text: str,
        query_predicates: Optional[Iterable[str]] = None,
    ) -> "MonadicProgram":
        """Parse program text (datalog syntax) into a monadic program."""
        return cls(parse_rules(text), query_predicates=query_predicates)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        idb = {rule.head.predicate for rule in self.rules}
        for rule in self.rules:
            if rule.head.arity != 1:
                raise MonadicityError(
                    f"head of rule {rule} is not unary (monadic datalog requires unary IDB)"
                )
            if not rule.is_safe():
                raise MonadicityError(f"unsafe rule: {rule}")
            for literal in rule.body:
                predicate = literal.atom.predicate
                arity = literal.atom.arity
                if predicate in idb:
                    if arity != 1:
                        raise MonadicityError(
                            f"intensional predicate {predicate} used with arity {arity} in {rule}"
                        )
                elif arity == 2:
                    if predicate not in ALLOWED_BINARY:
                        raise MonadicityError(
                            f"unknown binary relation {predicate!r} in {rule}; "
                            f"allowed: {sorted(ALLOWED_BINARY)}"
                        )
                elif arity > 2:
                    raise MonadicityError(
                        f"atom {literal.atom} has arity {arity}; trees provide only "
                        "unary and binary relations"
                    )

    # ------------------------------------------------------------------
    def idb_predicates(self) -> Set[str]:
        return {rule.head.predicate for rule in self.rules}

    def auxiliary_predicates(self) -> Set[str]:
        return self.idb_predicates() - set(self.query_predicates)

    def edb_predicates(self) -> Set[str]:
        idb = self.idb_predicates()
        result: Set[str] = set()
        for rule in self.rules:
            for literal in rule.body:
                if literal.atom.predicate not in idb:
                    result.add(literal.atom.predicate)
        return result

    def uses_negation(self) -> bool:
        return any(literal.negated for rule in self.rules for literal in rule.body)

    def size(self) -> int:
        """|P|: total number of atoms in the program."""
        return sum(1 + len(rule.body) for rule in self.rules)

    def to_datalog_program(self) -> Program:
        """View as a generic datalog :class:`Program` (EDB = tree relations)."""
        edb = frozenset(
            set(TAU_UR_UNARY)
            | set(TAU_UR_BINARY)
            | {"child"}
            | {
                literal.atom.predicate
                for rule in self.rules
                for literal in rule.body
                if literal.atom.predicate.startswith("label_")
            }
        )
        return Program(rules=list(self.rules), edb_predicates=edb)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MonadicProgram(rules={len(self.rules)}, queries={sorted(self.query_predicates)})"


def italic_program() -> MonadicProgram:
    """The program of Example 2.1: select nodes rendered in italics."""
    return MonadicProgram.parse(
        """
        italic(X) :- label_i(X).
        italic(X) :- italic(X0), firstchild(X0, X).
        italic(X) :- italic(X0), nextsibling(X0, X).
        """,
        query_predicates=["italic"],
    )

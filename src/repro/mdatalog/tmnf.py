"""Tree-Marking Normal Form (TMNF) and the Theorem 2.7 rewriting.

Definition 2.6 of the paper: a monadic datalog program over tau_ur is in TMNF
if every rule has one of the forms

    (1)  p(x) <- p0(x).
    (2)  p(x) <- p0(x0), B(x0, x).
    (3)  p(x) <- p0(x), p1(x).

where p0, p1 are unary (intensional or tau_ur) predicates and B is R or R^-1
for a binary relation R of tau_ur.

Theorem 2.7: every monadic datalog program over tau_ur + {child} can be
rewritten into an equivalent TMNF program in time O(|P|).

The rewriting implemented here follows the classical decomposition:

* long bodies whose binary atoms form an acyclic, connected graph on the
  variables are decomposed along a join tree rooted at the head variable,
  introducing one auxiliary predicate per decomposition step;
* ``child`` atoms are eliminated using firstchild / nextsibling chains
  (child = firstchild . nextsibling*), again via auxiliary predicates;
* disconnected body components are turned into "global guard" predicates
  whose truth is propagated to the root of the tree and broadcast back down
  to every node;
* conjunctions of several unary atoms on one variable are chained with
  form-(3) rules.

Rules with *cyclic* binary-atom structure are outside the TMNF fragment; for
those :func:`to_tmnf` raises :class:`TMNFRewriteError` and callers fall back
to the generic engine (this mirrors the paper: cyclic rules belong to the
conjunctive-query complexity discussion of Section 4, not to TMNF).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import Atom, Literal, Rule, Variable
from .program import ALLOWED_BINARY, MonadicProgram

# Binary relations allowed inside TMNF rules (child is *not* among them:
# Theorem 2.7 eliminates it).
TMNF_BINARY = frozenset({"firstchild", "nextsibling", "lastchild"})


class TMNFRewriteError(ValueError):
    """Raised when a rule cannot be brought into TMNF by this rewriting."""


# ---------------------------------------------------------------------------
# TMNF recognition
# ---------------------------------------------------------------------------


def rule_tmnf_form(rule: Rule) -> Optional[int]:
    """Return 1, 2 or 3 when ``rule`` has the corresponding TMNF form, else None."""
    if rule.head.arity != 1 or any(literal.negated for literal in rule.body):
        return None
    head_variable = rule.head.terms[0]
    if not isinstance(head_variable, Variable):
        return None
    body = [literal.atom for literal in rule.body]
    if len(body) == 1:
        atom = body[0]
        if atom.arity == 1 and atom.terms[0] == head_variable:
            return 1
        return None
    if len(body) == 2:
        unary = [a for a in body if a.arity == 1]
        binary = [a for a in body if a.arity == 2]
        if len(unary) == 2 and all(a.terms[0] == head_variable for a in unary):
            return 3
        if len(unary) == 1 and len(binary) == 1:
            unary_atom, binary_atom = unary[0], binary[0]
            if binary_atom.predicate not in TMNF_BINARY:
                return None
            terms = binary_atom.terms
            if not all(isinstance(term, Variable) for term in terms):
                return None
            other = unary_atom.terms[0]
            if not isinstance(other, Variable) or other == head_variable:
                return None
            # B(x0, x) or B(x, x0) — both orientations are allowed (R or R^-1).
            if set(terms) == {head_variable, other}:
                return 2
        return None
    return None


def is_tmnf(program: MonadicProgram) -> bool:
    """True iff every rule of ``program`` is in TMNF."""
    return all(rule_tmnf_form(rule) is not None for rule in program.rules)


# ---------------------------------------------------------------------------
# Rewriting into TMNF (Theorem 2.7)
# ---------------------------------------------------------------------------


@dataclass
class _RewriteContext:
    """Carries the fresh-name counter and the output rule list."""

    rules: List[Rule]
    counter: itertools.count

    def fresh(self, hint: str) -> str:
        return f"_aux_{hint}_{next(self.counter)}"

    def emit(self, head_predicate: str, head_variable: Variable, body: Sequence[Atom]) -> None:
        self.rules.append(
            Rule(
                Atom(head_predicate, (head_variable,)),
                tuple(Literal(atom) for atom in body),
            )
        )


def to_tmnf(program: MonadicProgram) -> MonadicProgram:
    """Rewrite ``program`` into an equivalent TMNF program (Theorem 2.7)."""
    context = _RewriteContext(rules=[], counter=itertools.count())
    for rule in program.rules:
        if any(literal.negated for literal in rule.body):
            raise TMNFRewriteError(f"negation is outside TMNF: {rule}")
        form = rule_tmnf_form(rule)
        if form is not None and not _uses_child(rule):
            context.rules.append(rule)
            continue
        _rewrite_rule(rule, context)
    return MonadicProgram(context.rules, query_predicates=program.query_predicates)


def _uses_child(rule: Rule) -> bool:
    return any(literal.atom.predicate == "child" for literal in rule.body)


def _rewrite_rule(rule: Rule, context: _RewriteContext) -> None:
    head_variable = rule.head.terms[0]
    if not isinstance(head_variable, Variable):
        raise TMNFRewriteError(f"head of {rule} must have a variable argument")

    unary_atoms: Dict[Variable, List[Atom]] = {}
    binary_atoms: List[Atom] = []
    for literal in rule.body:
        atom = literal.atom
        if atom.arity == 1:
            variable = atom.terms[0]
            if not isinstance(variable, Variable):
                raise TMNFRewriteError(f"constants are not supported in {rule}")
            unary_atoms.setdefault(variable, []).append(atom)
        elif atom.arity == 2:
            if atom.predicate not in ALLOWED_BINARY:
                raise TMNFRewriteError(
                    f"binary relation {atom.predicate!r} is not a tree relation in {rule}"
                )
            if not all(isinstance(term, Variable) for term in atom.terms):
                raise TMNFRewriteError(f"constants in binary atoms not supported: {rule}")
            binary_atoms.append(atom)
        else:
            raise TMNFRewriteError(f"atom {atom} has unsupported arity in {rule}")

    variables: Set[Variable] = set(rule.variables())
    variables.add(head_variable)

    # Build the (multi)graph on variables induced by binary atoms and find the
    # connected components.
    adjacency: Dict[Variable, List[Tuple[Variable, Atom]]] = {v: [] for v in variables}
    for atom in binary_atoms:
        first, second = atom.terms  # type: ignore[misc]
        adjacency[first].append((second, atom))
        adjacency[second].append((first, atom))

    components = _connected_components(variables, adjacency)
    head_component = next(c for c in components if head_variable in c)

    # Rewrite the component containing the head variable into a predicate on x.
    main_predicate = _rewrite_component(
        head_component, head_variable, adjacency, unary_atoms, binary_atoms, context
    )

    # Every other component becomes a global guard broadcast to all nodes.
    guard_predicates: List[str] = []
    for component in components:
        if component is head_component:
            continue
        anchor = next(iter(sorted(component, key=lambda v: v.name)))
        component_predicate = _rewrite_component(
            component, anchor, adjacency, unary_atoms, binary_atoms, context
        )
        guard_predicates.append(_broadcast_globally(component_predicate, context))

    # Conjoin the main predicate with all guards, two at a time (form 3).
    current = main_predicate
    for guard in guard_predicates:
        combined = context.fresh("and")
        context.emit(combined, head_variable, [
            Atom(current, (head_variable,)),
            Atom(guard, (head_variable,)),
        ])
        current = combined

    # Final rule: p(x) <- current(x).   (form 1)
    context.emit(rule.head.predicate, head_variable, [Atom(current, (head_variable,))])


def _connected_components(
    variables: Set[Variable],
    adjacency: Dict[Variable, List[Tuple[Variable, Atom]]],
) -> List[Set[Variable]]:
    remaining = set(variables)
    components: List[Set[Variable]] = []
    while remaining:
        start = remaining.pop()
        component = {start}
        frontier = [start]
        while frontier:
            variable = frontier.pop()
            for neighbour, _ in adjacency[variable]:
                if neighbour in remaining:
                    remaining.remove(neighbour)
                    component.add(neighbour)
                    frontier.append(neighbour)
        components.append(component)
    return components


def _rewrite_component(
    component: Set[Variable],
    root_variable: Variable,
    adjacency: Dict[Variable, List[Tuple[Variable, Atom]]],
    unary_atoms: Dict[Variable, List[Atom]],
    binary_atoms: List[Atom],
    context: _RewriteContext,
) -> str:
    """Decompose one connected body component into TMNF rules.

    Returns the name of a fresh unary predicate that holds of a node n iff n
    can be the value of ``root_variable`` in a satisfying assignment of the
    component.  The component's binary atoms must form a tree (acyclic);
    otherwise :class:`TMNFRewriteError` is raised.
    """
    component_edges = [
        atom
        for atom in binary_atoms
        if atom.terms[0] in component and atom.terms[1] in component
    ]
    if len(component_edges) != len(component) - 1:
        raise TMNFRewriteError(
            "rule body is cyclic over its variables; TMNF rewriting requires "
            "acyclic (tree-shaped) rule bodies"
        )

    # Build a spanning tree rooted at root_variable (it is the whole component
    # since edge count == |vars| - 1 and the component is connected).
    order: List[Variable] = []
    parent_edge: Dict[Variable, Tuple[Variable, Atom]] = {}
    visited = {root_variable}
    frontier = [root_variable]
    while frontier:
        variable = frontier.pop()
        order.append(variable)
        for neighbour, atom in adjacency[variable]:
            if neighbour in component and neighbour not in visited:
                visited.add(neighbour)
                parent_edge[neighbour] = (variable, atom)
                frontier.append(neighbour)
    if visited != component:
        raise TMNFRewriteError("internal error: component traversal incomplete")

    children: Dict[Variable, List[Variable]] = {variable: [] for variable in component}
    for child_variable, (parent_variable, _) in parent_edge.items():
        children[parent_variable].append(child_variable)

    # Process variables bottom-up: the predicate for a variable v states
    # "node n satisfies all unary atoms on v and, for every child w of v in
    # the join tree, there exists a node m with predicate_w(m) related to n by
    # the connecting binary atom".
    predicate_for: Dict[Variable, str] = {}
    for variable in reversed(order):
        conjuncts: List[str] = []
        for atom in unary_atoms.get(variable, []):
            conjuncts.append(atom.predicate)
        for child_variable in children[variable]:
            _, connecting_atom = parent_edge[child_variable]
            child_predicate = predicate_for[child_variable]
            conjuncts.append(
                _edge_predicate(connecting_atom, variable, child_variable, child_predicate, context)
            )
        predicate_for[variable] = _conjoin(conjuncts, variable, context)
    return predicate_for[root_variable]


def _conjoin(conjuncts: List[str], variable: Variable, context: _RewriteContext) -> str:
    """Produce a predicate equivalent to the conjunction of unary predicates."""
    if not conjuncts:
        # No constraint at all: every node qualifies.  "any" is derived
        # bottom-up: leaves qualify, and a node whose first child qualifies
        # qualifies too (every internal node has a first child).
        name = context.fresh("any")
        x, x0 = Variable("X"), Variable("X0")
        context.emit(name, x, [Atom("leaf", (x,))])
        context.rules.append(
            Rule(
                Atom(name, (x,)),
                (Literal(Atom(name, (x0,))), Literal(Atom("firstchild", (x, x0)))),
            )
        )
        return name
    if len(conjuncts) == 1:
        # Wrap single EDB/IDB predicates in a form-(1) rule so the result is a
        # fresh intensional name (keeps bookkeeping uniform).
        name = context.fresh("copy")
        context.emit(name, variable, [Atom(conjuncts[0], (variable,))])
        return name
    current = conjuncts[0]
    for other in conjuncts[1:]:
        name = context.fresh("and")
        context.emit(name, variable, [Atom(current, (variable,)), Atom(other, (variable,))])
        current = name
    return current


def _edge_predicate(
    atom: Atom,
    parent_variable: Variable,
    child_variable: Variable,
    child_predicate: str,
    context: _RewriteContext,
) -> str:
    """Predicate over the parent variable expressing
    "exists m: child_predicate(m) and <atom> relates me and m"."""
    relation = atom.predicate
    first, second = atom.terms  # type: ignore[misc]
    # downward: atom is R(parent, child)  — we need nodes n with exists m:
    #   child_predicate(m) and R(n, m).
    downward = first == parent_variable and second == child_variable
    if relation != "child":
        name = context.fresh("step")
        x, x0 = Variable("X"), Variable("X0")
        if downward:
            # name(x) <- child_predicate(x0), R(x, x0)    (B = R^-1)
            body_atom = Atom(relation, (x, x0))
        else:
            # atom is R(child, parent): name(x) <- child_predicate(x0), R(x0, x)
            body_atom = Atom(relation, (x0, x))
        context.rules.append(
            Rule(Atom(name, (x,)), (Literal(Atom(child_predicate, (x0,))), Literal(body_atom)))
        )
        return name
    # child elimination: child(a, b)  iff  firstchild(a, c), nextsibling*(c, b).
    x, x0 = Variable("X"), Variable("X0")
    if downward:
        # need: n such that exists m: pred(m) and m is a child of n.
        # H(z) := pred(z) or (exists z2: H(z2) and nextsibling(z, z2))
        chain = context.fresh("childchain")
        context.emit(chain, x, [Atom(child_predicate, (x,))])
        context.rules.append(
            Rule(Atom(chain, (x,)), (Literal(Atom(chain, (x0,))), Literal(Atom("nextsibling", (x, x0)))))
        )
        # result(n) <- chain(c), firstchild(n, c)
        result = context.fresh("haschild")
        context.rules.append(
            Rule(Atom(result, (x,)), (Literal(Atom(chain, (x0,))), Literal(Atom("firstchild", (x, x0)))))
        )
        return result
    # upward: need n such that exists m: pred(m) and n is a child of m.
    # D(z) := z is the first child of some pred-node, or the next sibling of a D-node.
    down = context.fresh("childof")
    context.rules.append(
        Rule(Atom(down, (x,)), (Literal(Atom(child_predicate, (x0,))), Literal(Atom("firstchild", (x0, x)))))
    )
    context.rules.append(
        Rule(Atom(down, (x,)), (Literal(Atom(down, (x0,))), Literal(Atom("nextsibling", (x0, x)))))
    )
    return down


def _broadcast_globally(component_predicate: str, context: _RewriteContext) -> str:
    """Turn "exists a node satisfying component_predicate" into a predicate
    that then holds of *every* node (for conjoining disconnected components)."""
    x, x0 = Variable("X"), Variable("X0")
    # Propagate satisfaction upwards to the root ...
    up = context.fresh("up")
    context.emit(up, x, [Atom(component_predicate, (x,))])
    context.rules.append(
        Rule(Atom(up, (x,)), (Literal(Atom(up, (x0,))), Literal(Atom("firstchild", (x, x0)))))
    )
    context.rules.append(
        Rule(Atom(up, (x,)), (Literal(Atom(up, (x0,))), Literal(Atom("nextsibling", (x, x0)))))
    )
    at_root = context.fresh("atroot")
    context.emit(at_root, x, [Atom(up, (x,)), Atom("root", (x,))])
    # ... and broadcast back down to every node.
    everywhere = context.fresh("everywhere")
    context.emit(everywhere, x, [Atom(at_root, (x,))])
    context.rules.append(
        Rule(Atom(everywhere, (x,)), (Literal(Atom(everywhere, (x0,))), Literal(Atom("firstchild", (x0, x)))))
    )
    context.rules.append(
        Rule(Atom(everywhere, (x,)), (Literal(Atom(everywhere, (x0,))), Literal(Atom("nextsibling", (x0, x)))))
    )
    return everywhere

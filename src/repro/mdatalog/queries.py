"""Unary queries and information extraction functions.

Section 2.1: the core notion of the paper's wrapping framework is the
*information extraction function* — a function that maps a labelled unranked
tree to a subset of its nodes.  A wrapper implements one or several such
functions.  This module provides a small uniform interface so that queries
defined in different formalisms (monadic datalog, Core XPath, tree automata,
Elog patterns) can be compared and composed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..tree.document import Document
from ..tree.node import Node
from .evaluator import MonadicTreeEvaluator
from .program import MonadicProgram


class UnaryQuery:
    """A named unary query over documents.

    Wraps a callable ``document -> list of nodes`` and gives it comparison
    helpers used extensively by the cross-formalism equivalence tests.
    """

    def __init__(self, name: str, function: Callable[[Document], List[Node]]) -> None:
        self.name = name
        self._function = function

    def __call__(self, document: Document) -> List[Node]:
        nodes = list(self._function(document))
        nodes.sort(key=lambda node: node.preorder_index)
        return nodes

    def select_indexes(self, document: Document) -> Set[int]:
        return {node.preorder_index for node in self(document)}

    def agrees_with(self, other: "UnaryQuery", document: Document) -> bool:
        return self.select_indexes(document) == other.select_indexes(document)

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnaryQuery({self.name!r})"


class InformationExtractionFunction(UnaryQuery):
    """A unary query defined by a predicate of a monadic datalog program."""

    def __init__(self, program: MonadicProgram, predicate: str) -> None:
        if predicate not in program.query_predicates:
            raise ValueError(
                f"{predicate!r} is not a query predicate of the program "
                f"(available: {sorted(program.query_predicates)})"
            )
        self.program = program
        self.predicate = predicate
        evaluator = MonadicTreeEvaluator(program)
        super().__init__(predicate, lambda document: evaluator.select(document, predicate))


def extraction_functions(program: MonadicProgram) -> Dict[str, InformationExtractionFunction]:
    """All information extraction functions defined by ``program``."""
    return {
        predicate: InformationExtractionFunction(program, predicate)
        for predicate in sorted(program.query_predicates)
    }


def query_from_callable(
    name: str, function: Callable[[Document], Iterable[Node]]
) -> UnaryQuery:
    return UnaryQuery(name, lambda document: list(function(document)))


def label_query(label: str) -> UnaryQuery:
    """The trivial query selecting all nodes with a given label."""
    return UnaryQuery(f"label:{label}", lambda document: document.nodes_with_label(label))


def intersection(name: str, queries: Sequence[UnaryQuery]) -> UnaryQuery:
    """Pointwise intersection of unary queries."""

    def run(document: Document) -> List[Node]:
        if not queries:
            return []
        common: Optional[Set[int]] = None
        for query in queries:
            indexes = query.select_indexes(document)
            common = indexes if common is None else (common & indexes)
        return [document.node_at(index) for index in sorted(common or set())]

    return UnaryQuery(name, run)


def union(name: str, queries: Sequence[UnaryQuery]) -> UnaryQuery:
    """Pointwise union of unary queries."""

    def run(document: Document) -> List[Node]:
        selected: Set[int] = set()
        for query in queries:
            selected |= query.select_indexes(document)
        return [document.node_at(index) for index in sorted(selected)]

    return UnaryQuery(name, run)

"""The durable work queue: an append-only JSONL journal plus a checkpoint.

Every state transition of a distributed batch is one JSON line appended to
the journal file, flushed immediately so a killed parent (or worker) loses
nothing already recorded:

* ``{"type": "task", "id": ..., "index": ...}`` — the task entered the
  queue;
* ``{"type": "lease", "id": ..., "attempt": n}`` — the task was dispatched
  to a worker (attempt ``n``, 0-based);
* ``{"type": "ack", "id": ..., "result": "<base64 pickle>"}`` — the task
  finished; the acknowledgement carries the whole pickled
  :class:`~repro.distrib.envelope.ResultEnvelope`, so a resumed run
  returns complete results without re-running acknowledged work;
* ``{"type": "requeue", "id": ..., "attempt": n, "reason": ...}`` — a
  worker died holding the lease; the task re-enters the queue.

The checkpoint file (``<journal>.checkpoint``) is a tiny JSON summary —
acked / dispatched / requeued counts — rewritten atomically after every
acknowledgement, so monitoring can read queue progress without replaying
the journal.

Crash semantics: a task is re-run **iff** it was leased but never acked —
the killed worker's in-flight document(s), nothing else.
:func:`WorkJournal.load` replays a journal into a :class:`JournalState`;
:meth:`~repro.distrib.executor.ProcessExecutor.run` consults it and
dispatches only unacknowledged tasks.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from .envelope import ResultEnvelope


@dataclass
class JournalState:
    """A replayed journal: what already happened in a previous run."""

    acked: Dict[str, ResultEnvelope] = field(default_factory=dict)
    lease_counts: Dict[str, int] = field(default_factory=dict)
    requeue_counts: Dict[str, int] = field(default_factory=dict)

    def is_acked(self, task_id: str) -> bool:
        return task_id in self.acked


class WorkJournal:
    """Append-only journal of one distributed batch (see module docstring).

    All writes run under an internal lock and flush to the OS immediately;
    ``fsync=True`` additionally forces the lines to disk per record (off by
    default — the tests' crash model kills *workers*, and the parent's OS
    survives to flush its page cache).
    """

    def __init__(self, path: str, *, fsync: bool = False) -> None:
        self.path = str(path)
        self.checkpoint_path = self.path + ".checkpoint"
        self._fsync = fsync
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        self._counts = {"task": 0, "lease": 0, "ack": 0, "requeue": 0}

    # -- record appends --------------------------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
            kind = str(record["type"])
            self._counts[kind] = self._counts.get(kind, 0) + 1

    def task(self, task_id: str, index: int) -> None:
        self._append({"type": "task", "id": task_id, "index": index})

    def lease(self, task_id: str, attempt: int) -> None:
        self._append({"type": "lease", "id": task_id, "attempt": attempt})

    def ack(self, result: ResultEnvelope) -> None:
        encoded = base64.b64encode(pickle.dumps(result)).decode("ascii")
        self._append({"type": "ack", "id": result.task_id, "result": encoded})
        self._write_checkpoint()

    def requeue(self, task_id: str, attempt: int, reason: str) -> None:
        self._append(
            {"type": "requeue", "id": task_id, "attempt": attempt, "reason": reason}
        )

    # -- checkpoint ------------------------------------------------------
    def _write_checkpoint(self) -> None:
        with self._lock:
            payload = dict(self._counts)
        payload["pending"] = payload.get("task", 0) - payload.get("ack", 0)
        # Write-then-rename: a reader never sees a torn checkpoint.
        tmp = self.checkpoint_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, self.checkpoint_path)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "WorkJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay ----------------------------------------------------------
    @staticmethod
    def load(path: str) -> JournalState:
        """Replay ``path`` into the state a resuming executor consults.

        Tolerates a torn final line (the parent died mid-append): the
        partial record is ignored, which at worst re-runs one task — the
        same guarantee a lost worker gives.
        """
        state = JournalState()
        if not os.path.exists(path):
            return state
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail record: treat as never written
                kind = record.get("type")
                task_id = record.get("id")
                if not isinstance(task_id, str):
                    continue
                if kind == "lease":
                    state.lease_counts[task_id] = (
                        state.lease_counts.get(task_id, 0) + 1
                    )
                elif kind == "requeue":
                    state.requeue_counts[task_id] = (
                        state.requeue_counts.get(task_id, 0) + 1
                    )
                elif kind == "ack":
                    try:
                        result = pickle.loads(
                            base64.b64decode(record.get("result", ""))
                        )
                    except Exception:
                        continue  # unreadable ack: re-run the task
                    if isinstance(result, ResultEnvelope):
                        state.acked[task_id] = result
        return state


def task_id_for(index: int) -> str:
    """The stable task identity of batch slot ``index`` (resume re-keys
    the same batch identically)."""
    return f"t{index:08d}"

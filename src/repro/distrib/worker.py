"""The worker side of the distrib protocol: one function, one process memo.

:func:`run_task` is the only entry point a
:class:`~concurrent.futures.ProcessPoolExecutor` ever calls.  It is a
module-level function so every start method pickles it by reference
(``spawn`` and ``forkserver`` cannot ship closures), and all worker state
lives in a module-level memo:

* one :class:`~repro.api.Session` per distinct ``(EngineOptions,
  ResiliencePolicy)`` pair — the session owns the worker's private
  :class:`~repro.datalog.registry.PlanRegistry`, so **each distinct
  program compiles once per worker, not once per document**.  The
  re-hydration path is explicit: datalog programs go through
  :meth:`~repro.datalog.registry.PlanRegistry.rehydrate`, which verifies
  the compilation against the envelope's fingerprint before any document
  is evaluated.

Compile accounting: every result reports the worker's cumulative compile
count (registry compilations + Elog interpreter constructions), so the
parent's :class:`~repro.distrib.executor.DistribStats` can assert the
once-per-worker property across a whole stream.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, Tuple

from ..datalog.ast import Program
from ..datalog.engine import SemiNaiveEngine
from .envelope import ResultEnvelope, TaskEnvelope

#: Per-process session memo (see module docstring).  Keyed by the frozen
#: options/policy pair; both are hashable dataclasses.
_SESSIONS: Dict[Tuple[object, object], object] = {}


def _session_for(envelope: TaskEnvelope):
    from ..api.session import Session

    key = (envelope.options, envelope.resilience)
    session = _SESSIONS.get(key)
    if session is None:
        session = Session(envelope.options, resilience=envelope.resilience)
        _SESSIONS[key] = session
    return session


def _compile_count(session) -> int:
    """The worker's cumulative compilations (plans + Elog interpreters)."""
    return session.registry.compile_count() + session._extractors.info().misses


def _log_execution(envelope: TaskEnvelope) -> None:
    """Append one ``index pid attempt`` line to the chaos audit log.

    Logged *before* evaluation (and before an injected crash), so the log
    counts actual executions — a killed worker's in-flight document shows
    its first, doomed run.  ``O_APPEND`` single-write appends are atomic
    for lines this short, so concurrent workers never interleave bytes.
    """
    if envelope.task_log is None:
        return
    line = f"{envelope.index} {os.getpid()} {envelope.attempt}\n"
    descriptor = os.open(
        envelope.task_log, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(descriptor, line.encode("ascii"))
    finally:
        os.close(descriptor)


def _picklable(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a faithful stand-in.

    The pool transport pickles every return value; an unpicklable
    exception would turn one failed document into a broken future with a
    confusing pickling traceback."""
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        stand_in = RuntimeError(f"{type(error).__name__}: {error}")
        stand_in.resilience_attempts = getattr(error, "resilience_attempts", 1)
        return stand_in


def _evaluate(envelope: TaskEnvelope, session):
    if envelope.kind == "query":
        program = envelope.program
        if isinstance(program, Program):
            # The explicit re-hydration path: compile (or reuse) through
            # the worker's own registry and verify against the sender's
            # fingerprint before touching any document.
            session.registry.rehydrate(
                program, SemiNaiveEngine.BUILTINS, envelope.fingerprint
            )
        return session.query(
            program,
            envelope.payload,
            envelope.backend,
            labels=envelope.labels,
        )
    if envelope.kind == "extract":
        if envelope.payload_kind == "url":
            return session.extract(
                envelope.program, url=envelope.payload, fetcher=envelope.fetcher
            )
        return session.extract(envelope.program, document=envelope.payload)
    # kind == "pipe": the payload is a whole InformationPipe; its run()
    # output (component name -> XmlElement) is the result.
    return envelope.payload.run()


def run_task(envelope: TaskEnvelope) -> ResultEnvelope:
    """Evaluate one :class:`TaskEnvelope` and return its result envelope.

    Never raises for *task* failures — evaluation and fetch errors travel
    back inside the envelope so the parent can apply ``on_error`` slot
    semantics identical to the in-process batch paths.  (A raise here
    would also poison the pool transport for unpicklable errors.)
    """
    _log_execution(envelope)
    if envelope.crash:
        # Chaos injection: die exactly like a SIGKILLed worker — no
        # cleanup, no exception, the parent sees a broken pool.
        os.kill(os.getpid(), signal.SIGKILL)
    started = time.perf_counter()
    url = envelope.payload if envelope.payload_kind == "url" else None
    try:
        session = _session_for(envelope)
        result = _evaluate(envelope, session)
    except Exception as error:  # noqa: BLE001 - the slot carries the error
        return ResultEnvelope(
            task_id=envelope.task_id,
            index=envelope.index,
            ok=False,
            error=_picklable(error),
            pid=os.getpid(),
            compile_count=_compile_count(_session_for(envelope)),
            elapsed_s=time.perf_counter() - started,
            url=url,
        )
    return ResultEnvelope(
        task_id=envelope.task_id,
        index=envelope.index,
        ok=True,
        result=result,
        pid=os.getpid(),
        compile_count=_compile_count(session),
        elapsed_s=time.perf_counter() - started,
        url=url,
    )

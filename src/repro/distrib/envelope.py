"""The distrib wire protocol: pickle-safe task and result envelopes.

A :class:`TaskEnvelope` is everything a worker process needs to evaluate
one document with *no* shared memory: the program (source text or a plain
AST — never compiled plans), its content fingerprint (so the worker can
verify its re-hydrated compilation matches the sender's), the
:class:`~repro.datalog.options.EngineOptions` and
:class:`~repro.resilience.policy.ResiliencePolicy` to evaluate under, and
the document payload itself.  A :class:`ResultEnvelope` carries the slot's
outcome back, plus the worker's identity and compile accounting for
:meth:`repro.api.Session.distrib_info`.

Compiled artifacts are rejected at construction, not at pickling time:
:class:`~repro.datalog.plan.RulePlan` and
:class:`~repro.datalog.registry.CompiledProgram` close over the engine's
builtin callables and must never cross a process boundary — workers
re-hydrate through their own :class:`~repro.datalog.registry.PlanRegistry`
(:meth:`~repro.datalog.registry.PlanRegistry.rehydrate`), which is the
whole point of the fingerprint-keyed registry design.  The same applies to
the specialised executors (``_JoinPlan`` closure chains) and to columnar
storage (:class:`~repro.datalog.columns.ColumnarRelation` /
:class:`~repro.datalog.columns.ColumnarDatabase`): storage is
engine-internal scratch a worker rebuilds from the plain database payload,
so shipping it would only smuggle process-local state across the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..datalog.columns import ColumnarDatabase, ColumnarRelation, ColumnarWindow
from ..datalog.options import DEFAULT_OPTIONS, EngineOptions
from ..datalog.plan import RulePlan, _JoinPlan
from ..datalog.registry import CompiledProgram
from ..resilience.policy import ResiliencePolicy

#: Task kinds the worker protocol understands.
TASK_KINDS = ("query", "extract", "pipe")

#: Payload shapes a task can carry.
PAYLOAD_KINDS = ("document", "database", "url", "pipe")


#: Engine-internal artifacts that must never cross the process boundary:
#: compiled plans/programs (close over builtin callables) and columnar
#: storage (interned rows, posting sets, windows — worker-local scratch).
_REJECTED_TYPES = (
    RulePlan,
    CompiledProgram,
    _JoinPlan,
    ColumnarRelation,
    ColumnarDatabase,
    ColumnarWindow,
)


def _reject_compiled(value: object, role: str) -> None:
    """Refuse compiled/engine-internal artifacts anywhere in an envelope.

    Shallow by design: the hazard is a caller handing the envelope a
    ``RulePlan`` / ``CompiledProgram`` / columnar storage (or a list of
    them) instead of the program or the plain database; deeply nested
    compiled state would already fail to pickle.
    """
    probes = [value]
    if isinstance(value, (list, tuple, set, frozenset)):
        probes.extend(value)
    for probe in probes:
        if isinstance(probe, _REJECTED_TYPES):
            raise TypeError(
                f"TaskEnvelope.{role} must not carry compiled or "
                f"engine-internal artifacts ({type(probe).__name__}); ship "
                "the program source/AST and plain databases — the worker "
                "re-hydrates plans through its own PlanRegistry and "
                "rebuilds storage from the payload"
            )


@dataclass(frozen=True)
class TaskEnvelope:
    """One unit of distributable work (see module docstring).

    Attributes
    ----------
    task_id:
        Stable identity across requeues and journal resumes (derived from
        the batch index, so a resumed run re-keys identically).
    index:
        The slot in the caller's batch — result order is restored from it.
    kind:
        ``"query"`` (datalog / monadic / automata over a document or
        database), ``"extract"`` (Elog over a document or URL), or
        ``"pipe"`` (a whole :class:`~repro.server.pipeline.InformationPipe`
        run).
    program:
        Source text or a plain program AST; ``None`` for ``"pipe"`` tasks.
    fingerprint:
        The sender's :func:`~repro.datalog.registry.program_fingerprint`
        when the program is a datalog :class:`~repro.datalog.ast.Program`;
        the worker verifies its re-hydrated compilation against it.
    payload / payload_kind:
        The document, database, URL, or pipe this task evaluates.
    fetcher:
        Required by ``"extract"`` tasks over URLs (pickled per envelope —
        worker-side fetch logs stay in the worker).
    attempt:
        0 on first dispatch; bumped by every crash requeue.
    crash:
        Chaos-injection flag: a worker receiving ``crash=True`` SIGKILLs
        itself *after* logging the execution — deterministic worker death
        for the recovery tests (see :class:`~repro.distrib.executor.
        CrashPlan`).
    task_log:
        Optional path of an append-only per-execution audit log (chaos
        tests count actual re-executions from it).
    """

    task_id: str
    index: int
    kind: str
    program: object = None
    fingerprint: Optional[int] = None
    backend: Optional[str] = None
    labels: Optional[Tuple[str, ...]] = None
    options: EngineOptions = DEFAULT_OPTIONS
    resilience: Optional[ResiliencePolicy] = None
    payload: object = None
    payload_kind: str = "document"
    fetcher: object = None
    attempt: int = 0
    crash: bool = False
    task_log: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(
                f"TaskEnvelope.kind={self.kind!r}: expected one of {TASK_KINDS}"
            )
        if self.payload_kind not in PAYLOAD_KINDS:
            raise ValueError(
                f"TaskEnvelope.payload_kind={self.payload_kind!r}: "
                f"expected one of {PAYLOAD_KINDS}"
            )
        _reject_compiled(self.program, "program")
        _reject_compiled(self.payload, "payload")

    def requeued(self) -> "TaskEnvelope":
        """A copy dispatched after a worker crash: the attempt counter
        moves and the chaos flag resets (arming is per-dispatch — the
        executor's :class:`~repro.distrib.executor.CrashPlan` decides
        afresh against the new attempt number)."""
        return replace(self, attempt=self.attempt + 1, crash=False)


@dataclass
class ResultEnvelope:
    """One task's outcome travelling back from a worker.

    ``ok`` results carry the evaluated ``result`` (a
    :class:`~repro.api.results.QueryResult` /
    :class:`~repro.api.results.ExtractionResult` / pipe results mapping);
    failed ones carry the ``error`` exactly as the in-process batch paths
    would have seen it, so the parent applies identical ``on_error`` slot
    semantics.  ``pid`` and ``compile_count`` feed the per-worker compile
    accounting of :class:`~repro.distrib.executor.DistribStats`.
    """

    task_id: str
    index: int
    ok: bool
    result: object = None
    error: Optional[BaseException] = None
    pid: int = 0
    compile_count: int = 0
    elapsed_s: float = 0.0
    url: Optional[str] = field(default=None)

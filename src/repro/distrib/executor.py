"""The parent side of scale-out: a checkpointed process-pool executor.

:class:`ProcessExecutor` streams :class:`~repro.distrib.envelope.
TaskEnvelope`\\ s into a :class:`concurrent.futures.ProcessPoolExecutor`
with a bounded dispatch window (``workers * window_per_worker`` tasks in
flight — a 10^4-document generator never materialises), restores result
order from the envelopes' batch indexes, and survives worker death:

* every dispatch takes a journal **lease**; every completion **acks**;
* a :class:`~concurrent.futures.process.BrokenProcessPool` (the CPython
  pool's reaction to any worker dying — it fails *all* in-flight futures
  and terminates the remaining workers) is one **crash event**: the
  executor requeues every leased-but-unacked task, rebuilds the pool, and
  carries on;
* a task requeued more than ``max_requeues`` times fails its slot with a
  :class:`~repro.resilience.errors.WorkerCrashError` (a *transient*
  fetch-family error, so ``on_error`` slot semantics and resilience
  accounting treat it like any other transient infrastructure failure).

With a ``journal_path``, the work queue is durable
(:class:`~repro.distrib.journal.WorkJournal`): a killed *parent* resumes
by re-running only the leased-but-unacked tail — acknowledged results are
replayed from the journal without re-evaluating anything.

:class:`DistribStats` / :class:`DistribInfo` follow the
``ResilienceStats`` → ``ResilienceInfo`` pattern: locked counters in the
session, an immutable snapshot for monitoring
(:meth:`repro.api.Session.distrib_info`).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

from ..resilience.errors import WorkerCrashError
from .envelope import ResultEnvelope, TaskEnvelope
from .journal import JournalState, WorkJournal
from .worker import run_task

#: Start methods this module accepts (``None`` means "pick for me").
START_METHODS = ("fork", "spawn", "forkserver")


def default_start_method() -> str:
    """``"fork"`` where the platform offers it (no interpreter re-import
    per worker), ``"spawn"`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class CrashPlan:
    """Deterministic chaos injection for the distrib layer.

    A worker holding a task whose batch index is in ``crash_indexes``
    SIGKILLs itself mid-task (after logging the execution).  With
    ``only_first_attempt`` (the default) the requeued attempt survives, so
    recovery tests converge; without it the task burns through
    ``max_requeues`` and fails its slot with a
    :class:`~repro.resilience.errors.WorkerCrashError`.
    """

    crash_indexes: FrozenSet[int] = frozenset()
    only_first_attempt: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "crash_indexes", frozenset(self.crash_indexes))

    def should_crash(self, index: int, attempt: int) -> bool:
        if index not in self.crash_indexes:
            return False
        return attempt == 0 if self.only_first_attempt else True


@dataclass(frozen=True)
class DistribOptions:
    """Every knob of the multi-process batch paths.

    Attributes
    ----------
    workers:
        Worker process count.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``, or ``None`` for the
        platform default (:func:`default_start_method`).
    journal_path:
        Enable the durable work queue: JSONL journal at this path, atomic
        checkpoint next to it (``<path>.checkpoint``).  Re-running the
        same batch against an existing journal **resumes** it — acked
        tasks replay from the journal, only the unacknowledged tail runs.
    max_requeues:
        Crash-requeue budget per task before its slot fails with a
        :class:`~repro.resilience.errors.WorkerCrashError`.
    window_per_worker:
        Dispatch window multiplier: at most ``workers * window_per_worker``
        tasks are in flight, so generator batches stream with bounded
        memory.
    crash_plan:
        Optional :class:`CrashPlan` for the chaos tests.
    task_log:
        Optional path of an append-only execution audit log (one
        ``index pid attempt`` line per actual evaluation; the chaos tests
        count re-runs from it).
    """

    workers: int = 2
    start_method: Optional[str] = None
    journal_path: Optional[str] = None
    max_requeues: int = 2
    window_per_worker: int = 4
    crash_plan: Optional[CrashPlan] = None
    task_log: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"DistribOptions.workers={self.workers}: need >= 1")
        if self.max_requeues < 0:
            raise ValueError(
                f"DistribOptions.max_requeues={self.max_requeues}: need >= 0"
            )
        if self.window_per_worker < 1:
            raise ValueError(
                f"DistribOptions.window_per_worker={self.window_per_worker}: "
                "need >= 1"
            )
        if self.start_method is not None and self.start_method not in START_METHODS:
            raise ValueError(
                f"DistribOptions.start_method={self.start_method!r}: "
                f"expected one of {START_METHODS} or None"
            )

    def resolved_start_method(self) -> str:
        return self.start_method or default_start_method()


def resolve_distrib(workers: object) -> "DistribOptions":
    """The ``workers=`` knob of the batch APIs: ``"process"`` means stock
    options, an int means that many workers, a :class:`DistribOptions`
    passes through."""
    if isinstance(workers, DistribOptions):
        return workers
    if workers == "process":
        return DistribOptions()
    if isinstance(workers, int) and not isinstance(workers, bool):
        return DistribOptions(workers=workers)
    raise ValueError(
        f"workers={workers!r}: expected 'process', a worker count, "
        "or DistribOptions"
    )


class DistribInfo(NamedTuple):
    """An immutable snapshot of the distrib counters (see
    :class:`DistribStats`)."""

    tasks_dispatched: int = 0
    tasks_acked: int = 0
    tasks_requeued: int = 0
    worker_crashes: int = 0
    queue_depth: int = 0
    worker_compiles: Tuple[Tuple[int, int], ...] = ()


class DistribStats:
    """Thread-safe distrib accounting, aggregated across batches.

    ``tasks_dispatched`` counts submissions to the pool (requeued attempts
    count again); ``tasks_acked`` counts finished slots (including results
    replayed from a resumed journal and requeue-budget-exhausted failure
    slots); ``tasks_requeued`` counts crash requeues; ``worker_crashes``
    counts crash *events* (one broken pool = one crash, however many
    futures it takes down); ``queue_depth`` is tasks entered minus tasks
    finished — 0 between healthy batches.  ``worker_compiles`` maps worker
    pid → the highest cumulative compile count it reported, which is how
    the tests pin "each distinct program compiles once per worker".
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.tasks_dispatched = 0
        self.tasks_acked = 0
        self.tasks_requeued = 0
        self.worker_crashes = 0
        self.queue_depth = 0
        self._worker_compiles: Dict[int, int] = {}

    def on_enter(self) -> None:
        with self._lock:
            self.queue_depth += 1

    def on_dispatch(self) -> None:
        with self._lock:
            self.tasks_dispatched += 1

    def on_requeue(self) -> None:
        with self._lock:
            self.tasks_requeued += 1

    def on_crash_event(self) -> None:
        with self._lock:
            self.worker_crashes += 1

    def on_finish(self, result: ResultEnvelope) -> None:
        with self._lock:
            self.tasks_acked += 1
            self.queue_depth -= 1
            if result.pid:
                known = self._worker_compiles.get(result.pid, -1)
                if result.compile_count > known:
                    self._worker_compiles[result.pid] = result.compile_count

    def snapshot(self) -> DistribInfo:
        with self._lock:
            return DistribInfo(
                tasks_dispatched=self.tasks_dispatched,
                tasks_acked=self.tasks_acked,
                tasks_requeued=self.tasks_requeued,
                worker_crashes=self.worker_crashes,
                queue_depth=self.queue_depth,
                worker_compiles=tuple(sorted(self._worker_compiles.items())),
            )

    # -- pickling: counters cross, the lock is recreated -----------------
    def __getstate__(self):
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class ProcessExecutor:
    """Run a stream of task envelopes on a crash-tolerant process pool.

    One instance is reusable across batches; all per-batch state is local
    to :meth:`run`.  See the module docstring for the recovery protocol.
    """

    def __init__(
        self, options: Optional[DistribOptions] = None, stats: Optional[DistribStats] = None
    ) -> None:
        self.options = options if options is not None else DistribOptions()
        self.stats = stats if stats is not None else DistribStats()

    # -- pool plumbing ---------------------------------------------------
    def _new_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        context = multiprocessing.get_context(self.options.resolved_start_method())
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.options.workers, mp_context=context
        )

    def _armed(self, envelope: TaskEnvelope) -> TaskEnvelope:
        """The envelope as actually dispatched: chaos flag and audit log
        applied from the options."""
        options = self.options
        changes = {}
        if options.task_log is not None and envelope.task_log is None:
            changes["task_log"] = options.task_log
        plan = options.crash_plan
        if plan is not None and plan.should_crash(envelope.index, envelope.attempt):
            changes["crash"] = True
        return replace(envelope, **changes) if changes else envelope

    # -- the run loop ----------------------------------------------------
    def run(self, envelopes: Iterable[TaskEnvelope]) -> List[ResultEnvelope]:
        """Evaluate every envelope; results ordered by batch index.

        ``envelopes`` may be a generator — at most
        ``workers * window_per_worker`` tasks are in flight, and results
        accumulate per finished task, so memory stays bounded by the
        window plus the result list itself.
        """
        options = self.options
        stats = self.stats
        state = JournalState()
        journal: Optional[WorkJournal] = None
        if options.journal_path is not None:
            state = WorkJournal.load(options.journal_path)
            journal = WorkJournal(options.journal_path)
        window = options.workers * options.window_per_worker
        iterator = iter(envelopes)
        exhausted = False
        backlog: deque = deque()  # crash-requeued envelopes, re-dispatched first
        in_flight: Dict[concurrent.futures.Future, TaskEnvelope] = {}
        results: Dict[int, ResultEnvelope] = {}
        # Post-crash isolation: a dying worker fails *every* in-flight
        # future, so tasks requeued by a crash are re-dispatched one at a
        # time until each resolves — a task that crashes on every attempt
        # then only ever takes down itself after the first break, and its
        # innocent window-mates cannot burn their own requeue budget.
        # Counts the requeued tasks not yet resolved; 0 means full window.
        probation = 0
        pool = self._new_pool()

        def finish(result: ResultEnvelope) -> None:
            if journal is not None:
                journal.ack(result)
            stats.on_finish(result)
            results[result.index] = result

        def dispatch(envelope: TaskEnvelope) -> bool:
            """Submit one envelope; ``False`` when the pool broke first.

            A failed submission is *not* a lost task — the envelope never
            ran — so it goes back to the front of the backlog untouched
            (no attempt bump, no requeue record) and the caller rebuilds
            the pool."""
            armed = self._armed(envelope)
            try:
                future = pool.submit(run_task, armed)
            except BrokenProcessPool:
                backlog.appendleft(envelope)
                return False
            if journal is not None:
                journal.lease(armed.task_id, armed.attempt)
            stats.on_dispatch()
            in_flight[future] = armed
            return True

        def on_lost(envelope: TaskEnvelope) -> None:
            """A worker died holding this lease: requeue or fail the slot."""
            if envelope.attempt < options.max_requeues:
                if journal is not None:
                    journal.requeue(
                        envelope.task_id, envelope.attempt, "worker crashed"
                    )
                stats.on_requeue()
                backlog.append(envelope.requeued())
            else:
                finish(
                    ResultEnvelope(
                        task_id=envelope.task_id,
                        index=envelope.index,
                        ok=False,
                        error=WorkerCrashError(
                            f"worker crashed evaluating task {envelope.task_id} "
                            f"(slot {envelope.index}) and its requeue budget "
                            f"({options.max_requeues}) is spent",
                            index=envelope.index,
                            requeues=envelope.attempt,
                        ),
                        url=(
                            envelope.payload
                            if envelope.payload_kind == "url"
                            else None
                        ),
                    )
                )

        try:
            while True:
                # Fill the dispatch window: requeued tasks first (they hold
                # the oldest slots), then fresh tasks off the stream.
                broken_on_submit = False
                effective_window = 1 if probation else window
                while len(in_flight) < effective_window and not broken_on_submit:
                    if backlog:
                        broken_on_submit = not dispatch(backlog.popleft())
                        continue
                    if exhausted:
                        break
                    try:
                        envelope = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    stats.on_enter()
                    if journal is not None:
                        journal.task(envelope.task_id, envelope.index)
                    if state.is_acked(envelope.task_id):
                        # Resume: the previous run already finished this
                        # task — replay its recorded result, run nothing.
                        finish(state.acked[envelope.task_id])
                        continue
                    broken_on_submit = not dispatch(envelope)
                if not in_flight:
                    if broken_on_submit:
                        # The pool broke with nothing of ours in flight (the
                        # dying worker's future already drained): rebuild
                        # and carry on — the backlog still holds the task.
                        stats.on_crash_event()
                        pool.shutdown(wait=False)
                        pool = self._new_pool()
                        probation = len(backlog)
                        continue
                    break
                done, _ = concurrent.futures.wait(
                    in_flight, return_when=concurrent.futures.FIRST_COMPLETED
                )
                crashed = False
                for future in done:
                    envelope = in_flight.pop(future)
                    try:
                        finish(future.result())
                        if probation:
                            probation -= 1
                    except BrokenProcessPool:
                        crashed = True
                        on_lost(envelope)
                if crashed or broken_on_submit:
                    # One crash event: the pool is dead and every remaining
                    # in-flight future fails with it — drain them all, then
                    # rebuild the pool and continue from the backlog (one
                    # task at a time until every requeued task resolves).
                    stats.on_crash_event()
                    for future, envelope in list(in_flight.items()):
                        on_lost(envelope)
                    in_flight.clear()
                    pool.shutdown(wait=False)
                    pool = self._new_pool()
                    probation = len(backlog)
        finally:
            pool.shutdown(wait=False)
            if journal is not None:
                journal.close()
        return [results[index] for index in sorted(results)]

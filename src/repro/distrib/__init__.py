"""Multi-process scale-out: a durable, checkpointed work queue.

The distrib subsystem fans the façade's batch paths
(:meth:`repro.api.Session.query_many`,
:meth:`repro.api.Session.extract_many`,
:meth:`repro.server.pipeline.TransformationServer.run_all`) out over
worker *processes* — real CPU parallelism for the GIL-bound evaluators —
without ever shipping compiled state:

* :mod:`~repro.distrib.envelope` — the pickle-safe wire protocol
  (:class:`TaskEnvelope` / :class:`ResultEnvelope`; compiled plans are
  rejected at construction);
* :mod:`~repro.distrib.worker` — the worker entry point: one memoised
  :class:`~repro.api.Session` per options/policy pair, so each distinct
  program compiles **once per worker** through the worker's own
  :class:`~repro.datalog.registry.PlanRegistry`
  (:meth:`~repro.datalog.registry.PlanRegistry.rehydrate`);
* :mod:`~repro.distrib.journal` — the durable queue: append-only JSONL
  journal + atomic checkpoint, lease/ack/requeue records;
* :mod:`~repro.distrib.executor` — the crash-tolerant pool driver
  (:class:`ProcessExecutor`), its knobs (:class:`DistribOptions`,
  :class:`CrashPlan`) and accounting (:class:`DistribStats` →
  :class:`DistribInfo`).

Crash contract: a killed worker loses at most its in-flight documents —
each is requeued (bounded by ``max_requeues``) and re-run exactly once
per crash; with a journal, a killed *parent* resumes re-running only the
leased-but-unacked tail.  See docs/DISTRIB.md.
"""

from .envelope import PAYLOAD_KINDS, TASK_KINDS, ResultEnvelope, TaskEnvelope
from .executor import (
    START_METHODS,
    CrashPlan,
    DistribInfo,
    DistribOptions,
    DistribStats,
    ProcessExecutor,
    default_start_method,
    resolve_distrib,
)
from .journal import JournalState, WorkJournal, task_id_for
from .worker import run_task

__all__ = [
    "PAYLOAD_KINDS",
    "TASK_KINDS",
    "ResultEnvelope",
    "TaskEnvelope",
    "START_METHODS",
    "CrashPlan",
    "DistribInfo",
    "DistribOptions",
    "DistribStats",
    "ProcessExecutor",
    "default_start_method",
    "resolve_distrib",
    "JournalState",
    "WorkJournal",
    "task_id_for",
    "run_task",
]

"""Naive node-at-a-time Core XPath evaluation (the pre-2002 baseline).

Section 4 of the paper: "All XPath engines available in 2002 took exponential
time in the worst case to process XPath".  The reason is the evaluation
strategy reproduced here: every step is evaluated separately for every
context node, and every predicate is re-evaluated recursively for every
candidate node, with no sharing of intermediate results.  For query families
with nested predicates (see ``repro.bench.workloads.exponential_query``) the
running time grows exponentially with the query size, while
:class:`~repro.xpath.core.CoreXPathEvaluator` stays linear.

The two evaluators implement the same semantics; property-based tests check
they agree on random documents and queries.
"""

from __future__ import annotations

from typing import Iterator, List

from ..tree.axes import axis_iterator
from ..tree.document import Document
from ..tree.node import Node
from .ast import (
    And,
    AttributeTest,
    Condition,
    LocationPath,
    NodeTest,
    Not,
    Or,
    PathExists,
    Position,
    Step,
    TextEquals,
)
from .core import UnsupportedFeatureError
from .parser import parse_xpath


class NaiveXPathEvaluator:
    """Node-at-a-time evaluation without memoisation (exponential worst case)."""

    def __init__(self, document: Document) -> None:
        self.document = document

    # ------------------------------------------------------------------
    def evaluate(self, query, context: Node = None) -> List[Node]:
        path = parse_xpath(query) if isinstance(query, str) else query
        start = self.document.root if context is None else context
        if path.absolute:
            start = self.document.root
        result = {
            node.preorder_index: node for node in self._eval_path(path, start)
        }
        return [result[index] for index in sorted(result)]

    # ------------------------------------------------------------------
    def _eval_path(self, path: LocationPath, context: Node) -> Iterator[Node]:
        nodes = [context]
        for step in path.steps:
            produced: List[Node] = []
            for node in nodes:
                produced.extend(self._eval_step(step, node))
            nodes = produced
        return iter(nodes)

    def _eval_step(self, step: Step, context: Node) -> List[Node]:
        candidates = [
            node
            for node in axis_iterator(step.axis)(context)
            if self._node_test(step.node_test, node)
        ]
        for predicate in step.predicates:
            candidates = [
                node for node in candidates if self._condition(predicate, node)
            ]
        return candidates

    def _node_test(self, node_test: NodeTest, node: Node) -> bool:
        if node_test.kind == "any":
            return True
        if node_test.kind == "any-element":
            return node.label not in ("#text", "#comment")
        if node_test.kind == "text":
            return node.label == "#text"
        return node.label == node_test.name

    def _condition(self, condition: Condition, node: Node) -> bool:
        if isinstance(condition, PathExists):
            # deliberate lack of memoisation: re-evaluates the inner path for
            # every candidate node (this is what makes the baseline blow up).
            if condition.path.absolute:
                return any(True for _ in self._eval_path(condition.path, self.document.root))
            return any(True for _ in self._eval_path(condition.path, node))
        if isinstance(condition, Not):
            return not self._condition(condition.operand, node)
        if isinstance(condition, And):
            return self._condition(condition.left, node) and self._condition(
                condition.right, node
            )
        if isinstance(condition, Or):
            return self._condition(condition.left, node) or self._condition(
                condition.right, node
            )
        if isinstance(condition, AttributeTest):
            value = node.attributes.get(condition.name)
            if value is None:
                return False
            return condition.value is None or value == condition.value
        if isinstance(condition, TextEquals):
            if condition.path is None:
                return node.normalized_text() == condition.value
            targets = (
                self._eval_path(condition.path, node)
                if not condition.path.absolute
                else self._eval_path(condition.path, self.document.root)
            )
            return any(t.normalized_text() == condition.value for t in targets)
        if isinstance(condition, Position):
            raise UnsupportedFeatureError(
                "positional predicates are outside Core XPath; use FullXPathEvaluator"
            )
        raise UnsupportedFeatureError(f"unsupported condition {condition!r}")


def evaluate_naive(document: Document, query, context: Node = None) -> List[Node]:
    """One-shot helper for the naive baseline."""
    return NaiveXPathEvaluator(document).evaluate(query, context=context)

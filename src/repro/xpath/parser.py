"""Parser for Core XPath (plus the extended predicate forms).

Supported grammar (abbreviations as in XPath 1)::

    path        ::= '/' relative? | relative
    relative    ::= step ('/' step | '//' step)*
    step        ::= axis '::' nodetest preds | nodetest preds | '.' | '..'
                  | '//' step          (abbreviation for descendant-or-self)
    nodetest    ::= NAME | '*' | 'text()' | 'node()'
    preds       ::= ('[' or_expr ']')*
    or_expr     ::= and_expr ('or' and_expr)*
    and_expr    ::= unary ('and' unary)*
    unary       ::= 'not' '(' or_expr ')' | '(' or_expr ')' | atom
    atom        ::= NUMBER | 'last()' | 'position()' '=' NUMBER
                  | '@' NAME ('=' STRING)?
                  | relpath ('=' STRING)?          (text comparison)
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    AXES,
    And,
    AttributeTest,
    Condition,
    LocationPath,
    NodeTest,
    Not,
    Or,
    PathExists,
    Position,
    Step,
    TextEquals,
)


class XPathSyntaxError(ValueError):
    """Raised when an XPath expression cannot be parsed."""


_TOKEN = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<DSLASH>//)
  | (?P<SLASH>/)
  | (?P<AXIS>::)
  | (?P<LBRACKET>\[)
  | (?P<RBRACKET>\])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<EQ>=)
  | (?P<AT>@)
  | (?P<DOTDOT>\.\.)
  | (?P<DOT>\.)
  | (?P<STRING>"[^"]*"|'[^']*')
  | (?P<NUMBER>\d+)
  | (?P<STAR>\*)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise XPathSyntaxError(f"unexpected character {text[position]!r} in {text!r}")
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise XPathSyntaxError(f"unexpected end of query {self.text!r}")
        self.position += 1
        return token

    def accept(self, kind: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token[0] == kind:
            self.position += 1
            return token[1]
        return None

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise XPathSyntaxError(f"expected {kind}, found {token[1]!r} in {self.text!r}")
        return token[1]

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    # -- grammar -----------------------------------------------------------
    def parse_path(self) -> LocationPath:
        absolute = False
        steps: List[Step] = []
        if self.peek() is not None and self.peek()[0] in ("SLASH", "DSLASH"):
            absolute = True
            if self.accept("DSLASH"):
                steps.append(Step("descendant-or-self", NodeTest("any")))
            else:
                self.accept("SLASH")
            if self.at_end() or self.peek()[0] == "RBRACKET":
                return LocationPath(tuple(steps), absolute=True)
        steps.extend(self._parse_relative())
        return LocationPath(tuple(steps), absolute=absolute)

    def _parse_relative(self) -> List[Step]:
        steps = [self._parse_step()]
        while True:
            if self.accept("DSLASH"):
                steps.append(Step("descendant-or-self", NodeTest("any")))
                steps.append(self._parse_step())
            elif self.accept("SLASH"):
                steps.append(self._parse_step())
            else:
                break
        return steps

    def _parse_step(self) -> Step:
        if self.accept("DOTDOT"):
            return Step("parent", NodeTest("any"), tuple(self._parse_predicates()))
        if self.accept("DOT"):
            return Step("self", NodeTest("any"), tuple(self._parse_predicates()))
        axis = "child"
        token = self.peek()
        if token is not None and token[0] == "NAME" and token[1] in AXES:
            following = self.peek(1)
            if following is not None and following[0] == "AXIS":
                axis = self.next()[1]
                self.expect("AXIS")
        if self.accept("AT"):
            # attribute steps are only meaningful inside predicates; expose
            # them as an attribute existence test on self for robustness.
            name = self.expect("NAME")
            return Step("self", NodeTest("any"), (AttributeTest(name),))
        node_test = self._parse_node_test()
        predicates = self._parse_predicates()
        return Step(axis, node_test, tuple(predicates))

    def _parse_node_test(self) -> NodeTest:
        if self.accept("STAR"):
            return NodeTest("any-element")
        name = self.expect("NAME")
        if self.peek() is not None and self.peek()[0] == "LPAREN":
            self.expect("LPAREN")
            self.expect("RPAREN")
            if name == "text":
                return NodeTest("text")
            if name == "node":
                return NodeTest("any")
            raise XPathSyntaxError(f"unsupported node test {name}() in {self.text!r}")
        return NodeTest("name", name)

    def _parse_predicates(self) -> List[Condition]:
        predicates: List[Condition] = []
        while self.accept("LBRACKET"):
            predicates.append(self._parse_or())
            self.expect("RBRACKET")
        return predicates

    def _parse_or(self) -> Condition:
        left = self._parse_and()
        while True:
            token = self.peek()
            if token is not None and token[0] == "NAME" and token[1] == "or":
                self.next()
                left = Or(left, self._parse_and())
            else:
                return left

    def _parse_and(self) -> Condition:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token is not None and token[0] == "NAME" and token[1] == "and":
                self.next()
                left = And(left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Condition:
        token = self.peek()
        if token is not None and token[0] == "NAME" and token[1] == "not":
            following = self.peek(1)
            if following is not None and following[0] == "LPAREN":
                self.next()
                self.expect("LPAREN")
                inner = self._parse_or()
                self.expect("RPAREN")
                return Not(inner)
        if self.accept("LPAREN"):
            inner = self._parse_or()
            self.expect("RPAREN")
            return inner
        return self._parse_atom()

    def _parse_atom(self) -> Condition:
        token = self.peek()
        if token is None:
            raise XPathSyntaxError(f"unexpected end of predicate in {self.text!r}")
        kind, value = token
        if kind == "NUMBER":
            self.next()
            return Position(int(value))
        if kind == "AT":
            self.next()
            name = self.expect("NAME")
            if self.accept("EQ"):
                literal = self.expect("STRING")
                return AttributeTest(name, literal[1:-1])
            return AttributeTest(name)
        if kind == "NAME" and value == "last":
            following = self.peek(1)
            if following is not None and following[0] == "LPAREN":
                self.next()
                self.expect("LPAREN")
                self.expect("RPAREN")
                return Position(None)
        if kind == "NAME" and value == "position":
            following = self.peek(1)
            if following is not None and following[0] == "LPAREN":
                self.next()
                self.expect("LPAREN")
                self.expect("RPAREN")
                self.expect("EQ")
                number = self.expect("NUMBER")
                return Position(int(number))
        if kind == "NAME" and value == "text":
            following = self.peek(1)
            if following is not None and following[0] == "LPAREN":
                saved = self.position
                self.next()
                self.expect("LPAREN")
                self.expect("RPAREN")
                if self.accept("EQ"):
                    literal = self.expect("STRING")
                    return TextEquals(literal[1:-1])
                self.position = saved  # plain text() path predicate
        # Fall back to a relative path, optionally compared with a string.
        path_steps = self._parse_relative()
        path = LocationPath(tuple(path_steps), absolute=False)
        if self.accept("EQ"):
            literal = self.expect("STRING")
            return TextEquals(literal[1:-1], path=path)
        return PathExists(path)


def parse_xpath(text: str) -> LocationPath:
    """Parse an XPath expression into a :class:`LocationPath`."""
    parser = _Parser(text)
    path = parser.parse_path()
    if not parser.at_end():
        token = parser.peek()
        raise XPathSyntaxError(f"trailing input {token[1]!r} in {text!r}")
    return path

"""Translating Core XPath into monadic datalog / TMNF (Theorem 4.6).

Theorem 4.6 of the paper: every Core XPath query can be translated into an
equivalent TMNF query in linear time.  The translation implemented here
produces, for an absolute Core XPath query Q and a label alphabet, a monadic
datalog program over tau_ur + {child} whose query predicate ``answer`` selects
exactly Q's answers; composing with the Theorem 2.7 rewriting
(:func:`repro.mdatalog.tmnf.to_tmnf`) yields the TMNF program.

Axes are compiled to small groups of recursive monadic rules (descendant and
friends need one auxiliary predicate each); predicates ``[p]`` are compiled by
walking ``p`` backwards with inverse axes — mirroring how the linear-time
evaluator of :mod:`repro.xpath.core` computes predicate sets.

Negation (``not(...)``) is translated using stratified datalog negation.  The
paper points out (slightly curiously) that TMNF needs no negation for this;
that construction goes through tree automata and is not reproduced here — the
emitted program for negated queries is therefore monadic datalog with
stratified negation rather than pure TMNF, and :func:`translate_to_tmnf`
refuses such queries.  Attribute and text-comparison predicates are outside
Core XPath and are rejected.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from ..datalog.ast import Atom, Literal, Rule, Variable
from ..datalog.tree_edb import label_predicate
from ..mdatalog.program import MonadicProgram
from ..mdatalog.tmnf import to_tmnf
from .ast import (
    INVERSE_AXIS,
    And,
    AttributeTest,
    Condition,
    LocationPath,
    NodeTest,
    Not,
    Or,
    PathExists,
    Position,
    Step,
    TextEquals,
    is_positive,
)
from .core import UnsupportedFeatureError
from .parser import parse_xpath

ANSWER = "answer"
X = Variable("X")
X0 = Variable("X0")


class _Translator:
    def __init__(self, labels: Sequence[str]) -> None:
        self.labels = sorted(set(labels))
        self.rules: List[Rule] = []
        self.counter = itertools.count()
        self._any_element: Optional[str] = None
        self._any_node: Optional[str] = None

    # -- naming ------------------------------------------------------------
    def fresh(self, hint: str) -> str:
        return f"_xq_{hint}_{next(self.counter)}"

    def emit(self, head: str, body: List[Literal]) -> None:
        self.rules.append(Rule(Atom(head, (X,)), tuple(body)))

    def unary(self, predicate: str, variable: Variable = X) -> Literal:
        return Literal(Atom(predicate, (variable,)))

    def binary(self, predicate: str, first: Variable, second: Variable) -> Literal:
        return Literal(Atom(predicate, (first, second)))

    # -- node tests ----------------------------------------------------------
    def any_node_predicate(self) -> str:
        if self._any_node is None:
            name = self.fresh("anynode")
            self.emit(name, [self.unary("leaf")])
            self.rules.append(
                Rule(Atom(name, (X,)), (Literal(Atom("firstchild", (X, X0))),))
            )
            self._any_node = name
        return self._any_node

    def any_element_predicate(self) -> str:
        if self._any_element is None:
            name = self.fresh("anyelement")
            for label in self.labels:
                if label in ("#text", "#comment"):
                    continue
                self.emit(name, [self.unary(label_predicate(label))])
            self._any_element = name
        return self._any_element

    def node_test_predicate(self, node_test: NodeTest) -> str:
        if node_test.kind == "any":
            return self.any_node_predicate()
        if node_test.kind == "any-element":
            return self.any_element_predicate()
        if node_test.kind == "text":
            name = self.fresh("textnode")
            self.emit(name, [self.unary(label_predicate("#text"))])
            return name
        name = self.fresh(f"label_{node_test.name}")
        self.emit(name, [self.unary(label_predicate(node_test.name or ""))])
        return name

    # -- axes ------------------------------------------------------------------
    def axis_step(self, axis: str, source_predicate: str) -> str:
        """Emit rules for "x is reachable from a ``source_predicate`` node via
        ``axis``"; return the predicate holding at reachable nodes."""
        name = self.fresh(axis.replace("-", "_"))
        if axis == "self":
            self.emit(name, [self.unary(source_predicate)])
        elif axis == "child":
            self.emit(name, [self.unary(source_predicate, X0), self.binary("child", X0, X)])
        elif axis == "parent":
            self.emit(name, [self.unary(source_predicate, X0), self.binary("child", X, X0)])
        elif axis == "descendant":
            self.emit(name, [self.unary(source_predicate, X0), self.binary("child", X0, X)])
            self.emit(name, [self.unary(name, X0), self.binary("child", X0, X)])
        elif axis == "descendant-or-self":
            self.emit(name, [self.unary(source_predicate)])
            self.emit(name, [self.unary(name, X0), self.binary("child", X0, X)])
        elif axis == "ancestor":
            self.emit(name, [self.unary(source_predicate, X0), self.binary("child", X, X0)])
            self.emit(name, [self.unary(name, X0), self.binary("child", X, X0)])
        elif axis == "ancestor-or-self":
            self.emit(name, [self.unary(source_predicate)])
            self.emit(name, [self.unary(name, X0), self.binary("child", X, X0)])
        elif axis == "following-sibling":
            self.emit(name, [self.unary(source_predicate, X0), self.binary("nextsibling", X0, X)])
            self.emit(name, [self.unary(name, X0), self.binary("nextsibling", X0, X)])
        elif axis == "preceding-sibling":
            self.emit(name, [self.unary(source_predicate, X0), self.binary("nextsibling", X, X0)])
            self.emit(name, [self.unary(name, X0), self.binary("nextsibling", X, X0)])
        elif axis == "following":
            ancestors = self.axis_step("ancestor-or-self", source_predicate)
            siblings = self.axis_step("following-sibling", ancestors)
            return self.axis_step("descendant-or-self", siblings)
        elif axis == "preceding":
            ancestors = self.axis_step("ancestor-or-self", source_predicate)
            siblings = self.axis_step("preceding-sibling", ancestors)
            return self.axis_step("descendant-or-self", siblings)
        else:
            raise UnsupportedFeatureError(f"unsupported axis {axis!r}")
        return name

    # -- steps, paths, conditions -------------------------------------------
    def translate_step(self, step: Step, source_predicate: str) -> str:
        reached = self.axis_step(step.axis, source_predicate)
        conjuncts = [reached, self.node_test_predicate(step.node_test)]
        for condition in step.predicates:
            conjuncts.append(self.translate_condition(condition))
        return self.conjunction(conjuncts)

    def conjunction(self, predicates: List[str]) -> str:
        current = predicates[0]
        for other in predicates[1:]:
            name = self.fresh("and")
            self.emit(name, [self.unary(current), self.unary(other)])
            current = name
        return current

    def translate_condition(self, condition: Condition) -> str:
        if isinstance(condition, PathExists):
            return self.translate_exists(condition.path)
        if isinstance(condition, And):
            return self.conjunction(
                [self.translate_condition(condition.left), self.translate_condition(condition.right)]
            )
        if isinstance(condition, Or):
            name = self.fresh("or")
            self.emit(name, [self.unary(self.translate_condition(condition.left))])
            self.emit(name, [self.unary(self.translate_condition(condition.right))])
            return name
        if isinstance(condition, Not):
            inner = self.translate_condition(condition.operand)
            name = self.fresh("not")
            self.rules.append(
                Rule(
                    Atom(name, (X,)),
                    (
                        Literal(Atom(self.any_node_predicate(), (X,))),
                        Literal(Atom(inner, (X,)), negated=True),
                    ),
                )
            )
            return name
        if isinstance(condition, (AttributeTest, TextEquals, Position)):
            raise UnsupportedFeatureError(
                f"{type(condition).__name__} predicates are outside Core XPath"
            )
        raise UnsupportedFeatureError(f"unsupported condition {condition!r}")

    def translate_exists(self, path: LocationPath) -> str:
        """Predicate holding at nodes x from which ``path`` has an answer."""
        if path.absolute:
            # "the absolute path has an answer anywhere" — broadcast a global flag.
            answers = self.translate_path(path)
            up = self.fresh("exists_up")
            self.emit(up, [self.unary(answers)])
            self.emit(up, [self.unary(up, X0), self.binary("child", X, X0)])
            at_root = self.fresh("exists_at_root")
            self.emit(at_root, [self.unary(up), self.unary("root")])
            everywhere = self.fresh("exists_everywhere")
            self.emit(everywhere, [self.unary(at_root)])
            self.emit(everywhere, [self.unary(everywhere, X0), self.binary("child", X0, X)])
            return everywhere
        # Right-to-left: sat_i holds at nodes satisfying step i's test and
        # conditions from which the remaining steps match.
        steps = list(path.steps)
        current: Optional[str] = None
        for index in range(len(steps) - 1, -1, -1):
            step = steps[index]
            conjuncts = [self.node_test_predicate(step.node_test)]
            for condition in step.predicates:
                conjuncts.append(self.translate_condition(condition))
            if current is not None:
                # nodes from which the next step's axis reaches a ``current`` node
                conjuncts.append(self.axis_step(INVERSE_AXIS[steps[index + 1].axis], current))
            current = self.conjunction(conjuncts)
        return self.axis_step(INVERSE_AXIS[steps[0].axis], current or self.any_node_predicate())

    def translate_path(self, path: LocationPath) -> str:
        source = self.fresh("context")
        if path.absolute:
            self.emit(source, [self.unary("root")])
        else:
            self.emit(source, [self.unary(self.any_node_predicate())])
        current = source
        for step in path.steps:
            current = self.translate_step(step, current)
        return current


def translate_to_mdatalog(
    query, labels: Iterable[str], query_predicate: str = ANSWER
) -> MonadicProgram:
    """Translate an (absolute) Core XPath query into monadic datalog.

    ``labels`` must cover the label alphabet of the documents the program
    will run on (needed for ``*`` node tests).  The program uses the
    ``child`` relation and possibly stratified negation; apply
    :func:`translate_to_tmnf` for the pure TMNF form of positive queries.
    """
    path = parse_xpath(query) if isinstance(query, str) else query
    translator = _Translator(list(labels))
    result = translator.translate_path(path)
    translator.rules.append(
        Rule(Atom(query_predicate, (X,)), (Literal(Atom(result, (X,))),))
    )
    return MonadicProgram(translator.rules, query_predicates=[query_predicate])


def translate_to_tmnf(
    query, labels: Iterable[str], query_predicate: str = ANSWER
) -> MonadicProgram:
    """Core XPath -> TMNF (Theorem 4.6): translation + Theorem 2.7 rewriting.

    Only negation-free queries are accepted (see the module docstring)."""
    path = parse_xpath(query) if isinstance(query, str) else query
    if not is_positive(path):
        raise UnsupportedFeatureError(
            "the TMNF translation implemented here covers positive Core XPath; "
            "negated queries are translated with stratified negation by "
            "translate_to_mdatalog instead"
        )
    return to_tmnf(translate_to_mdatalog(path, labels, query_predicate=query_predicate))

"""Abstract syntax of Core XPath (and the positive / extended fragments).

Core XPath ([15], discussed in Section 4 of the paper) is the navigational
fragment of XPath 1: location paths built from axes and node tests, with
predicates that are boolean combinations (and/or/not) of relative location
paths.  The extended fragment adds attribute tests, text comparison and
positional predicates (a slice of the paper's "pXPath").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

# Axes supported by the evaluators (XPath names).
AXES = (
    "self",
    "child",
    "parent",
    "descendant",
    "descendant-or-self",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
)

INVERSE_AXIS = {
    "self": "self",
    "child": "parent",
    "parent": "child",
    "descendant": "ancestor",
    "ancestor": "descendant",
    "descendant-or-self": "ancestor-or-self",
    "ancestor-or-self": "descendant-or-self",
    "following-sibling": "preceding-sibling",
    "preceding-sibling": "following-sibling",
    "following": "preceding",
    "preceding": "following",
}


@dataclass(frozen=True)
class NodeTest:
    """A node test: a tag name, ``*`` (any element), ``node()`` or ``text()``."""

    kind: str  # "name" | "any-element" | "any" | "text"
    name: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "name":
            return self.name or ""
        if self.kind == "any-element":
            return "*"
        if self.kind == "text":
            return "text()"
        return "node()"


# --- predicate expressions -------------------------------------------------


@dataclass(frozen=True)
class PathExists:
    """Existential predicate: the relative path has at least one result."""

    path: "LocationPath"

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class Not:
    operand: "Condition"

    def __str__(self) -> str:
        return f"not({self.operand})"


@dataclass(frozen=True)
class And:
    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or:
    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class AttributeTest:
    """[@name] or [@name = 'value'] (extended fragment)."""

    name: str
    value: Optional[str] = None

    def __str__(self) -> str:
        if self.value is None:
            return f"@{self.name}"
        return f"@{self.name}='{self.value}'"


@dataclass(frozen=True)
class TextEquals:
    """[text() = 'value'] or [path = 'value'] (extended fragment)."""

    value: str
    path: Optional["LocationPath"] = None

    def __str__(self) -> str:
        prefix = str(self.path) if self.path is not None else "text()"
        return f"{prefix}='{self.value}'"


@dataclass(frozen=True)
class Position:
    """[n], [position() = n] or [last()] (extended fragment)."""

    index: Optional[int] = None  # 1-based; None means last()

    def __str__(self) -> str:
        return "last()" if self.index is None else str(self.index)


Condition = Union[PathExists, Not, And, Or, AttributeTest, TextEquals, Position]


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::nodetest[predicate]*``."""

    axis: str
    node_test: NodeTest
    predicates: Tuple[Condition, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis}::{self.node_test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """An absolute or relative location path (a sequence of steps)."""

    steps: Tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        inner = "/".join(str(step) for step in self.steps)
        return ("/" + inner) if self.absolute else inner

    def __len__(self) -> int:
        return len(self.steps)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def query_size(path: LocationPath) -> int:
    """Number of steps + predicate operators, a standard |Q| measure."""
    total = 0
    for step in path.steps:
        total += 1
        for predicate in step.predicates:
            total += _condition_size(predicate)
    return total


def _condition_size(condition: Condition) -> int:
    if isinstance(condition, PathExists):
        return query_size(condition.path)
    if isinstance(condition, Not):
        return 1 + _condition_size(condition.operand)
    if isinstance(condition, (And, Or)):
        return 1 + _condition_size(condition.left) + _condition_size(condition.right)
    return 1


def is_positive(path: LocationPath) -> bool:
    """True iff the query contains no negation (positive Core XPath)."""
    return all(
        _condition_positive(predicate)
        for step in path.steps
        for predicate in step.predicates
    )


def _condition_positive(condition: Condition) -> bool:
    if isinstance(condition, Not):
        return False
    if isinstance(condition, (And, Or)):
        return _condition_positive(condition.left) and _condition_positive(condition.right)
    if isinstance(condition, PathExists):
        return is_positive(condition.path)
    return True


def is_core(path: LocationPath) -> bool:
    """True iff the query is plain Core XPath (no attribute / text / position
    predicates — only paths and boolean connectives)."""
    return all(
        _condition_core(predicate)
        for step in path.steps
        for predicate in step.predicates
    )


def _condition_core(condition: Condition) -> bool:
    if isinstance(condition, (AttributeTest, TextEquals, Position)):
        return False
    if isinstance(condition, Not):
        return _condition_core(condition.operand)
    if isinstance(condition, (And, Or)):
        return _condition_core(condition.left) and _condition_core(condition.right)
    if isinstance(condition, PathExists):
        return is_core(condition.path)
    return True

"""Core XPath and friends: parser, evaluators, and the TMNF translation."""

from .ast import (
    And,
    AttributeTest,
    LocationPath,
    NodeTest,
    Not,
    Or,
    PathExists,
    Position,
    Step,
    TextEquals,
    is_core,
    is_positive,
    query_size,
)
from .core import CoreXPathEvaluator, UnsupportedFeatureError, evaluate_xpath
from .full import FullXPathEvaluator, evaluate_full
from .naive import NaiveXPathEvaluator, evaluate_naive
from .parser import XPathSyntaxError, parse_xpath
from .to_tmnf import translate_to_mdatalog, translate_to_tmnf

__all__ = [
    "And",
    "AttributeTest",
    "CoreXPathEvaluator",
    "FullXPathEvaluator",
    "LocationPath",
    "NaiveXPathEvaluator",
    "NodeTest",
    "Not",
    "Or",
    "PathExists",
    "Position",
    "Step",
    "TextEquals",
    "UnsupportedFeatureError",
    "XPathSyntaxError",
    "evaluate_full",
    "evaluate_naive",
    "evaluate_xpath",
    "is_core",
    "is_positive",
    "parse_xpath",
    "query_size",
    "translate_to_mdatalog",
    "translate_to_tmnf",
]

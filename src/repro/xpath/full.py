"""A polynomial-time evaluator for an extended XPath fragment.

Theorem 4.1 of the paper: XPath 1 is in PTIME w.r.t. combined complexity,
shown via a dynamic-programming algorithm ([15, 17]).  This module follows
the same idea for the fragment used in this reproduction — Core XPath plus
attribute tests, text comparison and *positional* predicates
(``[3]``, ``[position()=3]``, ``[last()]``).

Positional predicates need per-context-node sequences (a set-at-a-time
evaluation cannot know "the 3rd child of *this* node"), so evaluation is
node-at-a-time, but every intermediate result is memoised:

* ``(step, context node) -> ordered candidate list``
* ``(condition, node) -> bool``

which bounds the work by O(|Q| * |D|^2) — polynomial, as promised.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..tree.axes import axis_iterator
from ..tree.document import Document
from ..tree.node import Node
from .ast import (
    And,
    AttributeTest,
    Condition,
    LocationPath,
    NodeTest,
    Not,
    Or,
    PathExists,
    Position,
    Step,
    TextEquals,
)
from .core import UnsupportedFeatureError
from .parser import parse_xpath

REVERSE_AXES = {"ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent"}


class FullXPathEvaluator:
    """Memoised node-at-a-time evaluation supporting positional predicates."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self._step_cache: Dict[Tuple[int, int], List[Node]] = {}
        self._condition_cache: Dict[Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------
    def evaluate(self, query, context: Node = None) -> List[Node]:
        path = parse_xpath(query) if isinstance(query, str) else query
        start = self.document.root if (context is None or path.absolute) else context
        result = {node.preorder_index: node for node in self._eval_path(path, start)}
        return [result[index] for index in sorted(result)]

    # ------------------------------------------------------------------
    def _eval_path(self, path: LocationPath, context: Node) -> List[Node]:
        nodes = [context]
        for step in path.steps:
            produced: List[Node] = []
            seen: set = set()
            for node in nodes:
                for candidate in self._eval_step(step, node):
                    if candidate.preorder_index not in seen:
                        seen.add(candidate.preorder_index)
                        produced.append(candidate)
            nodes = produced
        return nodes

    def _eval_step(self, step: Step, context: Node) -> List[Node]:
        key = (id(step), context.preorder_index)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached
        # Candidates in axis order (document order for forward axes, reverse
        # document order for reverse axes) — positional predicates count in
        # axis order, per the XPath specification.
        candidates = [
            node
            for node in axis_iterator(step.axis)(context)
            if self._node_test(step.node_test, node)
        ]
        for predicate in step.predicates:
            if isinstance(predicate, Position):
                size = len(candidates)
                if predicate.index is None:  # last()
                    candidates = candidates[-1:] if candidates else []
                elif 1 <= predicate.index <= size:
                    candidates = [candidates[predicate.index - 1]]
                else:
                    candidates = []
            else:
                candidates = [
                    node for node in candidates if self._condition(predicate, node)
                ]
        self._step_cache[key] = candidates
        return candidates

    def _node_test(self, node_test: NodeTest, node: Node) -> bool:
        if node_test.kind == "any":
            return True
        if node_test.kind == "any-element":
            return node.label not in ("#text", "#comment")
        if node_test.kind == "text":
            return node.label == "#text"
        return node.label == node_test.name

    def _condition(self, condition: Condition, node: Node) -> bool:
        key = (id(condition), node.preorder_index)
        cached = self._condition_cache.get(key)
        if cached is not None:
            return cached
        result = self._condition_uncached(condition, node)
        self._condition_cache[key] = result
        return result

    def _condition_uncached(self, condition: Condition, node: Node) -> bool:
        if isinstance(condition, PathExists):
            start = self.document.root if condition.path.absolute else node
            return bool(self._eval_path(condition.path, start))
        if isinstance(condition, Not):
            return not self._condition(condition.operand, node)
        if isinstance(condition, And):
            return self._condition(condition.left, node) and self._condition(
                condition.right, node
            )
        if isinstance(condition, Or):
            return self._condition(condition.left, node) or self._condition(
                condition.right, node
            )
        if isinstance(condition, AttributeTest):
            value = node.attributes.get(condition.name)
            if value is None:
                return False
            return condition.value is None or value == condition.value
        if isinstance(condition, TextEquals):
            if condition.path is None:
                return node.normalized_text() == condition.value
            start = self.document.root if condition.path.absolute else node
            return any(
                target.normalized_text() == condition.value
                for target in self._eval_path(condition.path, start)
            )
        if isinstance(condition, Position):
            raise UnsupportedFeatureError(
                "positional predicates are handled at the step level"
            )
        raise UnsupportedFeatureError(f"unsupported condition {condition!r}")


def evaluate_full(document: Document, query, context: Node = None) -> List[Node]:
    """One-shot helper for the extended-fragment evaluator."""
    return FullXPathEvaluator(document).evaluate(query, context=context)

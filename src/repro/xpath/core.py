"""Linear-time (set-at-a-time) evaluation of Core XPath.

Theorem 4.1/4.2 background: [15] showed that XPath 1 can be evaluated in
polynomial time and that its navigational fragment, Core XPath, can be
evaluated in time O(|D| * |Q|).  The algorithm implemented here is the
context-set technique of that paper:

* a location path is evaluated set-at-a-time — each step maps a *set* of
  nodes to the set of nodes reachable via the axis, intersected with the
  node-test — and each such image is computed in one pass over the document;
* a predicate ``[p]`` is evaluated by computing, once, the set of nodes at
  which ``p`` holds (working backwards through ``p`` with inverse axes), so
  nested predicates never cause repeated work.

The node-at-a-time baseline in :mod:`repro.xpath.naive` implements the
pre-2002 behaviour (exponential in the query size); benchmark E8 contrasts
the two.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..tree.document import Document
from ..tree.node import Node
from .ast import (
    INVERSE_AXIS,
    And,
    AttributeTest,
    Condition,
    LocationPath,
    NodeTest,
    Not,
    Or,
    PathExists,
    Position,
    Step,
    TextEquals,
)
from .parser import parse_xpath

NodeSet = Set[int]  # sets of preorder indexes


class UnsupportedFeatureError(ValueError):
    """Raised when a query needs features outside this evaluator's fragment."""


class CoreXPathEvaluator:
    """Evaluates Core XPath queries over a fixed document in O(|D|*|Q|)."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self._all: NodeSet = {node.preorder_index for node in document}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, query, context: Node = None) -> List[Node]:
        """Evaluate ``query`` (a string or parsed path) and return nodes in
        document order.

        Absolute paths start at the root; relative paths start at ``context``
        (default: the root).
        """
        path = parse_xpath(query) if isinstance(query, str) else query
        start = self.document.root if context is None else context
        if path.absolute:
            initial: NodeSet = {self.document.root.preorder_index}
        else:
            initial = {start.preorder_index}
        result = self._eval_path(path, initial)
        return [self.document.node_at(index) for index in sorted(result)]

    def select(self, query, context: Node = None) -> List[Node]:
        return self.evaluate(query, context=context)

    # ------------------------------------------------------------------
    # Path / step evaluation
    # ------------------------------------------------------------------
    def _eval_path(self, path: LocationPath, context: NodeSet) -> NodeSet:
        current = set(context)
        for step in path.steps:
            if not current:
                return set()
            current = self._eval_step(step, current)
        return current

    def _eval_step(self, step: Step, context: NodeSet) -> NodeSet:
        image = self.axis_image(step.axis, context)
        image &= self.node_test_set(step.node_test)
        for predicate in step.predicates:
            image &= self._condition_set(predicate)
        return image

    # ------------------------------------------------------------------
    # Predicates (computed as node sets, once per condition occurrence)
    # ------------------------------------------------------------------
    def _condition_set(self, condition: Condition) -> NodeSet:
        if isinstance(condition, PathExists):
            return self._path_origin_set(condition.path)
        if isinstance(condition, Not):
            return self._all - self._condition_set(condition.operand)
        if isinstance(condition, And):
            return self._condition_set(condition.left) & self._condition_set(condition.right)
        if isinstance(condition, Or):
            return self._condition_set(condition.left) | self._condition_set(condition.right)
        if isinstance(condition, AttributeTest):
            return self._attribute_set(condition)
        if isinstance(condition, TextEquals):
            return self._text_equals_set(condition)
        if isinstance(condition, Position):
            raise UnsupportedFeatureError(
                "positional predicates are outside Core XPath; use FullXPathEvaluator"
            )
        raise UnsupportedFeatureError(f"unsupported condition {condition!r}")

    def _path_origin_set(self, path: LocationPath) -> NodeSet:
        """Nodes x for which the (relative) path from x is non-empty."""
        if path.absolute:
            result = self._eval_path(path, {self.document.root.preorder_index})
            return set(self._all) if result else set()
        if not path.steps:
            return set(self._all)
        # R_i: nodes satisfying step i's test/predicates from which the rest
        # of the path matches; computed right-to-left.
        steps = path.steps
        satisfies_last = self.node_test_set(steps[-1].node_test)
        for predicate in steps[-1].predicates:
            satisfies_last = satisfies_last & self._condition_set(predicate)
        current = satisfies_last
        for index in range(len(steps) - 1, 0, -1):
            step = steps[index]
            previous = steps[index - 1]
            origin = self.axis_image(INVERSE_AXIS[step.axis], current)
            origin &= self.node_test_set(previous.node_test)
            for predicate in previous.predicates:
                origin &= self._condition_set(predicate)
            current = origin
        return self.axis_image(INVERSE_AXIS[steps[0].axis], current)

    def _attribute_set(self, condition: AttributeTest) -> NodeSet:
        result: NodeSet = set()
        for node in self.document:
            value = node.attributes.get(condition.name)
            if value is None:
                continue
            if condition.value is None or value == condition.value:
                result.add(node.preorder_index)
        return result

    def _text_equals_set(self, condition: TextEquals) -> NodeSet:
        if condition.path is None:
            return {
                node.preorder_index
                for node in self.document
                if node.normalized_text() == condition.value
            }
        # [path = 'value']: nodes x with some node reachable via path whose
        # normalised text equals the value.
        matching = {
            node.preorder_index
            for node in self.document
            if node.normalized_text() == condition.value
        }
        return self._origins_reaching(condition.path, matching)

    def _origins_reaching(self, path: LocationPath, targets: NodeSet) -> NodeSet:
        """Nodes from which ``path`` reaches at least one node in ``targets``."""
        current = set(targets)
        for index in range(len(path.steps) - 1, -1, -1):
            step = path.steps[index]
            current &= self.node_test_set(step.node_test)
            for predicate in step.predicates:
                current &= self._condition_set(predicate)
            current = self.axis_image(INVERSE_AXIS[step.axis], current)
        return current

    # ------------------------------------------------------------------
    # Node tests
    # ------------------------------------------------------------------
    def node_test_set(self, node_test: NodeTest) -> NodeSet:
        if node_test.kind == "any":
            return set(self._all)
        if node_test.kind == "any-element":
            return {
                node.preorder_index
                for node in self.document
                if node.label not in ("#text", "#comment")
            }
        if node_test.kind == "text":
            return {
                node.preorder_index for node in self.document.nodes_with_label("#text")
            }
        return {
            node.preorder_index
            for node in self.document.nodes_with_label(node_test.name or "")
        }

    # ------------------------------------------------------------------
    # Axis images (each a single O(|dom|) pass)
    # ------------------------------------------------------------------
    def axis_image(self, axis: str, source: NodeSet) -> NodeSet:
        if axis == "self":
            return set(source)
        if axis == "child":
            return {
                node.preorder_index
                for node in self.document
                if node.parent is not None and node.parent.preorder_index in source
            }
        if axis == "parent":
            return {
                node.parent.preorder_index
                for node in (self.document.node_at(index) for index in source)
                if node.parent is not None
            }
        if axis == "descendant":
            return self._descendants(source, include_self=False)
        if axis == "descendant-or-self":
            return self._descendants(source, include_self=True)
        if axis == "ancestor":
            return self._ancestors(source, include_self=False)
        if axis == "ancestor-or-self":
            return self._ancestors(source, include_self=True)
        if axis == "following-sibling":
            return self._siblings(source, forward=True)
        if axis == "preceding-sibling":
            return self._siblings(source, forward=False)
        if axis == "following":
            up = self._ancestors(source, include_self=True)
            siblings = self._siblings(up, forward=True)
            return self._descendants(siblings, include_self=True)
        if axis == "preceding":
            up = self._ancestors(source, include_self=True)
            siblings = self._siblings(up, forward=False)
            return self._descendants(siblings, include_self=True)
        raise UnsupportedFeatureError(f"unsupported axis {axis!r}")

    def _descendants(self, source: NodeSet, include_self: bool) -> NodeSet:
        result: NodeSet = set(source) if include_self else set()
        # One DFS over the whole document keeping the count of ancestors in
        # ``source`` on the path from the root to the current node.
        stack: List[tuple] = [(self.document.root, 0)]
        while stack:
            node, ancestors_in_source = stack.pop()
            if ancestors_in_source > 0:
                result.add(node.preorder_index)
            addition = 1 if node.preorder_index in source else 0
            for child in node.children:
                stack.append((child, ancestors_in_source + addition))
        return result

    def _ancestors(self, source: NodeSet, include_self: bool) -> NodeSet:
        result: NodeSet = set(source) if include_self else set()
        # Postorder aggregation: a node is an ancestor of a source node iff
        # one of its children's subtrees contains a source node.
        contains: Dict[int, bool] = {}
        for node in reversed(self.document.dom):  # reverse preorder ~ children first
            index = node.preorder_index
            has_source_below = any(contains[child.preorder_index] for child in node.children)
            if has_source_below:
                result.add(index)
            contains[index] = has_source_below or index in source
        return result

    def _siblings(self, source: NodeSet, forward: bool) -> NodeSet:
        result: NodeSet = set()
        for node in self.document:
            if not node.children:
                continue
            children = node.children if forward else list(reversed(node.children))
            seen_source = False
            for child in children:
                if seen_source:
                    result.add(child.preorder_index)
                if child.preorder_index in source:
                    seen_source = True
        return result


def evaluate_xpath(document: Document, query, context: Node = None) -> List[Node]:
    """One-shot helper: evaluate ``query`` over ``document``."""
    return CoreXPathEvaluator(document).evaluate(query, context=context)

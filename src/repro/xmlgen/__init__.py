"""XML output substrate: element model, serialiser and parser."""

from .document import XmlElement, from_document, to_document
from .serializer import parse_xml, to_compact_xml, to_xml

__all__ = [
    "XmlElement",
    "from_document",
    "parse_xml",
    "to_compact_xml",
    "to_document",
    "to_xml",
]

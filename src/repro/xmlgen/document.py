"""Lightweight XML document model used on the output side of wrapping.

The Lixto XML Designer / XML Transformer (Section 3.1) and the Transformation
Server (Section 5) exchange XML documents between components.  ``XmlElement``
is intentionally small: an element name, attributes, text, and children.  It
can be converted to/from the generic :class:`~repro.tree.document.Document`
model and serialised to markup.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..tree.document import Document
from ..tree.node import Node


class XmlElement:
    """A single XML element."""

    __slots__ = ("name", "attributes", "text", "children", "parent")

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        self.name = name
        self.attributes: Dict[str, str] = dict(attributes) if attributes else {}
        self.text = text
        self.children: List["XmlElement"] = []
        self.parent: Optional["XmlElement"] = None

    # -- construction ----------------------------------------------------
    def append(self, child: "XmlElement") -> "XmlElement":
        child.parent = self
        self.children.append(child)
        return child

    def add(
        self,
        name: str,
        text: str = "",
        attributes: Optional[Dict[str, str]] = None,
    ) -> "XmlElement":
        """Create, append and return a child element."""
        return self.append(XmlElement(name, attributes=attributes, text=text))

    # -- querying ----------------------------------------------------------
    def find(self, name: str) -> Optional["XmlElement"]:
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find_all(self, name: str) -> List["XmlElement"]:
        return [child for child in self.children if child.name == name]

    def iter(self, name: Optional[str] = None) -> Iterator["XmlElement"]:
        """Iterate over this element and all descendants (preorder)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if name is None or node.name == name:
                yield node
            stack.extend(reversed(node.children))

    def findtext(self, name: str, default: str = "") -> str:
        child = self.find(name)
        return child.full_text() if child is not None else default

    def full_text(self) -> str:
        parts = [self.text] if self.text else []
        for node in self.iter():
            if node is not self and node.text:
                parts.append(node.text)
        return "".join(parts)

    def get(self, attribute: str, default: str = "") -> str:
        return self.attributes.get(attribute, default)

    # -- misc ---------------------------------------------------------------
    def size(self) -> int:
        return sum(1 for _ in self.iter())

    def copy(self) -> "XmlElement":
        clone = XmlElement(self.name, attributes=dict(self.attributes), text=self.text)
        for child in self.children:
            clone.append(child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return f"XmlElement(<{self.name}> children={len(self.children)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlElement):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.text == other.text
            and self.children == other.children
        )

    def __hash__(self) -> int:  # content-based, used by change detection
        return hash((self.name, self.text, tuple(sorted(self.attributes.items())), len(self.children)))


def to_document(element: XmlElement) -> Document:
    """View an XML element tree as a generic tau_ur document."""
    root = _to_node(element)
    return Document(root)


def _to_node(element: XmlElement) -> Node:
    node = Node(element.name, attributes=element.attributes)
    if element.text:
        node.append_child(Node("#text", text=element.text))
    for child in element.children:
        node.append_child(_to_node(child))
    return node


def from_document(document: Document) -> XmlElement:
    """Convert a generic document into an XML element tree.

    Text nodes are folded into their parent's ``text``/tail-free model by
    concatenation (sufficient for the data-centric XML the wrappers emit).
    """
    return _from_node(document.root)


def _from_node(node: Node) -> XmlElement:
    element = XmlElement(node.label if node.label != "#document" else "document",
                         attributes=node.attributes)
    text_parts: List[str] = []
    for child in node.children:
        if child.label == "#text":
            text_parts.append(child.text)
        elif child.label == "#comment":
            continue
        else:
            element.append(_from_node(child))
    element.text = "".join(text_parts)
    return element

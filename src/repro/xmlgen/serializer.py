"""XML serialisation and parsing for :class:`XmlElement` trees."""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import List
from xml.sax.saxutils import escape, quoteattr

from .document import XmlElement


def to_xml(element: XmlElement, indent: int = 2, declaration: bool = True) -> str:
    """Serialise an element tree to pretty-printed XML markup."""
    lines: List[str] = []
    if declaration:
        lines.append('<?xml version="1.0" encoding="UTF-8"?>')
    _write(element, lines, 0, indent)
    return "\n".join(lines)


def _write(element: XmlElement, lines: List[str], depth: int, indent: int) -> None:
    pad = " " * (depth * indent)
    attributes = "".join(
        f" {name}={quoteattr(value)}" for name, value in element.attributes.items()
    )
    text = escape(element.text.strip()) if element.text else ""
    if not element.children:
        if text:
            lines.append(f"{pad}<{element.name}{attributes}>{text}</{element.name}>")
        else:
            lines.append(f"{pad}<{element.name}{attributes}/>")
        return
    lines.append(f"{pad}<{element.name}{attributes}>{text}")
    for child in element.children:
        _write(child, lines, depth + 1, indent)
    lines.append(f"{pad}</{element.name}>")


def to_compact_xml(element: XmlElement, declaration: bool = False) -> str:
    """Single-line serialisation (used when hashing for change detection)."""
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0"?>')
    _write_compact(element, parts)
    return "".join(parts)


def _write_compact(element: XmlElement, parts: List[str]) -> None:
    attributes = "".join(
        f" {name}={quoteattr(value)}" for name, value in element.attributes.items()
    )
    parts.append(f"<{element.name}{attributes}>")
    if element.text:
        parts.append(escape(element.text))
    for child in element.children:
        _write_compact(child, parts)
    parts.append(f"</{element.name}>")


def parse_xml(markup: str) -> XmlElement:
    """Parse XML markup into an :class:`XmlElement` tree (ElementTree-backed)."""
    etree_root = ElementTree.fromstring(markup)
    return _convert(etree_root)


def _convert(etree_element: ElementTree.Element) -> XmlElement:
    element = XmlElement(
        _local_name(etree_element.tag),
        attributes={_local_name(k): v for k, v in etree_element.attrib.items()},
        text=(etree_element.text or "").strip(),
    )
    for child in etree_element:
        converted = _convert(child)
        element.append(converted)
        if child.tail and child.tail.strip():
            element.text += " " + child.tail.strip()
    return element


def _local_name(tag: str) -> str:
    if tag.startswith("{"):
        return tag.split("}", 1)[1]
    return tag

"""Nodes of unranked ordered labelled trees.

The paper (Section 2.2) models documents as unranked ordered trees over a
finite alphabet of labels.  Text and attribute values are, in the formal
model, encoded as character subtrees; for practicality this implementation
keeps text and attributes as node payloads while still exposing the purely
structural view required by the theory packages.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class Node:
    """A single node of an unranked ordered labelled tree.

    Attributes
    ----------
    label:
        The node label (for HTML documents: the lowercase tag name, or the
        pseudo-labels ``#text`` and ``#comment`` for character data).
    attributes:
        Mapping of attribute names to string values (empty for text nodes).
    text:
        Character data carried by the node itself.  For element nodes this is
        empty; the textual content of an element is obtained with
        :meth:`text_content`.
    """

    __slots__ = (
        "label",
        "attributes",
        "text",
        "parent",
        "children",
        "_index_in_parent",
        "_preorder",
        "_postorder",
    )

    def __init__(
        self,
        label: str,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        self.label = label
        self.attributes: Dict[str, str] = dict(attributes) if attributes else {}
        self.text = text
        self.parent: Optional[Node] = None
        self.children: List[Node] = []
        self._index_in_parent: int = -1
        # Filled in by Document.reindex(); -1 means "not yet indexed".
        self._preorder: int = -1
        self._postorder: int = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append_child(self, child: "Node") -> "Node":
        """Attach ``child`` as the new rightmost child and return it."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        child._index_in_parent = len(self.children)
        self.children.append(child)
        return child

    def insert_child(self, index: int, child: "Node") -> "Node":
        """Insert ``child`` at position ``index`` among the children."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.insert(index, child)
        for position, node in enumerate(self.children):
            node._index_in_parent = position
        return child

    def detach(self) -> "Node":
        """Remove this node (and its subtree) from its parent."""
        if self.parent is None:
            return self
        siblings = self.parent.children
        siblings.remove(self)
        for position, node in enumerate(siblings):
            node._index_in_parent = position
        self.parent = None
        self._index_in_parent = -1
        return self

    # ------------------------------------------------------------------
    # Structural accessors (the tau_ur relations, node-local view)
    # ------------------------------------------------------------------
    @property
    def index_in_parent(self) -> int:
        """Zero-based position among the parent's children (-1 for a root)."""
        return self._index_in_parent

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_first_sibling(self) -> bool:
        """True iff this node is the leftmost child of its parent."""
        return self.parent is not None and self._index_in_parent == 0

    @property
    def is_last_sibling(self) -> bool:
        """True iff this node is the rightmost child of its parent.

        Following the paper, the root is *not* a last sibling because it has
        no parent.
        """
        if self.parent is None:
            return False
        return self._index_in_parent == len(self.parent.children) - 1

    @property
    def first_child(self) -> Optional["Node"]:
        return self.children[0] if self.children else None

    @property
    def last_child(self) -> Optional["Node"]:
        return self.children[-1] if self.children else None

    @property
    def next_sibling(self) -> Optional["Node"]:
        if self.parent is None:
            return None
        position = self._index_in_parent + 1
        if position < len(self.parent.children):
            return self.parent.children[position]
        return None

    @property
    def previous_sibling(self) -> Optional["Node"]:
        if self.parent is None or self._index_in_parent == 0:
            return None
        return self.parent.children[self._index_in_parent - 1]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_preorder(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["Node"]:
        """Yield all proper descendants in document order."""
        iterator = self.iter_preorder()
        next(iterator)
        yield from iterator

    def iter_ancestors(self) -> Iterator["Node"]:
        """Yield all proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_children(self) -> Iterator["Node"]:
        return iter(self.children)

    def iter_following_siblings(self) -> Iterator["Node"]:
        node = self.next_sibling
        while node is not None:
            yield node
            node = node.next_sibling

    def iter_preceding_siblings(self) -> Iterator["Node"]:
        node = self.previous_sibling
        while node is not None:
            yield node
            node = node.previous_sibling

    # ------------------------------------------------------------------
    # Content helpers
    # ------------------------------------------------------------------
    def text_content(self) -> str:
        """Concatenation of all text carried by this subtree, in order."""
        parts: List[str] = []
        for node in self.iter_preorder():
            if node.text:
                parts.append(node.text)
        return "".join(parts)

    def normalized_text(self) -> str:
        """Whitespace-normalised :meth:`text_content`."""
        return " ".join(self.text_content().split())

    def get_attribute(self, name: str, default: str = "") -> str:
        return self.attributes.get(name, default)

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted at this node."""
        return sum(1 for _ in self.iter_preorder())

    def depth(self) -> int:
        """Number of edges from the root to this node."""
        return sum(1 for _ in self.iter_ancestors())

    def path_from_root(self) -> List["Node"]:
        """The root-to-node path, root first, this node last."""
        path = list(self.iter_ancestors())
        path.reverse()
        path.append(self)
        return path

    def label_path_from_root(self) -> List[str]:
        return [node.label for node in self.path_from_root()]

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    @property
    def preorder_index(self) -> int:
        """Position in document order (valid after ``Document.reindex``)."""
        return self._preorder

    @property
    def postorder_index(self) -> int:
        return self._postorder

    def is_ancestor_of(self, other: "Node") -> bool:
        """True iff this node is a proper ancestor of ``other``.

        Uses preorder/postorder intervals when available (O(1)), otherwise
        walks ``other``'s ancestor chain.
        """
        if self is other:
            return False
        if self._preorder >= 0 and other._preorder >= 0:
            return (
                self._preorder < other._preorder
                and self._postorder > other._postorder
            )
        return any(ancestor is self for ancestor in other.iter_ancestors())

    def is_descendant_of(self, other: "Node") -> bool:
        return other.is_ancestor_of(self)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.label == "#text":
            snippet = self.text[:30].replace("\n", "\\n")
            return f"Node(#text {snippet!r})"
        return f"Node(<{self.label}> children={len(self.children)})"


def element(label: str, attributes: Optional[Dict[str, str]] = None) -> Node:
    """Convenience constructor for an element node."""
    return Node(label, attributes=attributes)


def text_node(content: str) -> Node:
    """Convenience constructor for a character-data node."""
    return Node("#text", text=content)

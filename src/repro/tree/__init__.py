"""Unranked ordered labelled trees: the tau_ur substrate of the paper.

Public API
----------
* :class:`Node`, :class:`Document` — the tree model.
* :func:`tree`, :class:`TreeBuilder`, :func:`random_tree` — construction.
* :mod:`repro.tree.axes` — axis relations (child*, following, ...).
* :mod:`repro.tree.encoding` — firstchild/nextsibling binary encoding.
* :mod:`repro.tree.serialize` — s-expression / dict / outline serialisation.
"""

from .axes import AxisIndex, axis_iterator, holds
from .builder import TreeBuilder, figure1_tree, random_tree, tree
from .document import Document, common_ancestor, nodes_between, subtree_nodes
from .encoding import BinaryNode, decode, encode
from .node import Node, element, text_node
from .serialize import from_dict, to_dict, to_outline, to_sexpr

__all__ = [
    "AxisIndex",
    "BinaryNode",
    "Document",
    "Node",
    "TreeBuilder",
    "axis_iterator",
    "common_ancestor",
    "decode",
    "element",
    "encode",
    "figure1_tree",
    "from_dict",
    "holds",
    "nodes_between",
    "random_tree",
    "subtree_nodes",
    "text_node",
    "to_dict",
    "to_outline",
    "to_sexpr",
    "tree",
]

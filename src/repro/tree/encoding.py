"""Binary (firstchild / nextsibling) encoding of unranked trees.

Figure 1(b) of the paper shows the classical encoding of an unranked ordered
tree as a binary tree: the left pointer of a node is its first child and the
right pointer is its next sibling.  The ranked tree-automata machinery in
``repro.automata`` runs on this encoding, which is what makes the
MSO <-> monadic datalog correspondence executable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .document import Document
from .node import Node


class BinaryNode:
    """A node of the firstchild/nextsibling encoding.

    ``left`` points to the encoded first child, ``right`` to the encoded next
    sibling.  ``source`` is the original unranked node.
    """

    __slots__ = ("label", "left", "right", "source")

    def __init__(self, label: str, source: Optional[Node] = None) -> None:
        self.label = label
        self.left: Optional["BinaryNode"] = None
        self.right: Optional["BinaryNode"] = None
        self.source = source

    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def iter_postorder(self):
        """Yield nodes in postorder (children before parents), iteratively."""
        stack: List[Tuple["BinaryNode", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            if node.right is not None:
                stack.append((node.right, False))
            if node.left is not None:
                stack.append((node.left, False))

    def size(self) -> int:
        return sum(1 for _ in self.iter_postorder())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryNode({self.label!r})"


def encode(document: Document) -> BinaryNode:
    """Encode ``document`` into its firstchild/nextsibling binary tree.

    The encoding preserves the node set: every original node appears exactly
    once, reachable through ``source``.
    """
    return _encode_node(document.root)


def _encode_node(node: Node) -> BinaryNode:
    # Iterative construction to support very deep / very wide documents.
    root_binary = BinaryNode(node.label, source=node)
    stack: List[Tuple[Node, BinaryNode]] = [(node, root_binary)]
    while stack:
        source, encoded = stack.pop()
        if source.children:
            previous: Optional[BinaryNode] = None
            for child in source.children:
                encoded_child = BinaryNode(child.label, source=child)
                if previous is None:
                    encoded.left = encoded_child
                else:
                    previous.right = encoded_child
                previous = encoded_child
                stack.append((child, encoded_child))
    return root_binary


def decode(binary_root: BinaryNode) -> Document:
    """Decode a firstchild/nextsibling binary tree back into a document.

    Inverse of :func:`encode` (up to attribute/text payloads, which the
    structural encoding does not carry; when ``source`` links are present the
    payloads are copied over).
    """
    root = _decoded_node(binary_root)
    _attach_children(root, binary_root)
    return Document(root)


def _decoded_node(binary: BinaryNode) -> Node:
    if binary.source is not None:
        return Node(
            binary.source.label,
            attributes=binary.source.attributes,
            text=binary.source.text,
        )
    return Node(binary.label)


def _attach_children(parent: Node, binary_parent: BinaryNode) -> None:
    stack: List[Tuple[Node, BinaryNode]] = [(parent, binary_parent)]
    while stack:
        unranked, binary = stack.pop()
        child_binary = binary.left
        while child_binary is not None:
            child_unranked = _decoded_node(child_binary)
            unranked.append_child(child_unranked)
            stack.append((child_unranked, child_binary))
            child_binary = child_binary.right


def node_map(binary_root: BinaryNode) -> Dict[int, BinaryNode]:
    """Map original node ids to their encoded counterparts."""
    mapping: Dict[int, BinaryNode] = {}
    for binary in binary_root.iter_postorder():
        if binary.source is not None:
            mapping[id(binary.source)] = binary
    return mapping


def encoding_round_trips(document: Document) -> bool:
    """Check that encode followed by decode reproduces the same shape.

    Used by property-based tests.
    """
    decoded = decode(encode(document))
    return _same_shape(document.root, decoded.root)


def _same_shape(first: Node, second: Node) -> bool:
    stack = [(first, second)]
    while stack:
        a, b = stack.pop()
        if a.label != b.label or len(a.children) != len(b.children):
            return False
        stack.extend(zip(a.children, b.children))
    return True

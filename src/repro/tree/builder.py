"""Convenience builders for unranked ordered trees.

Two construction styles are provided:

* :func:`tree` / nested-tuple literals — handy in tests and examples,
  mirroring how the paper draws example trees (Figure 1).
* :class:`TreeBuilder` — an imperative builder used by the HTML and XML
  parsers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .document import Document
from .node import Node

# A tree literal is either a plain label (leaf), or a tuple/list whose first
# entry is the label (optionally followed by an attribute dict) and whose
# remaining entries are child literals.  Strings starting with "text:" create
# text nodes.
TreeLiteral = Union[str, Sequence]


def _node_from_literal(literal: TreeLiteral) -> Node:
    if isinstance(literal, str):
        if literal.startswith("text:"):
            return Node("#text", text=literal[len("text:"):])
        return Node(literal)
    if not literal:
        raise ValueError("empty tree literal")
    label = literal[0]
    if not isinstance(label, str):
        raise ValueError(f"tree literal must start with a label, got {label!r}")
    rest = list(literal[1:])
    attributes: Optional[Dict[str, str]] = None
    if rest and isinstance(rest[0], dict):
        attributes = rest.pop(0)
    node = Node(label, attributes=attributes)
    for child_literal in rest:
        node.append_child(_node_from_literal(child_literal))
    return node


def tree(literal: TreeLiteral, url: Optional[str] = None) -> Document:
    """Build a :class:`Document` from a nested literal.

    Example (the tree of Figure 1)::

        doc = tree(("n1", ("n2",), ("n3", ("n4",), ("n5",)), ("n6",)))
    """
    return Document(_node_from_literal(literal), url=url)


def figure1_tree() -> Document:
    """The 6-node example tree of Figure 1 of the paper.

    The root n1 has children n2, n3, n6; n3 has children n4 and n5.
    Labels are simply the node names.
    """
    return tree(("n1", ("n2",), ("n3", ("n4",), ("n5",)), ("n6",)))


class TreeBuilder:
    """Imperative builder producing a :class:`Document`.

    The HTML and XML parsers drive this builder through ``start``/``end``/
    ``text`` events.
    """

    def __init__(self, root_label: str = "#document") -> None:
        self._root = Node(root_label)
        self._stack: List[Node] = [self._root]
        self._finished = False

    @property
    def current(self) -> Node:
        return self._stack[-1]

    @property
    def depth(self) -> int:
        return len(self._stack) - 1

    def start(self, label: str, attributes: Optional[Dict[str, str]] = None) -> Node:
        """Open an element and make it the current node."""
        node = Node(label, attributes=attributes)
        self._stack[-1].append_child(node)
        self._stack.append(node)
        return node

    def end(self, label: Optional[str] = None) -> Node:
        """Close the current element.

        If ``label`` is given and does not match the current element, open
        elements are popped until a match is found (this is the lenient
        behaviour needed for real-world HTML).
        """
        if len(self._stack) == 1:
            return self._root
        if label is None:
            return self._stack.pop()
        # Find the matching open element, if any.
        for position in range(len(self._stack) - 1, 0, -1):
            if self._stack[position].label == label:
                node = self._stack[position]
                del self._stack[position:]
                return node
        # No matching open tag: ignore the stray end tag.
        return self._stack[-1]

    def empty(self, label: str, attributes: Optional[Dict[str, str]] = None) -> Node:
        """Add a childless element without making it current."""
        node = Node(label, attributes=attributes)
        self._stack[-1].append_child(node)
        return node

    def text(self, content: str) -> Optional[Node]:
        """Add a text node (skipped when the content is empty)."""
        if not content:
            return None
        node = Node("#text", text=content)
        self._stack[-1].append_child(node)
        return node

    def comment(self, content: str) -> Node:
        node = Node("#comment", text=content)
        self._stack[-1].append_child(node)
        return node

    def finish(self, url: Optional[str] = None) -> Document:
        """Close all open elements and return the finished document."""
        if self._finished:
            raise RuntimeError("builder already finished")
        self._finished = True
        self._stack = [self._root]
        return Document(self._root, url=url)


def random_tree(
    size: int,
    labels: Sequence[str] = ("a", "b", "c", "d"),
    max_children: int = 5,
    seed: int = 0,
) -> Document:
    """Generate a pseudo-random tree with exactly ``size`` nodes.

    Used by tests and benchmark workload generators.  Determinism is
    guaranteed by the explicit ``seed``.
    """
    import random as _random

    if size < 1:
        raise ValueError("size must be at least 1")
    rng = _random.Random(seed)
    root = Node(rng.choice(labels))
    open_nodes = [root]
    created = 1
    while created < size:
        parent = rng.choice(open_nodes)
        child = Node(rng.choice(labels))
        parent.append_child(child)
        created += 1
        open_nodes.append(child)
        if len(parent.children) >= max_children:
            open_nodes.remove(parent)
        # Keep the frontier bounded so the tree gets both depth and breadth.
        if len(open_nodes) > 64:
            open_nodes.pop(rng.randrange(len(open_nodes)))
            if not open_nodes:
                open_nodes.append(child)
    return Document(root)

"""Serialisation helpers for documents and subtrees.

These are used by examples, the XML Designer/Transformer, tests, and for
debugging.  Formats: s-expressions (compact structural view), nested dicts
(JSON-friendly), and an indented outline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from .document import Document
from .node import Node


def to_sexpr(node_or_document: Union[Node, Document]) -> str:
    """Compact s-expression of the structural tree (labels only)."""
    node = _root_of(node_or_document)
    parts: List[str] = []
    _sexpr(node, parts)
    return "".join(parts)


def _sexpr(node: Node, parts: List[str]) -> None:
    stack: List[Any] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        if item.children:
            parts.append(f"({item.label}")
            stack.append(")")
            for child in reversed(item.children):
                stack.append(child)
                stack.append(" ")
        else:
            label = item.label
            if label == "#text":
                label = f"'{item.text}'"
            parts.append(label)


def to_dict(node_or_document: Union[Node, Document]) -> Dict[str, Any]:
    """Nested dictionary representation (JSON serialisable)."""
    root = _root_of(node_or_document)
    result: Dict[str, Any] = _node_dict(root)
    stack: List[tuple] = [(root, result)]
    while stack:
        node, node_dict = stack.pop()
        children = []
        for child in node.children:
            child_dict = _node_dict(child)
            children.append(child_dict)
            stack.append((child, child_dict))
        if children:
            node_dict["children"] = children
    return result


def _node_dict(node: Node) -> Dict[str, Any]:
    result: Dict[str, Any] = {"label": node.label}
    if node.attributes:
        result["attributes"] = dict(node.attributes)
    if node.text:
        result["text"] = node.text
    return result


def from_dict(data: Dict[str, Any]) -> Node:
    """Inverse of :func:`to_dict`."""
    node = Node(
        data["label"],
        attributes=data.get("attributes"),
        text=data.get("text", ""),
    )
    stack: List[tuple] = [(node, data)]
    while stack:
        parent_node, parent_data = stack.pop()
        for child_data in parent_data.get("children", []):
            child_node = Node(
                child_data["label"],
                attributes=child_data.get("attributes"),
                text=child_data.get("text", ""),
            )
            parent_node.append_child(child_node)
            stack.append((child_node, child_data))
    return node


def to_outline(node_or_document: Union[Node, Document], indent: str = "  ") -> str:
    """Human-readable indented outline, one node per line."""
    root = _root_of(node_or_document)
    lines: List[str] = []
    stack: List[tuple] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if node.label == "#text":
            text = " ".join(node.text.split())
            if not text:
                continue
            lines.append(f"{indent * depth}#text {text!r}")
        else:
            attributes = ""
            if node.attributes:
                attributes = " " + " ".join(
                    f'{key}="{value}"' for key, value in sorted(node.attributes.items())
                )
            lines.append(f"{indent * depth}<{node.label}{attributes}>")
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    return "\n".join(lines)


def _root_of(node_or_document: Union[Node, Document]) -> Node:
    if isinstance(node_or_document, Document):
        return node_or_document.root
    return node_or_document

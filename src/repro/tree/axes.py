"""Axis relations over unranked ordered trees.

Section 4 of the paper works with the axis relations

    Child, Child+, Child*, Nextsibling, Nextsibling+, Nextsibling*, Following

(and their inverses, as used by XPath).  This module provides

* per-node navigation functions (``child_nodes(node)``, ``following(node)``,
  ...), and
* an :class:`AxisIndex` that materialises document-order based indexes so
  descendant/following tests are O(1) and axis scans are output-sensitive.

Both the XPath and the conjunctive-query evaluators are built on top of
these primitives.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from .document import Document
from .node import Node

# ---------------------------------------------------------------------------
# Per-node axis generators (document order within each axis where applicable)
# ---------------------------------------------------------------------------


def self_axis(node: Node) -> Iterator[Node]:
    yield node


def child_nodes(node: Node) -> Iterator[Node]:
    return iter(node.children)


def parent_axis(node: Node) -> Iterator[Node]:
    if node.parent is not None:
        yield node.parent


def descendant(node: Node) -> Iterator[Node]:
    return node.iter_descendants()


def descendant_or_self(node: Node) -> Iterator[Node]:
    return node.iter_preorder()


def ancestor(node: Node) -> Iterator[Node]:
    return node.iter_ancestors()


def ancestor_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.iter_ancestors()


def next_sibling(node: Node) -> Iterator[Node]:
    sibling = node.next_sibling
    if sibling is not None:
        yield sibling


def previous_sibling(node: Node) -> Iterator[Node]:
    sibling = node.previous_sibling
    if sibling is not None:
        yield sibling


def following_sibling(node: Node) -> Iterator[Node]:
    return node.iter_following_siblings()


def following_sibling_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.iter_following_siblings()


def preceding_sibling(node: Node) -> Iterator[Node]:
    return node.iter_preceding_siblings()


def preceding_sibling_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.iter_preceding_siblings()


def following(node: Node) -> Iterator[Node]:
    """XPath ``following``: nodes after ``node`` in document order that are
    not descendants of it.

    Equivalently (as in the paper):
    Following(x, y) iff exists z1, z2 with Child*(z1, x), Nextsibling+(z1, z2)
    and Child*(z2, y).
    """
    for ancestor_or_self_node in ancestor_or_self(node):
        for sibling in ancestor_or_self_node.iter_following_siblings():
            yield from sibling.iter_preorder()


def preceding(node: Node) -> Iterator[Node]:
    """XPath ``preceding``: nodes before ``node`` that are not ancestors."""
    for ancestor_or_self_node in ancestor_or_self(node):
        for sibling in ancestor_or_self_node.iter_preceding_siblings():
            yield from sibling.iter_preorder()


def first_child(node: Node) -> Iterator[Node]:
    if node.children:
        yield node.children[0]


def last_child(node: Node) -> Iterator[Node]:
    if node.children:
        yield node.children[-1]


AXIS_FUNCTIONS: Dict[str, Callable[[Node], Iterator[Node]]] = {
    "self": self_axis,
    "child": child_nodes,
    "parent": parent_axis,
    "descendant": descendant,
    "descendant-or-self": descendant_or_self,
    "ancestor": ancestor,
    "ancestor-or-self": ancestor_or_self,
    "nextsibling": next_sibling,
    "previoussibling": previous_sibling,
    "following-sibling": following_sibling,
    "following-sibling-or-self": following_sibling_or_self,
    "preceding-sibling": preceding_sibling,
    "preceding-sibling-or-self": preceding_sibling_or_self,
    "following": following,
    "preceding": preceding,
    "firstchild": first_child,
    "lastchild": last_child,
}

# Names the conjunctive-query layer uses for binary axis relations.  Each maps
# to a predicate ``holds(x, y)``.
AXIS_RELATION_NAMES = (
    "child",
    "child+",
    "child*",
    "nextsibling",
    "nextsibling+",
    "nextsibling*",
    "following",
)


def axis_iterator(name: str) -> Callable[[Node], Iterator[Node]]:
    """Look up a per-node axis generator by (XPath-style) name."""
    try:
        return AXIS_FUNCTIONS[name]
    except KeyError:
        raise KeyError(f"unknown axis {name!r}") from None


# ---------------------------------------------------------------------------
# Pairwise axis predicates
# ---------------------------------------------------------------------------


def holds(relation: str, x: Node, y: Node) -> bool:
    """Decide whether the binary axis ``relation`` holds between x and y."""
    if relation == "child":
        return y.parent is x
    if relation == "firstchild":
        return bool(x.children) and x.children[0] is y
    if relation == "child+":
        return x.is_ancestor_of(y)
    if relation == "child*":
        return x is y or x.is_ancestor_of(y)
    if relation == "nextsibling":
        return x.next_sibling is y
    if relation == "nextsibling+":
        return (
            x.parent is not None
            and x.parent is y.parent
            and x.index_in_parent < y.index_in_parent
        )
    if relation == "nextsibling*":
        return x is y or holds("nextsibling+", x, y)
    if relation == "following":
        return (
            x.preorder_index < y.preorder_index
            and not x.is_ancestor_of(y)
        )
    raise KeyError(f"unknown axis relation {relation!r}")


class AxisIndex:
    """Materialised axis access for a fixed document.

    Provides successor sets as lists of nodes in document order and constant
    time membership tests based on preorder/postorder numbering.  The index
    itself is cheap: it stores only the document and derived per-label lists,
    all heavy relations are answered from the pre/post numbers maintained by
    :class:`~repro.tree.document.Document`.
    """

    def __init__(self, document: Document) -> None:
        self.document = document

    # -- successor enumeration -----------------------------------------
    def successors(self, relation: str, node: Node) -> List[Node]:
        if relation == "child":
            return list(node.children)
        if relation == "firstchild":
            return [node.children[0]] if node.children else []
        if relation == "child+":
            return list(node.iter_descendants())
        if relation == "child*":
            return list(node.iter_preorder())
        if relation == "nextsibling":
            sibling = node.next_sibling
            return [sibling] if sibling is not None else []
        if relation == "nextsibling+":
            return list(node.iter_following_siblings())
        if relation == "nextsibling*":
            return [node, *node.iter_following_siblings()]
        if relation == "following":
            return list(following(node))
        raise KeyError(f"unknown axis relation {relation!r}")

    def predecessors(self, relation: str, node: Node) -> List[Node]:
        if relation == "child":
            return [node.parent] if node.parent is not None else []
        if relation == "firstchild":
            if node.parent is not None and node.is_first_sibling:
                return [node.parent]
            return []
        if relation == "child+":
            return list(node.iter_ancestors())
        if relation == "child*":
            return [node, *node.iter_ancestors()]
        if relation == "nextsibling":
            sibling = node.previous_sibling
            return [sibling] if sibling is not None else []
        if relation == "nextsibling+":
            return list(node.iter_preceding_siblings())
        if relation == "nextsibling*":
            return [node, *node.iter_preceding_siblings()]
        if relation == "following":
            return list(preceding(node))
        raise KeyError(f"unknown axis relation {relation!r}")

    # -- membership ------------------------------------------------------
    def holds(self, relation: str, x: Node, y: Node) -> bool:
        return holds(relation, x, y)

    # -- whole-relation enumeration (used by the datalog grounding) ------
    def pairs(self, relation: str) -> Iterator[tuple]:
        for node in self.document:
            for successor in self.successors(relation, node):
                yield node, successor

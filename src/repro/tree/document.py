"""The :class:`Document` wrapper: an unranked ordered tree plus indexes.

A ``Document`` is the Python counterpart of the relational structure

    t_ur = <dom, root, leaf, (label_a), firstchild, nextsibling, lastsibling>

from Section 2.2 of the paper.  It owns a root :class:`~repro.tree.node.Node`
and maintains the document-order indexes needed for efficient axis
computation (preorder / postorder numbering, label index).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .node import Node


class Document:
    """An unranked ordered labelled tree with document-order indexes."""

    def __init__(self, root: Node, url: Optional[str] = None) -> None:
        if root.parent is not None:
            raise ValueError("document root must not have a parent")
        self.root = root
        self.url = url
        self._nodes: List[Node] = []
        self._by_label: Dict[str, List[Node]] = {}
        self.reindex()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def reindex(self) -> None:
        """(Re)compute document order and label indexes.

        Must be called after structural mutation of the tree.  Construction
        calls it automatically.
        """
        nodes: List[Node] = []
        by_label: Dict[str, List[Node]] = defaultdict(list)

        # Iterative pre/post numbering to avoid recursion limits on deep
        # documents.
        counter_pre = 0
        counter_post = 0
        stack: List[Tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                node._postorder = counter_post
                counter_post += 1
                continue
            node._preorder = counter_pre
            counter_pre += 1
            nodes.append(node)
            by_label[node.label].append(node)
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

        self._nodes = nodes
        self._by_label = dict(by_label)

    # ------------------------------------------------------------------
    # Domain and relations of tau_ur
    # ------------------------------------------------------------------
    @property
    def dom(self) -> List[Node]:
        """All nodes in document order."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def nodes_with_label(self, label: str) -> List[Node]:
        """All nodes carrying ``label``, in document order."""
        return list(self._by_label.get(label, ()))

    def labels(self) -> Set[str]:
        """The set of labels occurring in the document (the alphabet used)."""
        return set(self._by_label)

    def leaves(self) -> List[Node]:
        return [node for node in self._nodes if node.is_leaf]

    def last_siblings(self) -> List[Node]:
        return [node for node in self._nodes if node.is_last_sibling]

    # Binary relations, materialised as pair iterators -------------------
    def firstchild_pairs(self) -> Iterator[Tuple[Node, Node]]:
        for node in self._nodes:
            if node.children:
                yield node, node.children[0]

    def nextsibling_pairs(self) -> Iterator[Tuple[Node, Node]]:
        for node in self._nodes:
            for left, right in zip(node.children, node.children[1:]):
                yield left, right

    def child_pairs(self) -> Iterator[Tuple[Node, Node]]:
        for node in self._nodes:
            for child in node.children:
                yield node, child

    # ------------------------------------------------------------------
    # Document order
    # ------------------------------------------------------------------
    def document_order(self, node: Node) -> int:
        """The position of ``node`` in document order (its preorder index)."""
        return node.preorder_index

    def precedes(self, first: Node, second: Node) -> bool:
        """The document order relation  first < second."""
        return first.preorder_index < second.preorder_index

    def node_at(self, preorder_index: int) -> Node:
        return self._nodes[preorder_index]

    # ------------------------------------------------------------------
    # Queries used throughout the code base
    # ------------------------------------------------------------------
    def find_all(self, label: str) -> List[Node]:
        return self.nodes_with_label(label)

    def find_first(self, label: str) -> Optional[Node]:
        nodes = self._by_label.get(label)
        return nodes[0] if nodes else None

    def element_count(self) -> int:
        """Number of non-text, non-comment nodes."""
        return sum(
            1
            for node in self._nodes
            if node.label not in ("#text", "#comment")
        )

    def text_content(self) -> str:
        return self.root.text_content()

    # ------------------------------------------------------------------
    # Statistics / debugging
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """The maximum depth of any node."""
        best = 0
        depths: Dict[int, int] = {self.root.preorder_index: 0}
        for node in self._nodes[1:]:
            depth = depths[node.parent.preorder_index] + 1
            depths[node.preorder_index] = depth
            if depth > best:
                best = depth
        return best

    def label_histogram(self) -> Dict[str, int]:
        return {label: len(nodes) for label, nodes in self._by_label.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(nodes={len(self._nodes)}, root=<{self.root.label}>)"


def document_from_nodes(root: Node, url: Optional[str] = None) -> Document:
    """Build a :class:`Document` from an already-assembled node tree."""
    return Document(root, url=url)


def common_ancestor(first: Node, second: Node) -> Optional[Node]:
    """The lowest common ancestor of two nodes of the same tree."""
    ancestors_of_first = set(id(node) for node in first.path_from_root())
    for node in [second, *second.iter_ancestors()]:
        if id(node) in ancestors_of_first:
            return node
    return None


def nodes_between(document: Document, start: Node, end: Node) -> List[Node]:
    """All nodes strictly between ``start`` and ``end`` in document order."""
    low = min(start.preorder_index, end.preorder_index)
    high = max(start.preorder_index, end.preorder_index)
    return [document.node_at(index) for index in range(low + 1, high)]


def subtree_nodes(node: Node) -> List[Node]:
    """The nodes of the subtree rooted at ``node`` in document order."""
    return list(node.iter_preorder())


def assert_same_document(document: Document, nodes: Iterable[Node]) -> None:
    """Raise ``ValueError`` if any node does not belong to ``document``."""
    size = len(document)
    for node in nodes:
        index = node.preorder_index
        if index < 0 or index >= size or document.node_at(index) is not node:
            raise ValueError(f"node {node!r} does not belong to {document!r}")

"""Conjunctive queries over trees and the [18] tractability dichotomy."""

from .acyclic import evaluate_acyclic, is_acyclic
from .ast import (
    CQ_AXES,
    TRACTABLE_AXIS_CLASSES,
    AxisAtom,
    ConjunctiveQuery,
    LabelAtom,
    query,
)
from .classify import Classification, classify, classify_axes, tractable_classes
from .evaluator import (
    CQEvaluationError,
    boolean_answer,
    evaluate_backtracking,
    evaluate_filtered,
    unary_answers,
)
from .to_xpath import CQToXPathError, to_positive_core_xpath

__all__ = [
    "AxisAtom",
    "CQEvaluationError",
    "CQToXPathError",
    "CQ_AXES",
    "Classification",
    "ConjunctiveQuery",
    "LabelAtom",
    "TRACTABLE_AXIS_CLASSES",
    "boolean_answer",
    "classify",
    "classify_axes",
    "evaluate_acyclic",
    "evaluate_backtracking",
    "evaluate_filtered",
    "is_acyclic",
    "query",
    "to_positive_core_xpath",
    "tractable_classes",
    "unary_answers",
]

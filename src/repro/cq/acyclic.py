"""Acyclic conjunctive queries: GYO recognition and Yannakakis evaluation.

The paper (Section 4) recalls that *acyclic* conjunctive queries over
arbitrary axes can be evaluated in linear time [14].  For the binary-atom
queries used here, acyclicity of the hypergraph coincides with the axis-atom
graph being a forest; Yannakakis' algorithm then evaluates the query with two
semijoin passes over a join tree followed by an answer-collection pass —
polynomial combined complexity, no exponential search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..tree.axes import holds
from ..tree.document import Document
from ..tree.node import Node
from .ast import AxisAtom, ConjunctiveQuery
from .evaluator import AnswerTuple, CQEvaluationError, _initial_domains


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """True iff the axis-atom multigraph on the variables is a forest."""
    adjacency = query.adjacency()
    seen: Set[str] = set()
    for start in query.variables():
        if start in seen:
            continue
        # BFS detecting any cycle (including multi-edges).
        seen.add(start)
        frontier: List[Tuple[str, Optional[int]]] = [(start, None)]
        edge_count = 0
        component = {start}
        while frontier:
            variable, incoming_edge = frontier.pop()
            for neighbour, atom in adjacency[variable]:
                edge_count += 1
                if neighbour not in component:
                    component.add(neighbour)
                    seen.add(neighbour)
                    frontier.append((neighbour, id(atom)))
        # each undirected edge counted twice
        if edge_count // 2 != len(component) - 1:
            return False
    return True


def evaluate_acyclic(
    query: ConjunctiveQuery, document: Document
) -> Set[AnswerTuple]:
    """Yannakakis-style evaluation of an acyclic query.

    Requires an acyclic query whose free variables (if any) induce a connected
    prefix of the join tree; for the unary queries used throughout the paper
    (a single free variable) this always holds.
    """
    if not is_acyclic(query):
        raise CQEvaluationError("query is cyclic; use the generic evaluator")
    domains = _initial_domains(query, document)
    adjacency = query.adjacency()
    variables = sorted(query.variables())
    if not variables:
        return {()}

    # Build a rooted spanning forest; root components at a free variable when
    # possible so answer collection starts there.
    roots: List[str] = []
    parent: Dict[str, Optional[Tuple[str, AxisAtom]]] = {}
    order: List[str] = []
    visited: Set[str] = set()
    preferred = [v for v in query.free_variables if v in adjacency] + variables
    for candidate in preferred:
        if candidate in visited:
            continue
        roots.append(candidate)
        visited.add(candidate)
        parent[candidate] = None
        frontier = [candidate]
        while frontier:
            variable = frontier.pop()
            order.append(variable)
            for neighbour, atom in adjacency[variable]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    parent[neighbour] = (variable, atom)
                    frontier.append(neighbour)

    candidate_sets: Dict[str, List[Node]] = {v: list(domains[v]) for v in variables}

    # Bottom-up semijoin pass: a value for a variable survives iff every child
    # variable in the join tree has a compatible value.
    children: Dict[str, List[Tuple[str, AxisAtom]]] = {v: [] for v in variables}
    for variable, info in parent.items():
        if info is not None:
            children[info[0]].append((variable, info[1]))
    for variable in reversed(order):
        for child_variable, atom in children[variable]:
            child_values = candidate_sets[child_variable]
            surviving = []
            for value in candidate_sets[variable]:
                ok = False
                for child_value in child_values:
                    s = value if atom.source == variable else child_value
                    t = value if atom.target == variable else child_value
                    if holds(atom.relation, s, t):
                        ok = True
                        break
                if ok:
                    surviving.append(value)
            candidate_sets[variable] = surviving

    # Top-down pass: restrict children to values compatible with a surviving
    # parent value.
    for variable in order:
        for child_variable, atom in children[variable]:
            surviving = []
            for child_value in candidate_sets[child_variable]:
                ok = False
                for value in candidate_sets[variable]:
                    s = value if atom.source == variable else child_value
                    t = value if atom.target == variable else child_value
                    if holds(atom.relation, s, t):
                        ok = True
                        break
                if ok:
                    surviving.append(child_value)
            candidate_sets[child_variable] = surviving

    if any(not candidate_sets[v] for v in variables):
        return set()

    # Answer collection.  For Boolean queries we are done; for queries whose
    # free variables all lie in distinct components or a single variable, the
    # filtered candidate sets are exact.  The general case enumerates
    # assignments over the (already strongly filtered) join tree.
    free = query.free_variables
    if not free:
        return {()}
    if len(free) == 1:
        return {(node.preorder_index,) for node in candidate_sets[free[0]]}
    # General case: backtrack over the filtered domains (still far smaller
    # than the unfiltered search space).
    from .evaluator import _answers

    return _answers(query, document, candidate_sets)

"""Evaluation of conjunctive queries over trees.

Three evaluation strategies are provided:

* :func:`evaluate_backtracking` — the generic strategy: candidate domains per
  variable, then depth-first search over assignments.  Worst-case exponential
  in the number of variables — the right baseline for the NP-hard side of the
  dichotomy.
* :func:`evaluate_filtered` — the same search but preceded by a pairwise
  (arc-) consistency fixpoint that prunes candidate domains.  On the
  tractable axis classes of [18] the pruning keeps the search essentially
  backtrack-free in practice, which is what benchmark E10 visualises.  The
  answers are always identical to the generic strategy (only the order of
  work changes).
* :mod:`repro.cq.acyclic` — Yannakakis' algorithm for acyclic queries
  (polynomial; see that module).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..tree.axes import holds
from ..tree.document import Document
from ..tree.node import Node
from .ast import AxisAtom, ConjunctiveQuery

Assignment = Dict[str, Node]
AnswerTuple = Tuple[int, ...]


class CQEvaluationError(ValueError):
    """Raised for queries the chosen strategy cannot handle."""


def _initial_domains(query: ConjunctiveQuery, document: Document) -> Dict[str, List[Node]]:
    domains: Dict[str, List[Node]] = {}
    for variable in query.variables():
        labels = query.labels_for(variable)
        if labels:
            candidates: Optional[Set[int]] = None
            for label in labels:
                indexes = {node.preorder_index for node in document.nodes_with_label(label)}
                candidates = indexes if candidates is None else candidates & indexes
            domains[variable] = [document.node_at(i) for i in sorted(candidates or set())]
        else:
            domains[variable] = list(document.dom)
    return domains


def _atoms_by_variable(query: ConjunctiveQuery) -> Dict[str, List[AxisAtom]]:
    result: Dict[str, List[AxisAtom]] = {v: [] for v in query.variables()}
    for atom in query.axis_atoms:
        result[atom.source].append(atom)
        result[atom.target].append(atom)
    return result


def _answers(
    query: ConjunctiveQuery,
    document: Document,
    domains: Dict[str, List[Node]],
    count_steps: Optional[List[int]] = None,
) -> Set[AnswerTuple]:
    """Depth-first search over variable assignments (generic join)."""
    variables = sorted(query.variables(), key=lambda v: len(domains[v]))
    atoms_by_variable = _atoms_by_variable(query)
    answers: Set[AnswerTuple] = set()
    assignment: Assignment = {}

    def consistent(variable: str, node: Node) -> bool:
        for atom in atoms_by_variable[variable]:
            other = atom.target if atom.source == variable else atom.source
            if other not in assignment:
                continue
            source = node if atom.source == variable else assignment[atom.source]
            target = node if atom.target == variable else assignment[atom.target]
            if not holds(atom.relation, source, target):
                return False
        return True

    def search(position: int) -> None:
        if position == len(variables):
            answers.add(
                tuple(assignment[v].preorder_index for v in query.free_variables)
            )
            return
        variable = variables[position]
        for node in domains[variable]:
            if count_steps is not None:
                count_steps[0] += 1
            if consistent(variable, node):
                assignment[variable] = node
                search(position + 1)
                del assignment[variable]

    if all(domains[v] for v in variables):
        search(0)
    elif not variables:
        answers.add(())
    return answers


def evaluate_backtracking(
    query: ConjunctiveQuery, document: Document, count_steps: Optional[List[int]] = None
) -> Set[AnswerTuple]:
    """Generic join evaluation (exponential worst case)."""
    domains = _initial_domains(query, document)
    return _answers(query, document, domains, count_steps=count_steps)


def prune_pairwise(
    query: ConjunctiveQuery, document: Document, domains: Dict[str, List[Node]]
) -> Dict[str, List[Node]]:
    """Arc-consistency fixpoint: remove values with no support on some atom."""
    changed = True
    domain_sets: Dict[str, List[Node]] = {v: list(nodes) for v, nodes in domains.items()}
    while changed:
        changed = False
        for atom in query.axis_atoms:
            source_domain = domain_sets[atom.source]
            target_domain = domain_sets[atom.target]
            supported_sources = [
                s for s in source_domain
                if any(holds(atom.relation, s, t) for t in target_domain)
            ]
            if len(supported_sources) != len(source_domain):
                domain_sets[atom.source] = supported_sources
                changed = True
            supported_targets = [
                t for t in target_domain
                if any(holds(atom.relation, s, t) for s in domain_sets[atom.source])
            ]
            if len(supported_targets) != len(target_domain):
                domain_sets[atom.target] = supported_targets
                changed = True
    return domain_sets


def evaluate_filtered(
    query: ConjunctiveQuery, document: Document, count_steps: Optional[List[int]] = None
) -> Set[AnswerTuple]:
    """Pairwise-consistency pruning followed by search.

    Produces exactly the same answers as :func:`evaluate_backtracking`; on
    tree-shaped queries and on the tractable axis classes the pruning makes
    the subsequent search (near-)backtrack-free.
    """
    domains = _initial_domains(query, document)
    domains = prune_pairwise(query, document, domains)
    return _answers(query, document, domains, count_steps=count_steps)


def unary_answers(query: ConjunctiveQuery, document: Document) -> List[Node]:
    """Convenience wrapper for unary queries: answers as nodes in doc order."""
    if len(query.free_variables) != 1:
        raise CQEvaluationError("unary_answers requires exactly one free variable")
    answers = evaluate_filtered(query, document)
    return [document.node_at(index) for (index,) in sorted(answers)]


def boolean_answer(query: ConjunctiveQuery, document: Document) -> bool:
    """Truth value of a Boolean conjunctive query."""
    if query.free_variables:
        raise CQEvaluationError("boolean_answer requires a query without free variables")
    return bool(evaluate_filtered(query, document))

"""Translating conjunctive queries into positive Core XPath (Corollary 4.5).

Corollary 4.5 of the paper: for every conjunctive query over trees there is
an equivalent positive Core XPath query (although no polynomial translation
exists in general).  This module implements the constructive case that covers
the tree-shaped (acyclic, connected) queries with one free variable — the
shape produced by wrappers and by the benchmark workload generators: the join
tree is rooted at the free variable and every subtree becomes a nested
predicate; axis atoms map to XPath axes (downward or upward depending on the
orientation of the edge relative to the root).

Cyclic queries would require the (exponential) general construction of [18]
and are rejected with :class:`CQToXPathError`.
"""

from __future__ import annotations

from typing import List, Optional

from ..xpath.ast import Condition, LocationPath, NodeTest, PathExists, Step
from .ast import AxisAtom, ConjunctiveQuery

# Axis atom -> (forward XPath axis, inverse XPath axis)
_AXIS_TO_XPATH = {
    "child": ("child", "parent"),
    "child+": ("descendant", "ancestor"),
    "child*": ("descendant-or-self", "ancestor-or-self"),
    "nextsibling+": ("following-sibling", "preceding-sibling"),
    "following": ("following", "preceding"),
}


class CQToXPathError(ValueError):
    """Raised when the constructive translation does not apply."""


def to_positive_core_xpath(query: ConjunctiveQuery) -> LocationPath:
    """Translate a tree-shaped unary conjunctive query into Core XPath.

    The result is an absolute query of the form
    ``//<test of the free variable>[...nested predicates...]`` whose answers
    coincide with the query's answers on every document.
    """
    if len(query.free_variables) != 1:
        raise CQToXPathError("translation requires exactly one free variable")
    if not query.is_tree_shaped():
        raise CQToXPathError(
            "translation implemented for tree-shaped (acyclic, connected) queries; "
            "cyclic queries need the exponential general construction"
        )
    unsupported = query.axis_relations() - set(_AXIS_TO_XPATH)
    if unsupported:
        raise CQToXPathError(
            f"axis relations {sorted(unsupported)} have no direct Core XPath axis; "
            "supported: " + ", ".join(sorted(_AXIS_TO_XPATH))
        )

    root_variable = query.free_variables[0]
    adjacency = query.adjacency()

    def subtree_condition(variable: str, via: Optional[AxisAtom], parent_var: str) -> Condition:
        """The predicate expressing the subtree of the join tree rooted at
        ``variable`` reached from ``parent_var`` via ``via``."""
        step = Step(
            _axis_name(via, source=parent_var, target=variable),
            _node_test(query, variable),
            tuple(_child_conditions(variable, via)),
        )
        return PathExists(LocationPath((step,), absolute=False))

    def _child_conditions(variable: str, incoming: Optional[AxisAtom]) -> List[Condition]:
        conditions: List[Condition] = []
        for neighbour, atom in adjacency[variable]:
            if atom is incoming:
                continue
            conditions.append(subtree_condition(neighbour, atom, variable))
        return conditions

    root_step = Step(
        "descendant-or-self",
        _node_test(query, root_variable),
        tuple(_child_conditions(root_variable, None)),
    )
    return LocationPath(
        (Step("descendant-or-self", NodeTest("any")), root_step), absolute=True
    )


def _axis_name(atom: Optional[AxisAtom], source: str, target: str) -> str:
    assert atom is not None
    forward, inverse = _AXIS_TO_XPATH[atom.relation]
    if atom.source == source and atom.target == target:
        return forward
    return inverse


def _node_test(query: ConjunctiveQuery, variable: str) -> NodeTest:
    labels = query.labels_for(variable)
    if not labels:
        return NodeTest("any")
    if len(set(labels)) > 1:
        # two different labels on one variable: unsatisfiable; encode with a
        # label that cannot match (XPath has no "false" node test).
        return NodeTest("name", "__unsatisfiable__")
    return NodeTest("name", labels[0])

"""The tractability dichotomy for conjunctive queries over trees.

As summarised in Section 4 of the paper (full treatment in [18]): a class of
conjunctive queries over unary relations plus a set F of axis relations is
polynomial iff F is contained in one of the subset-maximal classes

    {child+, child*},
    {child, nextsibling, nextsibling+, nextsibling*},
    {following}

and NP-complete otherwise.  :func:`classify` reports which side of the
dichotomy the axis set of a concrete query falls on.  Note that the
*individual query* may still be easy (e.g. when acyclic); the classification
is about the query class CQ[F].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Union

from .acyclic import is_acyclic
from .ast import CQ_AXES, TRACTABLE_AXIS_CLASSES, ConjunctiveQuery


@dataclass(frozen=True)
class Classification:
    """The dichotomy verdict for an axis set / query."""

    axis_set: FrozenSet[str]
    tractable: bool
    witness_class: Optional[FrozenSet[str]]
    acyclic: Optional[bool] = None

    @property
    def complexity(self) -> str:
        return "PTIME" if self.tractable else "NP-complete"

    def __str__(self) -> str:
        axes = ", ".join(sorted(self.axis_set)) or "(no axes)"
        return f"CQ[{axes}]: {self.complexity}"


def classify_axes(axes: Iterable[str]) -> Classification:
    """Classify a set of axis relation names."""
    axis_set = frozenset(axes)
    unknown = axis_set - set(CQ_AXES)
    if unknown:
        raise ValueError(f"unknown axis relations: {sorted(unknown)}")
    for tractable_class in TRACTABLE_AXIS_CLASSES:
        if axis_set <= tractable_class:
            return Classification(axis_set, True, tractable_class)
    return Classification(axis_set, False, None)


def classify(query_or_axes: Union[ConjunctiveQuery, Iterable[str]]) -> Classification:
    """Classify a query (by its axis set) or an explicit axis set."""
    if isinstance(query_or_axes, ConjunctiveQuery):
        verdict = classify_axes(query_or_axes.axis_relations())
        return Classification(
            verdict.axis_set,
            verdict.tractable,
            verdict.witness_class,
            acyclic=is_acyclic(query_or_axes),
        )
    return classify_axes(query_or_axes)


def tractable_classes() -> tuple:
    """The subset-maximal polynomial axis classes (as in the paper)."""
    return TRACTABLE_AXIS_CLASSES

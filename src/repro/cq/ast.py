"""Conjunctive queries over trees.

Section 4 of the paper discusses the complexity of conjunctive queries whose
binary relations are the tree axes

    Child, Child+, Child*, Nextsibling, Nextsibling+, Nextsibling*, Following

together with unary (label) relations.  [18] (PODS'04, same proceedings)
establishes the dichotomy: a class CQ[F] is polynomial iff F is contained in
one of

    {child+, child*},
    {child, nextsibling, nextsibling+, nextsibling*},
    {following}

and NP-complete otherwise.

This module defines the query representation; evaluation lives in
:mod:`repro.cq.evaluator` (generic), :mod:`repro.cq.acyclic` (Yannakakis) and
:mod:`repro.cq.classify` (the dichotomy classifier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

# The axis relations of the CQ setting (see repro.tree.axes.holds).
CQ_AXES = (
    "child",
    "child+",
    "child*",
    "nextsibling",
    "nextsibling+",
    "nextsibling*",
    "following",
)

# The subset-maximal polynomial axis classes of [18].
TRACTABLE_AXIS_CLASSES: Tuple[FrozenSet[str], ...] = (
    frozenset({"child+", "child*"}),
    frozenset({"child", "nextsibling", "nextsibling+", "nextsibling*"}),
    frozenset({"following"}),
)


@dataclass(frozen=True)
class LabelAtom:
    """A unary atom  label(variable)  constraining the variable's node label."""

    variable: str
    label: str

    def __str__(self) -> str:
        return f"label_{self.label}({self.variable})"


@dataclass(frozen=True)
class AxisAtom:
    """A binary atom  relation(source, target)  over one of the CQ axes."""

    relation: str
    source: str
    target: str

    def __post_init__(self) -> None:
        if self.relation not in CQ_AXES:
            raise ValueError(
                f"unknown axis relation {self.relation!r}; expected one of {CQ_AXES}"
            )

    def __str__(self) -> str:
        return f"{self.relation}({self.source}, {self.target})"


@dataclass
class ConjunctiveQuery:
    """A conjunctive query over trees.

    ``free_variables`` lists the output variables (none = Boolean query, one
    = unary query, etc.).
    """

    label_atoms: List[LabelAtom] = field(default_factory=list)
    axis_atoms: List[AxisAtom] = field(default_factory=list)
    free_variables: Tuple[str, ...] = ()

    # -- construction helpers --------------------------------------------
    def add_label(self, variable: str, label: str) -> "ConjunctiveQuery":
        self.label_atoms.append(LabelAtom(variable, label))
        return self

    def add_axis(self, relation: str, source: str, target: str) -> "ConjunctiveQuery":
        self.axis_atoms.append(AxisAtom(relation, source, target))
        return self

    # -- structure -----------------------------------------------------------
    def variables(self) -> Set[str]:
        result: Set[str] = set(self.free_variables)
        for atom in self.label_atoms:
            result.add(atom.variable)
        for atom in self.axis_atoms:
            result.add(atom.source)
            result.add(atom.target)
        return result

    def axis_relations(self) -> Set[str]:
        return {atom.relation for atom in self.axis_atoms}

    def labels_for(self, variable: str) -> List[str]:
        return [atom.label for atom in self.label_atoms if atom.variable == variable]

    def size(self) -> int:
        return len(self.label_atoms) + len(self.axis_atoms)

    def is_boolean(self) -> bool:
        return not self.free_variables

    def adjacency(self) -> Dict[str, List[Tuple[str, AxisAtom]]]:
        """Variable adjacency induced by the axis atoms (undirected view)."""
        result: Dict[str, List[Tuple[str, AxisAtom]]] = {v: [] for v in self.variables()}
        for atom in self.axis_atoms:
            result[atom.source].append((atom.target, atom))
            result[atom.target].append((atom.source, atom))
        return result

    def is_connected(self) -> bool:
        variables = self.variables()
        if not variables:
            return True
        adjacency = self.adjacency()
        start = next(iter(variables))
        seen = {start}
        frontier = [start]
        while frontier:
            variable = frontier.pop()
            for neighbour, _ in adjacency[variable]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == variables

    def is_tree_shaped(self) -> bool:
        """True iff the axis-atom graph is connected and acyclic (a join tree)."""
        variables = self.variables()
        return self.is_connected() and len(self.axis_atoms) == max(len(variables) - 1, 0)

    def __str__(self) -> str:
        head = f"q({', '.join(self.free_variables)})"
        body = ", ".join(
            [str(atom) for atom in self.label_atoms] + [str(atom) for atom in self.axis_atoms]
        )
        return f"{head} :- {body}."


def query(
    free: Sequence[str] = (),
    labels: Sequence[Tuple[str, str]] = (),
    axes: Sequence[Tuple[str, str, str]] = (),
) -> ConjunctiveQuery:
    """Compact constructor used by tests and benchmarks.

    ``labels`` is a sequence of (variable, label) pairs and ``axes`` a
    sequence of (relation, source, target) triples.
    """
    result = ConjunctiveQuery(free_variables=tuple(free))
    for variable, label in labels:
        result.add_label(variable, label)
    for relation, source, target in axes:
        result.add_axis(relation, source, target)
    return result

"""Static checks over Elog wrapper programs: the ``E0xx`` rules.

An Elog wrapper fails quietly: a pattern whose parent chain never reaches
the document root simply extracts nothing, a misspelled pattern reference
parses as a condition that never holds, an unregistered concept never
accepts a value.  These checks surface those silent failure modes before
the extractor runs.  See docs/ANALYSIS.md for one example per rule.
"""

from __future__ import annotations

import difflib
import re
from typing import Dict, List, Optional, Set, Tuple

from ..datalog.ast import Span, get_span
from ..elog.ast import (
    ROOT_PATTERN,
    ComparisonCondition,
    ConceptCondition,
    ElogProgram,
    ElogRule,
    PatternReference,
)
from ..elog.concepts import DEFAULT_CONCEPTS, ConceptRegistry
from .diagnostics import ERROR, WARNING, Diagnostic

#: Condition arguments that look like this are variables; anything else
#: (quoted strings, numbers, paths) is a literal and needs no binding.
_VARIABLE_PATTERN = re.compile(r"^[A-Z_][A-Za-z0-9_]*$")

#: ``\var[Y]`` markers inside element/text paths capture matched text into
#: ``Y`` (the ``regvar`` mechanism of Figure 5's ``price`` rule).
_VAR_MARKER_PATTERN = re.compile(r"\\var\[([A-Za-z_][A-Za-z0-9_]*)\]")


def _span(rule: ElogRule) -> Optional[Span]:
    return get_span(rule)


def _is_variable(argument: str) -> bool:
    return bool(_VARIABLE_PATTERN.match(argument)) and argument != "_"


def check_elog_program(
    program: ElogProgram,
    *,
    concepts: Optional[ConceptRegistry] = None,
) -> List[Diagnostic]:
    """All ``E0xx`` diagnostics for ``program``, in rule-id order.

    ``concepts`` is the registry the extractor will run with (defaults to
    :data:`~repro.elog.concepts.DEFAULT_CONCEPTS`); E005 checks concept
    atoms against it.
    """
    registry = concepts if concepts is not None else DEFAULT_CONCEPTS
    diagnostics: List[Diagnostic] = []
    defined = set(program.patterns())
    diagnostics.extend(_check_parents(program, defined))
    diagnostics.extend(_check_dead_patterns(program, defined))
    diagnostics.extend(_check_pattern_references(program, defined))
    diagnostics.extend(_check_condition_variables(program))
    diagnostics.extend(_check_concepts(program, registry))
    diagnostics.extend(_check_duplicates(program))
    diagnostics.sort(key=lambda d: (d.rule_id, d.span.line if d.span else 0))
    return diagnostics


def _check_parents(program: ElogProgram, defined: Set[str]) -> List[Diagnostic]:
    """E001: a rule hangs off a parent pattern no rule defines."""
    diagnostics: List[Diagnostic] = []
    known = sorted(defined | {ROOT_PATTERN})
    for rule in program.rules:
        if rule.is_document_rule():
            continue
        parent = rule.parent
        if parent in defined or parent == ROOT_PATTERN:
            continue
        suggestions = difflib.get_close_matches(parent, known, n=1)
        hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
        diagnostics.append(
            Diagnostic(
                "E001",
                ERROR,
                f"rule for pattern {rule.pattern!r} references undefined "
                f"parent pattern {parent!r}{hint}",
                span=_span(rule),
                subject=rule.pattern,
            )
        )
    return diagnostics


def _check_dead_patterns(
    program: ElogProgram, defined: Set[str]
) -> List[Diagnostic]:
    """E002: patterns whose parent chain never reaches the document root.

    The pattern-instance base is built top-down (Section 3.1): a pattern
    with no grounded ancestor chain extracts nothing, silently.
    """
    grounded: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if rule.pattern in grounded:
                continue
            if (
                rule.is_document_rule()
                or rule.parent == ROOT_PATTERN
                or rule.parent in grounded
            ):
                grounded.add(rule.pattern)
                changed = True
    diagnostics: List[Diagnostic] = []
    for pattern in program.patterns():
        if pattern in grounded:
            continue
        witness = program.rules_for(pattern)[0]
        diagnostics.append(
            Diagnostic(
                "E002",
                ERROR,
                f"pattern {pattern!r} is dead: no chain of parent patterns "
                "connects it to the document root, so it can never extract "
                "an instance",
                span=_span(witness),
                subject=pattern,
            )
        )
    return diagnostics


def _check_pattern_references(
    program: ElogProgram, defined: Set[str]
) -> List[Diagnostic]:
    """E003: a condition joins against a pattern no rule defines."""
    diagnostics: List[Diagnostic] = []
    known = sorted(defined | {ROOT_PATTERN})
    for rule in program.rules:
        for condition in rule.conditions:
            if not isinstance(condition, PatternReference):
                continue
            referenced = condition.pattern
            if referenced in defined or referenced == ROOT_PATTERN:
                continue
            suggestions = difflib.get_close_matches(referenced, known, n=1)
            hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            polarity = "never holds" if not condition.negated else "always holds"
            diagnostics.append(
                Diagnostic(
                    "E003",
                    ERROR,
                    f"condition {condition} in the rule for {rule.pattern!r} "
                    f"references undefined pattern {referenced!r} and thus "
                    f"{polarity}{hint}",
                    span=_span(rule),
                    subject=referenced,
                )
            )
    return diagnostics


def _bound_variables(rule: ElogRule) -> Set[str]:
    """Variables a rule binds: head variables, the extraction target,
    condition ``bind`` slots, positive pattern-reference arguments, and
    ``\\var[...]`` capture markers inside element/text paths."""
    bound = {"S", "X"}
    if rule.extraction is not None:
        target = getattr(rule.extraction, "target", None)
        if target:
            bound.add(target)
    for condition in rule.conditions:
        bind = getattr(condition, "bind", None)
        if bind:
            bound.add(bind)
        if isinstance(condition, PatternReference) and not condition.negated:
            if _is_variable(condition.argument):
                bound.add(condition.argument)
    bound.update(_VAR_MARKER_PATTERN.findall(str(rule)))
    return bound


def _check_condition_variables(program: ElogProgram) -> List[Diagnostic]:
    """E004: a test-only condition uses a variable nothing binds."""
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        bound = _bound_variables(rule)
        unbound: List[Tuple[str, object]] = []
        for condition in rule.conditions:
            if isinstance(condition, ConceptCondition):
                arguments = [condition.argument]
            elif isinstance(condition, ComparisonCondition):
                arguments = [condition.left, condition.right]
            elif isinstance(condition, PatternReference) and condition.negated:
                arguments = [condition.argument]
            else:
                continue
            for argument in arguments:
                if _is_variable(argument) and argument not in bound:
                    unbound.append((argument, condition))
        for variable, condition in unbound:
            diagnostics.append(
                Diagnostic(
                    "E004",
                    ERROR,
                    f"condition {condition} in the rule for {rule.pattern!r} "
                    f"tests variable {variable!r}, which no extraction atom, "
                    "bind slot or pattern reference in the rule binds",
                    span=_span(rule),
                    subject=variable,
                )
            )
    return diagnostics


def _check_concepts(
    program: ElogProgram, registry: ConceptRegistry
) -> List[Diagnostic]:
    """E005: a concept atom over a name the registry does not know."""
    diagnostics: List[Diagnostic] = []
    known = sorted(registry.names())
    for rule in program.rules:
        for condition in rule.conditions:
            if not isinstance(condition, ConceptCondition):
                continue
            if registry.has(condition.concept):
                continue
            suggestions = difflib.get_close_matches(condition.concept, known, n=1)
            hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            diagnostics.append(
                Diagnostic(
                    "E005",
                    ERROR,
                    f"concept {condition.concept!r} in the rule for "
                    f"{rule.pattern!r} is not registered in the concept "
                    f"registry, so the condition can never accept a "
                    f"value{hint}",
                    span=_span(rule),
                    subject=condition.concept,
                )
            )
    return diagnostics


def _check_duplicates(program: ElogProgram) -> List[Diagnostic]:
    """E006: textually identical pattern rules (output-neutral, so a slip)."""
    seen: Dict[str, ElogRule] = {}
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        key = str(rule)
        if key in seen:
            diagnostics.append(
                Diagnostic(
                    "E006",
                    WARNING,
                    f"duplicate rule for pattern {rule.pattern!r}: {rule}",
                    span=_span(rule),
                    subject=rule.pattern,
                )
            )
        else:
            seen[key] = rule
    return diagnostics

"""Diagnostic records: the uniform currency of the static analyzer.

Every check in :mod:`repro.analysis` reports :class:`Diagnostic` records —
a stable rule id (``D001`` … for datalog, ``E001`` … for Elog), a severity,
a human message, and (when the program was parsed from text) the source
:class:`~repro.datalog.ast.Span` of the offending rule.  A whole analysis
run is an :class:`AnalysisReport`: an ordered, immutable collection with
severity filters, a human rendering and a JSON view for tooling.

Severity policy (shared by :class:`repro.api.Session` and the CLI):

* ``error`` — the program cannot mean what its author wrote: it will be
  rejected at compile time (unsafe rule, negative cycle, arity clash) or
  silently compute nothing (a body atom no rule or EDB relation can ever
  derive).
* ``warning`` — legal but suspicious: singleton variables, cartesian
  joins, dead rules/patterns.
* ``info`` — explanations, chiefly the fragment classification ("this
  program is monadic and TMNF-rewritable, hence linear-time over trees").

``EngineOptions.on_diagnostics`` decides what evaluation does about
error-severity findings: ``"warn"`` (default) emits a
:class:`DiagnosticWarning`, ``"strict"`` raises :class:`AnalysisError`,
``"ignore"`` skips analysis entirely.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..datalog.ast import Span

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Rendering / sorting order of severities, most severe first.
SEVERITIES = (ERROR, WARNING, INFO)

#: The rule catalog: every diagnostic the analyzer can emit, one line each.
#: docs/ANALYSIS.md documents each with a triggering example.
RULE_CATALOG: Dict[str, str] = {
    "D000": "datalog syntax error",
    "D001": "unsafe rule (head or negated variable unbound by the positive body)",
    "D002": "program is not stratifiable (negation on a dependency cycle)",
    "D003": "predicate used with inconsistent arities",
    "D004": "body atom over a predicate no rule or EDB relation can derive",
    "D005": "singleton variable (occurs exactly once in its rule)",
    "D006": "cartesian-product join (body atoms share no variables)",
    "D007": "dead rule (predicate unreachable from any query predicate)",
    "D008": "fragment classification (monadic / TMNF / linear-time verdict)",
    "D009": "duplicate rule",
    "D010": "rule head redefines an extensional (EDB) predicate",
    "E000": "Elog syntax error",
    "E001": "rule references an undefined parent pattern",
    "E002": "dead pattern (no parent chain reaches the document root)",
    "E003": "condition references an undefined pattern",
    "E004": "condition over a variable the rule never binds",
    "E005": "unknown concept predicate (not registered in the concept registry)",
    "E006": "duplicate pattern rule",
    # P-series: performance findings from the adornment/cost analysis
    # (repro/analysis/dataflow.py + cost.py).  Never error severity: they
    # predict latency, not wrongness, so error-only gates stay green.
    "P001": "estimated cartesian blowup (join cost estimate exceeds budget)",
    "P002": "non-linear recursion a linear Theorem-2.4 style rewrite could serve",
    "P003": "index advice (bound-position keys the compiled plans will probe)",
    "P004": "query-unreachable IDB computation (derivable but never demanded)",
    "P005": "join step left completely unbound by the rule's adornment",
}


class DiagnosticWarning(UserWarning):
    """Emitted by ``on_diagnostics="warn"`` for error-severity findings."""


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``subject`` names the predicate / pattern / variable the finding is
    about (machine-readable context for tooling; the message spells it out
    for humans).
    """

    rule_id: str
    severity: str
    message: str
    span: Optional[Span] = None
    subject: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.rule_id not in RULE_CATALOG:
            raise ValueError(f"unknown diagnostic rule id {self.rule_id!r}")

    def __str__(self) -> str:
        location = f"{self.span}: " if self.span is not None else ""
        return f"{location}{self.severity}[{self.rule_id}]: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
        if self.subject:
            payload["subject"] = self.subject
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
        return payload


@dataclass(frozen=True)
class AnalysisReport:
    """The ordered result of analyzing one program."""

    kind: str  # "datalog" | "elog"
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: Free-form fragment facts (see :mod:`repro.analysis.fragments`);
    #: ``None`` for Elog programs and unparseable texts.
    fragment: Optional[object] = field(default=None, compare=False)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- severity views ----------------------------------------------------
    def with_severity(self, severity: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(ERROR)

    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(WARNING)

    def infos(self) -> Tuple[Diagnostic, ...]:
        return self.with_severity(INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def by_rule(self, rule_id: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule_id == rule_id)

    # -- rendering ---------------------------------------------------------
    def render(self, name: str = "") -> str:
        """Human-readable, one line per diagnostic, most severe first."""
        prefix = f"{name}: " if name else ""
        ordered = sorted(
            self.diagnostics, key=lambda d: (SEVERITIES.index(d.severity), d.rule_id)
        )
        if not ordered:
            return f"{prefix}clean ({self.kind} program, no diagnostics)"
        return "\n".join(f"{prefix}{diagnostic}" for diagnostic in ordered)

    def to_json(self, name: str = "") -> str:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
        }
        if name:
            payload["name"] = name
        if self.fragment is not None and hasattr(self.fragment, "to_dict"):
            payload["fragment"] = self.fragment.to_dict()
        return json.dumps(payload, indent=2, sort_keys=True)


class AnalysisError(ValueError):
    """Raised by ``on_diagnostics="strict"`` when a program has errors."""

    def __init__(self, report: AnalysisReport, owner: str = "program") -> None:
        self.report = report
        errors = report.errors()
        summary = "; ".join(str(diagnostic) for diagnostic in errors)
        super().__init__(
            f"{owner} failed static analysis with {len(errors)} error(s): {summary}"
        )


def apply_policy(report: AnalysisReport, policy: str, owner: str) -> None:
    """Apply an ``on_diagnostics`` policy to ``report``.

    ``"ignore"`` does nothing, ``"warn"`` emits one
    :class:`DiagnosticWarning` per error-severity finding, ``"strict"``
    raises :class:`AnalysisError` when any error-severity finding exists.
    Warnings and infos never gate evaluation — they are surfaced through
    :meth:`repro.api.Session.analyze` and the CLI.
    """
    if policy == "ignore" or not report.has_errors:
        return
    if policy == "strict":
        raise AnalysisError(report, owner)
    for diagnostic in report.errors():
        warnings.warn(f"{owner}: {diagnostic}", DiagnosticWarning, stacklevel=3)


#: Valid ``on_diagnostics`` policies (validated by ``EngineOptions``).
POLICIES = ("ignore", "warn", "strict")

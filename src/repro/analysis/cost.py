"""Cardinality and join-cost estimation over adorned datalog programs.

The second half of the optimizer layer (:mod:`repro.analysis.dataflow`
computes *what is bound*; this module computes *how much it costs*):

* :func:`relation_estimates` — order-of-magnitude relation sizes.  For the
  tau_ur tree signature the estimates encode the structure of documents
  (one root, roughly half the nodes are leaves, labels partition the
  nodes); for generic EDB signatures they fall back to arity-scaled
  defaults.  IDB sizes come from a bounded monotone fixpoint over the
  per-rule output estimates, capped at ``domain_size ** arity``.
* :func:`rule_costs` — per adorned rule, the step-by-step row estimates of
  the engine's own greedy join order: each step multiplies the current row
  count by the step's *fan-out* ``size / domain^bound``, the classic
  uniform-selectivity model.  The rule cost is the total intermediate row
  count; ``magnitude`` is its order of magnitude (``log10``).
* :func:`check_performance` — the ``P00x`` diagnostic catalog
  (:data:`repro.analysis.diagnostics.RULE_CATALOG`): estimated cartesian
  blowups, linearizable recursion, index advice, undemanded computation,
  unbound joins.  All warnings/infos — performance findings never gate
  evaluation.
* :func:`seed_rule_plans` — the feedback loop into the engine: compile
  each :class:`~repro.datalog.plan.RulePlan`'s seed plans from the
  estimated sizes at registry-compile time (before any database exists),
  and return the index advice the engine uses to pre-build hash indexes
  before a first fixpoint.  Join order never affects the fixpoint, so the
  seeds are safe by construction; the property suite asserts it anyway.

Everything is deterministic (sorted iteration, pure arithmetic) — explain
snapshots golden-test the rendered numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log10
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.ast import Program, Rule, get_span
from ..datalog.cache import LruMap
from ..datalog.plan import RulePlan
from ..datalog.stratify import dependency_graph
from ..datalog.tree_edb import EXTENDED_BINARY, TAU_UR_BINARY, TAU_UR_UNARY
from .datalog_checks import BUILTIN_PREDICATES, TREE_SIGNATURE
from .dataflow import AdornedProgram, AdornedRule, adorn
from .diagnostics import INFO, WARNING, Diagnostic

#: Default modelled domain size (distinct values / document nodes).
DEFAULT_DOMAIN_SIZE = 1000

#: Cost above which a cartesian-structure join is reported as a blowup.
BLOWUP_THRESHOLD = 1e6

#: Fixpoint rounds for the IDB size estimator — enough for the recursion
#: depths that change an order of magnitude, bounded for compile latency.
_MAX_ROUNDS = 20

#: Content-keyed memo of :func:`relation_estimates` results.  The analysis
#: runs on every program compilation (registry-shared *and* private), so a
#: server constructing hundreds of components over a handful of programs
#: must pay the estimate fixpoint once per program content, not per
#: component.  LruMap serialises access internally (thread-safe).
_ESTIMATES_MEMO: "LruMap[tuple, Dict[str, float]]" = LruMap(128)

#: Content-keyed memo of seed-plan compilations: program content →
#: (index advice, per-rule ``{delta_position: _JoinPlan}``).  A compiled
#: ``_JoinPlan`` depends only on the rule content and the estimated sizes,
#: both functions of the key, so fresh ``RulePlan`` instances for the same
#: rule content can share the cached seed plans (plans are read-only at
#: evaluation time).
_SEEDS_MEMO: "LruMap[tuple, tuple]" = LruMap(128)


def _content_key(
    program: Program, edb: "Optional[object]", domain_size: int
) -> tuple:
    """Memo key: rule set + EDB split + tree-signature flag + domain."""
    return (
        frozenset(program.rules),
        program.edb_predicates,
        edb == TREE_SIGNATURE,
        domain_size,
    )


def relation_estimates(
    program: Program,
    *,
    edb: "Optional[object]" = None,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
) -> Dict[str, float]:
    """Estimated relation sizes for every predicate the program mentions.

    ``edb`` follows the :func:`repro.analysis.datalog_checks.check_program`
    convention: :data:`TREE_SIGNATURE` selects the tau_ur tree heuristics,
    any other iterable (or ``None``) gets generic arity-scaled defaults.

    Results are memoised by program content (callers get a private copy).
    """
    memo_key = _content_key(program, edb, domain_size)
    cached = _ESTIMATES_MEMO.get(memo_key)
    if cached is not None:
        return dict(cached)
    n = float(domain_size)
    tree = edb == TREE_SIGNATURE
    idb = {rule.head.predicate for rule in program.rules}
    estimates: Dict[str, float] = {}

    arity_of: Dict[str, int] = {}
    for rule in program.rules:
        arity_of.setdefault(rule.head.predicate, rule.head.arity)
        for literal in rule.body:
            arity_of.setdefault(literal.atom.predicate, literal.atom.arity)

    for predicate, arity in arity_of.items():
        if predicate in idb or predicate in BUILTIN_PREDICATES:
            continue
        if tree:
            estimates[predicate] = _tree_estimate(predicate, n)
        else:
            # Generic EDB: a unary relation holds about the domain, wider
            # ones a few facts per element (edges of a sparse graph).
            estimates[predicate] = n if arity <= 1 else 2.0 * n

    # IDB sizes: bounded monotone fixpoint over per-rule output estimates.
    for predicate in idb:
        estimates[predicate] = 0.0
    adorned = adorn(program, sizes=estimates)
    for _ in range(_MAX_ROUNDS):
        changed = False
        totals: Dict[str, float] = {predicate: 0.0 for predicate in idb}
        for adorned_rule in adorned.rules:
            if adorned_rule.head_adornment.count("b"):
                continue  # size estimates come from the full (all-free) rules
            rows = _rule_rows(adorned_rule, estimates, n)
            totals[adorned_rule.head_predicate] += rows
        for predicate, total in totals.items():
            arity = arity_of.get(predicate, 1)
            capped = min(total, n**arity)
            if capped > estimates[predicate]:
                estimates[predicate] = capped
                changed = True
        if not changed:
            break
    _ESTIMATES_MEMO.put(memo_key, dict(estimates))
    return estimates


def _tree_estimate(predicate: str, n: float) -> float:
    """tau_ur heuristics: structural facts about any document tree."""
    if predicate == "root":
        return 1.0
    if predicate.startswith("label_"):
        return max(n / 8.0, 1.0)  # labels partition the nodes
    if predicate in TAU_UR_UNARY or predicate in TAU_UR_BINARY:
        return max(n / 2.0, 1.0)  # leaf/firstchild/… hold for about half
    if predicate in EXTENDED_BINARY:
        return n  # child: one edge per non-root node
    return n


def _rule_rows(
    adorned_rule: AdornedRule, estimates: Mapping[str, float], domain: float
) -> float:
    """Final row estimate of one adorned rule (uniform-selectivity model)."""
    rows = 1.0
    for literal in adorned_rule.join_steps():
        size = estimates.get(literal.predicate, domain)
        fanout = size / (domain ** len(literal.bound))
        rows *= max(fanout, 1e-3)
    return rows


@dataclass(frozen=True)
class StepCost:
    """One join step of one adorned rule, with its row estimates."""

    literal_position: int
    predicate: str
    adornment: str
    relation_size: float
    rows_out: float  # estimated rows after this step


@dataclass(frozen=True)
class RuleCost:
    """The estimated evaluation cost of one adorned rule."""

    adorned: AdornedRule
    steps: Tuple[StepCost, ...]
    cost: float  # total intermediate rows across all steps

    @property
    def magnitude(self) -> int:
        """Order of magnitude of the cost (``ceil(log10)``, min 0)."""
        if self.cost <= 1.0:
            return 0
        return int(log10(self.cost)) + 1

    @property
    def rows(self) -> float:
        """Estimated output rows (before head projection dedup)."""
        return self.steps[-1].rows_out if self.steps else 1.0


def rule_costs(
    adorned: AdornedProgram,
    estimates: Mapping[str, float],
    *,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
) -> List[RuleCost]:
    """Step-by-step cost estimates for every adorned rule, program order."""
    n = float(domain_size)
    costs: List[RuleCost] = []
    for adorned_rule in adorned.rules:
        rows = 1.0
        total = 0.0
        steps: List[StepCost] = []
        for literal in adorned_rule.join_steps():
            size = estimates.get(literal.predicate, n)
            fanout = max(size / (n ** len(literal.bound)), 1e-3)
            rows *= fanout
            total += rows
            steps.append(
                StepCost(
                    literal_position=literal.position,
                    predicate=literal.predicate,
                    adornment=literal.adornment,
                    relation_size=size,
                    rows_out=rows,
                )
            )
        costs.append(RuleCost(adorned=adorned_rule, steps=tuple(steps), cost=total))
    return costs


# ---------------------------------------------------------------------------
# The P-series performance diagnostics
# ---------------------------------------------------------------------------


def check_performance(
    program: Program,
    *,
    edb: "Optional[object]" = None,
    query_predicates: Optional[Sequence[str]] = None,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
) -> List[Diagnostic]:
    """All ``P00x`` performance diagnostics for ``program``, id-sorted.

    Opt-in (``analyze(..., performance=True)`` / CLI ``--perf``) and always
    part of ``explain()`` output; never error severity.
    """
    estimates = relation_estimates(program, edb=edb, domain_size=domain_size)
    adorned = adorn(program, query_predicates, sizes=estimates)
    costs = rule_costs(adorned, estimates, domain_size=domain_size)

    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_unbound_joins(costs))
    diagnostics.extend(_check_nonlinear_recursion(program))
    diagnostics.extend(_check_index_advice(adorned))
    diagnostics.extend(
        _check_undemanded(program, query_predicates, estimates)
    )
    diagnostics.sort(key=lambda d: (d.rule_id, d.span.line if d.span else 0, d.subject))
    return diagnostics


def _check_unbound_joins(costs: Sequence[RuleCost]) -> List[Diagnostic]:
    """P005 (and P001 when the estimate blows past the budget)."""
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, str, str]] = set()
    for cost in costs:
        rule = cost.adorned.rule
        unbound = [
            step
            for index, step in enumerate(cost.steps)
            if index > 0 and not step.adornment.count("b") and step.adornment
        ]
        if not unbound:
            continue
        witness = unbound[0]
        key = (
            rule.head.predicate,
            cost.adorned.head_adornment,
            witness.predicate,
        )
        if key in seen:
            continue
        seen.add(key)
        diagnostics.append(
            Diagnostic(
                "P005",
                WARNING,
                f"join step {witness.predicate}^{witness.adornment} in the rule "
                f"for {rule.head.predicate!r} (adorned "
                f"{rule.head.predicate}^{cost.adorned.head_adornment}) is "
                "completely unbound: no earlier literal shares a variable, so "
                "the engine enumerates its whole relation per partial row",
                span=get_span(rule),
                subject=rule.head.predicate,
            )
        )
        if cost.cost >= BLOWUP_THRESHOLD:
            diagnostics.append(
                Diagnostic(
                    "P001",
                    WARNING,
                    f"estimated cartesian blowup in the rule for "
                    f"{rule.head.predicate!r}: about {cost.cost:.1e} "
                    f"intermediate rows (magnitude 10^{cost.magnitude}) from "
                    f"the unbound join over {witness.predicate!r}",
                    span=get_span(rule),
                    subject=rule.head.predicate,
                )
            )
    return diagnostics


def _positive_sccs(program: Program) -> Dict[str, int]:
    """Predicate → SCC id of the positive dependency graph (iterative Tarjan)."""
    graph = dependency_graph(program)
    idb = program.idb_predicates()
    edges: Dict[str, List[str]] = {
        head: sorted({pred for pred, negated in deps if not negated and pred in idb})
        for head, deps in graph.items()
    }
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    scc_of: Dict[str, int] = {}
    stack: List[str] = []
    on_stack: Set[str] = set()
    counter = [0]
    scc_counter = [0]

    for start in sorted(edges):
        if start in index_of:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = edges.get(node, [])
            advanced = False
            for next_index in range(child_index, len(children)):
                child = children[next_index]
                if child not in index_of:
                    work[-1] = (node, next_index + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = scc_counter[0]
                    if member == node:
                        break
                scc_counter[0] += 1
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return scc_of


def _check_nonlinear_recursion(program: Program) -> List[Diagnostic]:
    """P002: two or more recursive body literals in one rule.

    Theorem 2.4 evaluates TMNF — where every rule has at most one
    intensional body atom — in linear time; a rule joining two members of
    its own recursive component forces the quadratic general case.
    """
    scc_of = _positive_sccs(program)
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        head_scc = scc_of.get(rule.head.predicate)
        if head_scc is None:
            continue
        recursive = [
            literal.atom.predicate
            for literal in rule.body
            if not literal.negated
            and scc_of.get(literal.atom.predicate) == head_scc
        ]
        if len(recursive) < 2:
            continue
        diagnostics.append(
            Diagnostic(
                "P002",
                WARNING,
                f"non-linear recursion in the rule for {rule.head.predicate!r}: "
                f"body joins {len(recursive)} literals ({', '.join(recursive)}) "
                "from its own recursive component; a linear rewrite (one "
                "recursive literal per rule, as in the paper's TMNF normal "
                "form, Theorem 2.4) would evaluate in linear time",
                span=get_span(rule),
                subject=rule.head.predicate,
            )
        )
    return diagnostics


def _check_index_advice(adorned: AdornedProgram) -> List[Diagnostic]:
    """P003: the exact bound-position keys the compiled plans will probe."""
    diagnostics: List[Diagnostic] = []
    for predicate, keys in adorned.index_advice().items():
        rendered = ", ".join("(" + ",".join(map(str, key)) + ")" for key in keys)
        diagnostics.append(
            Diagnostic(
                "P003",
                INFO,
                f"advise hash index(es) on {predicate!r} keyed by argument "
                f"position(s) {rendered}: the adorned join orders probe "
                "these bound positions",
                subject=predicate,
            )
        )
    return diagnostics


def _check_undemanded(
    program: Program,
    query_predicates: Optional[Sequence[str]],
    estimates: Mapping[str, float],
) -> List[Diagnostic]:
    """P004: IDB work the query predicates never demand (cost-annotated D007)."""
    if not query_predicates:
        return []
    idb = program.idb_predicates()
    by_head: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        by_head.setdefault(rule.head.predicate, []).append(rule)
    reachable: Set[str] = set(p for p in query_predicates if p in idb)
    frontier = list(reachable)
    while frontier:
        predicate = frontier.pop()
        for rule in by_head.get(predicate, ()):
            for literal in rule.body:
                body_predicate = literal.atom.predicate
                if body_predicate in idb and body_predicate not in reachable:
                    reachable.add(body_predicate)
                    frontier.append(body_predicate)
    diagnostics: List[Diagnostic] = []
    for predicate in sorted(idb - reachable):
        wasted = estimates.get(predicate, 0.0)
        diagnostics.append(
            Diagnostic(
                "P004",
                WARNING,
                f"predicate {predicate!r} is computed but never demanded by "
                f"the query predicate(s) {', '.join(sorted(query_predicates))}"
                f"; the fixpoint still materialises an estimated {wasted:.1e} "
                "rows for it",
                span=get_span(by_head[predicate][0]),
                subject=predicate,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# The feedback loop: seed compiled plans + advise indexes
# ---------------------------------------------------------------------------


def seed_rule_plans(
    stratum_plans: Sequence[Sequence[RulePlan]],
    stratum_triggers: Sequence[Mapping[str, Sequence[Tuple[RulePlan, int]]]],
    program: Program,
    *,
    edb: "Optional[object]" = None,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
    """Seed every rule plan from static size estimates; return index advice.

    Called by :class:`repro.datalog.registry.CompiledProgram` right after
    ``compile_stratum`` — the plans are not yet published to any engine, so
    no locking is needed.  For each plan we compile the naive-round plan
    (``delta_position=None``) plus one per semi-naive trigger position, all
    from the same estimated sizes.  The returned advice maps predicates to
    the sorted bound-position keys those seed plans probe, which the engine
    pre-builds as hash indexes before a first fixpoint.

    The whole result is memoised by program content: a seed ``_JoinPlan``
    depends only on the rule and the estimated sizes, so recompilations of
    the same program (registry eviction, private ``share_plans=False``
    engines, a fleet of sessions) reuse the cached plans instead of paying
    the estimate fixpoint and the seed compilations again.
    """
    memo_key = _content_key(program, edb, domain_size)
    cached = _SEEDS_MEMO.get(memo_key)
    if cached is not None:
        advice_out, seeds_by_rule = cached
        for plans in stratum_plans:
            for plan in plans:
                seeds = seeds_by_rule.get(plan.rule)
                if seeds:
                    plan.seed_plans.update(seeds)
        return dict(advice_out)

    estimates = relation_estimates(program, edb=edb, domain_size=domain_size)

    trigger_positions: Dict[RulePlan, Set[int]] = {}
    for triggers in stratum_triggers:
        for pairs in triggers.values():
            for plan, position in pairs:
                trigger_positions.setdefault(plan, set()).add(position)

    advice: Dict[str, Set[Tuple[int, ...]]] = {}
    seeds_by_rule: Dict[Rule, Dict[Optional[int], object]] = {}
    for plans in stratum_plans:
        for plan in plans:
            body = plan.rule.body
            sizes = {
                position: int(estimates.get(body[position].atom.predicate, domain_size))
                for position in plan.relational
            }
            plan.seed(None, sizes)
            for position in sorted(trigger_positions.get(plan, ())):
                # The delta of a trigger is far smaller than the full
                # relation — model it at 1/16th so the seed order matches
                # what live bucket signatures will typically pick.
                delta_sizes = dict(sizes)
                delta_sizes[position] = max(sizes[position] // 16, 1)
                plan.seed(position, delta_sizes)
            seeds_by_rule[plan.rule] = dict(plan.seed_plans)
            for seeded in plan.seed_plans.values():
                for step in seeded.steps:
                    if step.from_delta or not step.bound_positions:
                        continue
                    advice.setdefault(step.predicate, set()).add(step.bound_positions)
    advice_out = {
        predicate: tuple(sorted(keys)) for predicate, keys in sorted(advice.items())
    }
    _SEEDS_MEMO.put(memo_key, (advice_out, seeds_by_rule))
    return dict(advice_out)

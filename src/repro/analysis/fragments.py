"""Fragment classification: *which* complexity class a program falls into.

The paper's central result is a dichotomy of cost by syntactic fragment:

* **Monadic datalog over trees** (Section 2.3) is evaluable in time
  O(|P| * |dom|) — Theorem 2.4 — via grounding + LTUR.
* **TMNF** (Definition 2.6) is the normal form the Theorem 2.7 rewriting
  targets; programs already in (or rewritable into) TMNF run through the
  linear-time pipeline and correspond to tree-automata runs (Theorem 2.5 /
  Section 4 translations).
* Everything else falls back to the generic semi-naive engine —
  polynomial, with stratified negation admitted and *unstratifiable*
  negation rejected outright.

:func:`classify` computes that verdict statically, with the *reasons* a
program leaves the linear-time fragment spelled out, so tooling can explain
"this costs what it costs because …" before anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..datalog.ast import Program, Rule
from ..datalog.stratify import is_stratifiable
from ..mdatalog.program import ALLOWED_BINARY, MonadicityError, MonadicProgram
from ..mdatalog.tmnf import TMNFRewriteError, is_tmnf, rule_tmnf_form, to_tmnf


@dataclass(frozen=True)
class FragmentReport:
    """The static complexity verdict for one datalog program.

    ``reasons`` lists, in source order, why the program leaves the
    linear-time fragment; empty when ``linear_time`` is True.
    """

    monadic: bool
    tmnf: bool
    tmnf_rewritable: bool
    automata_compilable: bool
    stratifiable: bool
    uses_negation: bool
    reasons: Tuple[str, ...] = ()

    @property
    def linear_time(self) -> bool:
        """True when the Theorem-2.4 ground+LTUR pipeline applies."""
        return self.tmnf or self.tmnf_rewritable

    def verdict(self) -> str:
        """A one-sentence explanation of the classification."""
        if self.tmnf:
            return (
                "program is monadic datalog in TMNF: linear-time over trees "
                "(Theorem 2.4) and automata-compilable (Theorem 2.5)"
            )
        if self.tmnf_rewritable:
            return (
                "program is monadic datalog, rewritable into TMNF in O(|P|) "
                "(Theorem 2.7): linear-time over trees"
            )
        detail = "; ".join(self.reasons) if self.reasons else "unknown reason"
        if not self.stratifiable:
            return f"program is rejected: {detail}"
        return (
            f"program leaves the linear-time fragment because {detail}; "
            "it evaluates through the generic (polynomial) semi-naive engine"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "monadic": self.monadic,
            "tmnf": self.tmnf,
            "tmnf_rewritable": self.tmnf_rewritable,
            "automata_compilable": self.automata_compilable,
            "linear_time": self.linear_time,
            "stratifiable": self.stratifiable,
            "uses_negation": self.uses_negation,
            "reasons": list(self.reasons),
            "verdict": self.verdict(),
        }


def _monadicity_reasons(rules: Sequence[Rule]) -> List[str]:
    """Why these rules are not monadic datalog over the tree signature."""
    reasons: List[str] = []
    idb = {rule.head.predicate for rule in rules}
    for rule in rules:
        if rule.head.arity != 1:
            reasons.append(
                f"rule for {rule.head.predicate!r} has a non-unary head "
                f"({rule.head.predicate}/{rule.head.arity})"
            )
            continue
        for literal in rule.body:
            atom = literal.atom
            if atom.predicate in idb and atom.arity != 1:
                reasons.append(
                    f"intensional predicate {atom.predicate!r} is used with "
                    f"arity {atom.arity} in the rule for {rule.head.predicate!r}"
                )
            elif atom.arity == 2 and atom.predicate not in ALLOWED_BINARY:
                reasons.append(
                    f"binary relation {atom.predicate!r} is not a tau_ur tree "
                    f"relation (rule for {rule.head.predicate!r})"
                )
            elif atom.arity > 2:
                reasons.append(
                    f"atom {atom} has arity {atom.arity}; trees provide only "
                    "unary and binary relations"
                )
    return reasons


def _tmnf_reasons(program: MonadicProgram) -> List[str]:
    """Why a monadic program is outside TMNF and not rewritable into it."""
    reasons: List[str] = []
    for rule in program.rules:
        if rule_tmnf_form(rule) is not None:
            continue
        if any(literal.negated for literal in rule.body):
            reasons.append(
                f"the rule for {rule.head.predicate!r} uses negation, which "
                "is outside TMNF"
            )
            continue
        try:
            to_tmnf(MonadicProgram([rule]))
        except (TMNFRewriteError, MonadicityError) as error:
            reasons.append(
                f"the rule for {rule.head.predicate!r} cannot be rewritten "
                f"into TMNF: {error}"
            )
    return reasons


def classify(program: Union[Program, MonadicProgram]) -> FragmentReport:
    """Classify ``program`` into the paper's complexity fragments."""
    rules = list(program.rules)
    uses_negation = any(literal.negated for rule in rules for literal in rule.body)
    if isinstance(program, MonadicProgram):
        stratifiable = is_stratifiable(program.to_datalog_program())
    else:
        stratifiable = is_stratifiable(program)

    monadic_reasons = _monadicity_reasons(rules)
    monadic_program: Optional[MonadicProgram] = None
    if not monadic_reasons:
        if isinstance(program, MonadicProgram):
            monadic_program = program
        else:
            try:
                monadic_program = MonadicProgram(rules)
            except MonadicityError as error:  # pragma: no cover - reasons above
                monadic_reasons.append(str(error))

    reasons: List[str] = []
    tmnf = False
    rewritable = False
    if monadic_program is None:
        reasons.extend(monadic_reasons)
    else:
        tmnf = is_tmnf(monadic_program)
        if not tmnf:
            try:
                to_tmnf(monadic_program)
                rewritable = True
            except (TMNFRewriteError, MonadicityError):
                reasons.extend(_tmnf_reasons(monadic_program))
    if not stratifiable:
        reasons.append("its negation is not stratifiable (negative cycle)")

    return FragmentReport(
        monadic=monadic_program is not None,
        tmnf=tmnf,
        tmnf_rewritable=rewritable,
        automata_compilable=(tmnf or rewritable) and not uses_negation,
        stratifiable=stratifiable,
        uses_negation=uses_negation,
        reasons=tuple(reasons),
    )

"""Compile-time static analysis for datalog programs and Elog wrappers.

The analyzer turns the silent failure modes of logic programs — unsafe
rules, unstratifiable negation, misspelled predicates, dead patterns —
into structured :class:`Diagnostic` records with stable rule ids, a
severity, a human explanation and (for parsed text) a source span.  It
also classifies every datalog program into the paper's complexity
fragments (monadic? TMNF? linear-time?) and explains the verdict.

Three front doors:

* :func:`analyze` — one call for any program shape (AST or text);
* ``Session.analyze`` / ``EngineOptions(on_diagnostics=...)`` — the
  :mod:`repro.api` integration, cached per program fingerprint;
* ``python -m repro.analysis <file>`` — the CLI, with ``--json``.

docs/ANALYSIS.md is the rule catalog with one example per rule id.
"""

from .analyzer import DATALOG, ELOG, Analyzable, analyze, sniff_kind
from .datalog_checks import (
    BUILTIN_PREDICATES,
    TREE_EDB_PREDICATES,
    TREE_SIGNATURE,
    check_program,
)
from .diagnostics import (
    ERROR,
    INFO,
    POLICIES,
    RULE_CATALOG,
    SEVERITIES,
    WARNING,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    DiagnosticWarning,
    apply_policy,
)
from .elog_checks import check_elog_program
from .fragments import FragmentReport, classify
from .scan import ScannedProgram, analyze_scanned, looks_like_program, scan_file, scan_source

__all__ = [
    "Analyzable",
    "AnalysisError",
    "AnalysisReport",
    "BUILTIN_PREDICATES",
    "DATALOG",
    "Diagnostic",
    "DiagnosticWarning",
    "ELOG",
    "ERROR",
    "FragmentReport",
    "INFO",
    "POLICIES",
    "RULE_CATALOG",
    "SEVERITIES",
    "ScannedProgram",
    "TREE_EDB_PREDICATES",
    "TREE_SIGNATURE",
    "WARNING",
    "analyze",
    "analyze_scanned",
    "apply_policy",
    "check_elog_program",
    "check_program",
    "classify",
    "looks_like_program",
    "scan_file",
    "scan_source",
    "sniff_kind",
]

"""Compile-time static analysis for datalog programs and Elog wrappers.

The analyzer turns the silent failure modes of logic programs — unsafe
rules, unstratifiable negation, misspelled predicates, dead patterns —
into structured :class:`Diagnostic` records with stable rule ids, a
severity, a human explanation and (for parsed text) a source span.  It
also classifies every datalog program into the paper's complexity
fragments (monadic? TMNF? linear-time?) and explains the verdict.

Three front doors:

* :func:`analyze` — one call for any program shape (AST or text);
* ``Session.analyze`` / ``EngineOptions(on_diagnostics=...)`` — the
  :mod:`repro.api` integration, cached per program fingerprint;
* ``python -m repro.analysis <file>`` — the CLI, with ``--json``,
  ``--perf`` (adornment/cost P-series checks) and ``--explain`` (plans).

Beyond diagnostics, the package carries the optimizer-grade layer:
:func:`adorn` (binding-pattern dataflow, :mod:`repro.analysis.dataflow`),
:func:`relation_estimates` / :func:`check_performance`
(:mod:`repro.analysis.cost`) and :func:`explain`
(:mod:`repro.analysis.explain`) — the same machinery the engine uses to
seed join plans and pre-build advised indexes at compile time.

docs/ANALYSIS.md is the rule catalog with one example per rule id.
"""

from .analyzer import DATALOG, ELOG, Analyzable, analyze, sniff_kind
from .cost import (
    DEFAULT_DOMAIN_SIZE,
    RuleCost,
    check_performance,
    relation_estimates,
    rule_costs,
)
from .dataflow import AdornedLiteral, AdornedProgram, AdornedRule, adorn
from .explain import ExplainPlan, ExplainReport, ExplainRule, ExplainStep, explain
from .datalog_checks import (
    BUILTIN_PREDICATES,
    TREE_EDB_PREDICATES,
    TREE_SIGNATURE,
    check_program,
)
from .diagnostics import (
    ERROR,
    INFO,
    POLICIES,
    RULE_CATALOG,
    SEVERITIES,
    WARNING,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    DiagnosticWarning,
    apply_policy,
)
from .elog_checks import check_elog_program
from .fragments import FragmentReport, classify
from .scan import ScannedProgram, analyze_scanned, looks_like_program, scan_file, scan_source

__all__ = [
    "AdornedLiteral",
    "AdornedProgram",
    "AdornedRule",
    "Analyzable",
    "AnalysisError",
    "AnalysisReport",
    "BUILTIN_PREDICATES",
    "DATALOG",
    "DEFAULT_DOMAIN_SIZE",
    "Diagnostic",
    "DiagnosticWarning",
    "ELOG",
    "ERROR",
    "ExplainPlan",
    "ExplainReport",
    "ExplainRule",
    "ExplainStep",
    "FragmentReport",
    "INFO",
    "POLICIES",
    "RULE_CATALOG",
    "RuleCost",
    "SEVERITIES",
    "ScannedProgram",
    "TREE_EDB_PREDICATES",
    "TREE_SIGNATURE",
    "WARNING",
    "adorn",
    "analyze",
    "analyze_scanned",
    "apply_policy",
    "check_elog_program",
    "check_performance",
    "check_program",
    "classify",
    "explain",
    "looks_like_program",
    "relation_estimates",
    "rule_costs",
    "scan_file",
    "scan_source",
    "sniff_kind",
]

"""``explain()``: render what the engine will do before it does it.

The optimizer layer's user-facing surface.  Given any program shape the
analyzer accepts (datalog :class:`~repro.datalog.ast.Program`, a
:class:`~repro.mdatalog.program.MonadicProgram`, an Elog wrapper — which is
translated through :func:`repro.elog.to_mdatalog.to_monadic_datalog` — or
raw source text), ``explain`` compiles the program exactly the way
:class:`~repro.datalog.engine.SemiNaiveEngine` would, seeds the plans from
the static cost model (:func:`repro.analysis.cost.seed_rule_plans`), and
renders per rule:

* the chosen join order (the statically-seeded plan for the naive round
  plus each semi-naive delta variant), step by step, with the probe's
  bound-position key and the cost model's estimated rows in → out;
* the filter hoist points — which builtin/negation filters run after
  which step — and any leftover filters;
* the advised index keys and the estimated relation cardinalities;
* the ``P00x`` performance diagnostics.

The report is deterministic (pure arithmetic, sorted iteration), which the
golden snapshot suite relies on, and carries a ``to_dict``/``to_json`` view
for the ``python -m repro.analysis --explain --json`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..datalog.ast import Program
from ..datalog.plan import RulePlan, _JoinPlan, compile_stratum
from ..datalog.stratify import stratify
from .cost import (
    DEFAULT_DOMAIN_SIZE,
    check_performance,
    relation_estimates,
    seed_rule_plans,
)
from .datalog_checks import TREE_SIGNATURE
from .diagnostics import Diagnostic
from .fragments import classify

Explainable = Union[Program, "MonadicProgram", "ElogProgram", str]  # noqa: F821


@dataclass(frozen=True)
class ExplainStep:
    """One join step of one plan variant, with its static row estimates."""

    predicate: str
    access: str  # "scan" or "probe(positions)"
    from_delta: bool
    rows_in: float
    rows_out: float
    filters_after: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "predicate": self.predicate,
            "access": self.access,
            "from_delta": self.from_delta,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "filters_after": list(self.filters_after),
        }


@dataclass(frozen=True)
class ExplainPlan:
    """One plan variant of one rule (naive round or one delta position)."""

    variant: str  # "naive" or "delta(<predicate>)"
    steps: Tuple[ExplainStep, ...]
    initial_filters: Tuple[str, ...]
    leftover_filters: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "variant": self.variant,
            "steps": [step.to_dict() for step in self.steps],
            "initial_filters": list(self.initial_filters),
            "leftover_filters": list(self.leftover_filters),
        }


@dataclass(frozen=True)
class ExplainRule:
    """Everything ``explain`` knows about one rule."""

    rule: str
    head_predicate: str
    stratum: int
    plans: Tuple[ExplainPlan, ...]
    estimated_rows: float
    cost_magnitude: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "head_predicate": self.head_predicate,
            "stratum": self.stratum,
            "plans": [plan.to_dict() for plan in self.plans],
            "estimated_rows": self.estimated_rows,
            "cost_magnitude": self.cost_magnitude,
        }


@dataclass(frozen=True)
class ExplainReport:
    """The full explanation of one program (deterministic, renderable)."""

    fragment_verdict: str
    strata: int
    rules: Tuple[ExplainRule, ...]
    index_advice: Tuple[Tuple[str, Tuple[Tuple[int, ...], ...]], ...]
    estimates: Tuple[Tuple[str, float], ...]
    diagnostics: Tuple[Diagnostic, ...] = field(compare=False)
    domain_size: int = DEFAULT_DOMAIN_SIZE

    # -- rendering ---------------------------------------------------------
    def render(self, name: str = "") -> str:
        lines: List[str] = []
        title = f"explain {name}".rstrip()
        lines.append(title)
        lines.append("=" * len(title))
        lines.append(f"fragment: {self.fragment_verdict}")
        lines.append(
            f"strata: {self.strata}; modelled domain size: {self.domain_size}"
        )
        lines.append("")
        lines.append("relation estimates:")
        for predicate, size in self.estimates:
            lines.append(f"  {predicate}: ~{size:.1e} rows")
        if self.index_advice:
            lines.append("advised indexes:")
            for predicate, keys in self.index_advice:
                rendered = ", ".join(
                    "(" + ",".join(map(str, key)) + ")" for key in keys
                )
                lines.append(f"  {predicate}: key positions {rendered}")
        for rule in self.rules:
            lines.append("")
            lines.append(f"rule [stratum {rule.stratum}] {rule.rule}")
            lines.append(
                f"  estimated output: ~{rule.estimated_rows:.1e} rows "
                f"(cost magnitude 10^{rule.cost_magnitude})"
            )
            for plan in rule.plans:
                lines.append(f"  plan {plan.variant}:")
                for filter_text in plan.initial_filters:
                    lines.append(f"    filter {filter_text} (before any step)")
                for index, step in enumerate(plan.steps, start=1):
                    source = "delta " if step.from_delta else ""
                    lines.append(
                        f"    {index}. {step.access} {source}{step.predicate}"
                        f"  ~{step.rows_in:.1e} -> ~{step.rows_out:.1e} rows"
                    )
                    for filter_text in step.filters_after:
                        lines.append(f"       then filter {filter_text}")
                for filter_text in plan.leftover_filters:
                    lines.append(f"    leftover filter {filter_text}")
        if self.diagnostics:
            lines.append("")
            lines.append("performance diagnostics:")
            for diagnostic in self.diagnostics:
                lines.append(f"  {diagnostic}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "fragment": self.fragment_verdict,
            "strata": self.strata,
            "domain_size": self.domain_size,
            "estimates": {predicate: size for predicate, size in self.estimates},
            "index_advice": {
                predicate: [list(key) for key in keys]
                for predicate, keys in self.index_advice
            },
            "rules": [rule.to_dict() for rule in self.rules],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, name: str = "") -> str:
        payload = self.to_dict()
        if name:
            payload["name"] = name
        return json.dumps(payload, indent=2, sort_keys=True)


def _filter_text(compiled) -> str:
    prefix = "not " if compiled.negated else ""
    return f"{prefix}{compiled.predicate}/{len(compiled.spec)}"


def _explain_plan(
    plan: RulePlan,
    joined: _JoinPlan,
    variant: str,
    estimates: Dict[str, float],
    domain: float,
    delta_scale: float = 1.0,
) -> ExplainPlan:
    steps: List[ExplainStep] = []
    rows = 1.0
    for step in joined.steps:
        size = estimates.get(step.predicate, domain)
        if step.from_delta:
            size = max(size * delta_scale, 1.0)
        fanout = max(size / (domain ** len(step.bound_positions)), 1e-3)
        rows_in = rows
        rows *= fanout
        access = (
            "scan"
            if not step.bound_positions
            else "probe(" + ",".join(map(str, step.bound_positions)) + ")"
        )
        steps.append(
            ExplainStep(
                predicate=step.predicate,
                access=access,
                from_delta=step.from_delta,
                rows_in=rows_in,
                rows_out=rows,
                filters_after=tuple(_filter_text(f) for f in step.filters_after),
            )
        )
    return ExplainPlan(
        variant=variant,
        steps=tuple(steps),
        initial_filters=tuple(_filter_text(f) for f in joined.initial_filters),
        leftover_filters=tuple(_filter_text(f) for f in joined.leftover_filters),
    )


def explain(
    program: Explainable,
    query: Optional[Sequence[str]] = None,
    *,
    edb: Optional[object] = None,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
) -> ExplainReport:
    """Explain the evaluation plan of ``program``.

    ``query`` narrows the performance diagnostics (P004 demand analysis) to
    the given query predicates; plan rendering always covers the whole
    program, because the engines materialise the full fixpoint.  ``edb``
    follows the analyzer convention (:data:`~repro.analysis.datalog_checks.
    TREE_SIGNATURE` for tau_ur tree heuristics); monadic and Elog programs
    default to the tree signature.
    """
    resolved, edb, query = _resolve_program(program, edb, query)
    # Compile exactly the way the engine would: same builtins, same
    # stratification, same plan compiler, same seeding.
    from ..datalog.engine import SemiNaiveEngine

    builtins = SemiNaiveEngine.BUILTINS
    strata = stratify(resolved)
    stratum_plans: List[List[RulePlan]] = []
    stratum_triggers = []
    for stratum_rules in strata:
        plans, triggers = compile_stratum(stratum_rules, builtins)
        stratum_plans.append(plans)
        stratum_triggers.append(triggers)
    advice = seed_rule_plans(
        stratum_plans, stratum_triggers, resolved, edb=edb, domain_size=domain_size
    )

    estimates = relation_estimates(resolved, edb=edb, domain_size=domain_size)
    domain = float(domain_size)
    rules: List[ExplainRule] = []
    for stratum_index, plans in enumerate(stratum_plans):
        for plan in plans:
            explained: List[ExplainPlan] = []
            for delta_position in sorted(
                plan.seed_plans, key=lambda p: (p is not None, p)
            ):
                joined = plan.seed_plans[delta_position]
                if delta_position is None:
                    variant = "naive"
                    scale = 1.0
                else:
                    predicate = plan.rule.body[delta_position].atom.predicate
                    variant = f"delta({predicate})"
                    scale = 1.0 / 16.0
                explained.append(
                    _explain_plan(plan, joined, variant, estimates, domain, scale)
                )
            naive = plan.seed_plans.get(None)
            rows = 1.0
            total = 0.0
            if naive is not None:
                for step in naive.steps:
                    size = estimates.get(step.predicate, domain)
                    fanout = max(size / (domain ** len(step.bound_positions)), 1e-3)
                    rows *= fanout
                    total += rows
            rules.append(
                ExplainRule(
                    rule=str(plan.rule),
                    head_predicate=plan.head_predicate,
                    stratum=stratum_index,
                    plans=tuple(explained),
                    estimated_rows=rows,
                    cost_magnitude=_magnitude(total),
                )
            )
    diagnostics = tuple(
        check_performance(
            resolved, edb=edb, query_predicates=query, domain_size=domain_size
        )
    )
    mentioned = sorted(estimates)
    return ExplainReport(
        fragment_verdict=classify(resolved).verdict(),
        strata=len(strata),
        rules=tuple(rules),
        index_advice=tuple(advice.items()),
        estimates=tuple((predicate, estimates[predicate]) for predicate in mentioned),
        diagnostics=diagnostics,
        domain_size=domain_size,
    )


def _magnitude(cost: float) -> int:
    from math import log10

    if cost <= 1.0:
        return 0
    return int(log10(cost)) + 1


def _resolve_program(
    program: Explainable,
    edb: Optional[object],
    query: Optional[Sequence[str]],
) -> Tuple[Program, Optional[object], Optional[Sequence[str]]]:
    """Normalise any accepted shape to a datalog Program + edb + queries."""
    from ..elog.ast import ElogProgram
    from ..mdatalog.program import MonadicProgram

    if isinstance(program, ElogProgram):
        from ..elog.to_mdatalog import to_monadic_datalog

        program = to_monadic_datalog(program)
    if isinstance(program, MonadicProgram):
        if query is None:
            query = tuple(sorted(program.query_predicates))
        return (
            program.to_datalog_program(),
            edb if edb is not None else TREE_SIGNATURE,
            query,
        )
    if isinstance(program, Program):
        return program, edb, query
    if isinstance(program, str):
        from .analyzer import DATALOG, sniff_kind

        if sniff_kind(program) == DATALOG:
            from ..datalog.parser import parse_program

            return parse_program(program), edb, query
        from ..elog.parser import parse_elog

        return _resolve_program(parse_elog(program), edb, query)
    raise TypeError(
        f"cannot explain {type(program).__name__}; expected Program, "
        "MonadicProgram, ElogProgram or source text"
    )

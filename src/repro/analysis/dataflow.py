"""Binding-pattern (adornment) dataflow analysis over datalog programs.

The optimizer half of the static analyzer: starting from the *query*
predicates (demanded with every argument free — a query enumerates its
relation), propagate bound/free annotations sideways through each rule
body in exactly the join order the engine will execute, and demand the
adornments this induces on IDB body occurrences, recursively, to fixpoint.
This is classic sideways information passing (SIPS) as in magic-sets
literature, specialised to the engine's own join-order policy:

* The per-rule literal order is :func:`repro.datalog.plan.greedy_join_order`
  — the *same function* the runtime planner uses — fed with size estimates
  instead of live relation sizes.  The adornments reported here are
  therefore the binding patterns the compiled :class:`~repro.datalog.plan.
  RulePlan` steps will actually probe with, which is what makes the
  analysis usable as an index advisor and plan seeder
  (:mod:`repro.analysis.cost`).
* An argument position is *bound* at a body occurrence iff its term is a
  constant or a variable bound by the head adornment or an earlier literal
  in the order.  Builtins and negated literals never bind anything (the
  engine evaluates them as filters), so only positive relational literals
  participate.
* Demand is a worklist over ``(predicate, adornment)`` pairs.  Recursive
  programs reach a fixpoint because the adornment lattice per predicate is
  finite (``2^arity`` patterns).

Everything here is pure and deterministic: rules are processed in program
order, demands in sorted order, and the output tuples are sorted — the
``explain()`` surface renders them verbatim into golden-tested snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.ast import Constant, Program, Rule, Variable
from ..datalog.plan import greedy_join_order
from .datalog_checks import BUILTIN_PREDICATES

#: A binding pattern: one character per argument, ``b`` (bound) / ``f`` (free).
Adornment = str


def all_free(arity: int) -> Adornment:
    """The adornment of a top-level query: every argument free."""
    return "f" * arity


def bound_positions(adornment: Adornment) -> Tuple[int, ...]:
    """The 0-based argument positions an adornment marks bound."""
    return tuple(i for i, c in enumerate(adornment) if c == "b")


@dataclass(frozen=True)
class AdornedLiteral:
    """One body occurrence, annotated with its binding pattern.

    ``position`` is the literal's index in the original rule body (the same
    index :class:`~repro.datalog.plan._JoinStep.position` uses), so explain
    output and compiled plans line up step for step.  ``kind`` is
    ``"relation"`` for positive relational literals (join steps),
    ``"builtin"`` / ``"negation"`` for filters.
    """

    position: int
    predicate: str
    adornment: Adornment
    kind: str = "relation"

    @property
    def bound(self) -> Tuple[int, ...]:
        return bound_positions(self.adornment)

    def __str__(self) -> str:
        marker = {"relation": "", "builtin": "?", "negation": "not "}[self.kind]
        return f"{marker}{self.predicate}^{self.adornment}"


@dataclass(frozen=True)
class AdornedRule:
    """One rule specialised to one head adornment.

    ``order`` lists the positive relational body positions in the join
    order the engine's greedy planner picks for these size estimates;
    ``literals`` are the corresponding :class:`AdornedLiteral` records in
    that order, followed by the filter literals (builtins / negations) with
    the adornment they hold once the join has bound everything it can.
    """

    rule: Rule
    head_adornment: Adornment
    order: Tuple[int, ...]
    literals: Tuple[AdornedLiteral, ...]

    @property
    def head_predicate(self) -> str:
        return self.rule.head.predicate

    def join_steps(self) -> Tuple[AdornedLiteral, ...]:
        """Only the relational literals, in join order."""
        return tuple(lit for lit in self.literals if lit.kind == "relation")

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.literals)
        return f"{self.head_predicate}^{self.head_adornment} :- {body}"


@dataclass(frozen=True)
class AdornedProgram:
    """The result of :func:`adorn`: every demanded rule specialisation.

    ``demanded`` is the sorted set of ``(predicate, adornment)`` pairs the
    query predicates transitively require; ``rules`` holds one
    :class:`AdornedRule` per (rule, demanded head adornment) pair, in
    (program order, adornment order).
    """

    rules: Tuple[AdornedRule, ...]
    demanded: Tuple[Tuple[str, Adornment], ...]
    query_predicates: Tuple[str, ...]

    def rules_for(self, predicate: str) -> Tuple[AdornedRule, ...]:
        return tuple(r for r in self.rules if r.head_predicate == predicate)

    def index_advice(self) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
        """Predicate → sorted bound-position key tuples its joins probe.

        Every non-empty ``bound`` of a relational adorned literal is a hash
        index the compiled plans will demand of
        :class:`~repro.datalog.index.RelationIndex`.
        """
        advice: Dict[str, Set[Tuple[int, ...]]] = {}
        for adorned in self.rules:
            for literal in adorned.join_steps():
                if literal.bound:
                    advice.setdefault(literal.predicate, set()).add(literal.bound)
        return {
            predicate: tuple(sorted(keys))
            for predicate, keys in sorted(advice.items())
        }


def _literal_adornment(terms: Sequence[object], seen: Set[Variable]) -> Adornment:
    return "".join(
        "b" if isinstance(term, Constant) or term in seen else "f" for term in terms
    )


def adorn(
    program: Program,
    query_predicates: Optional[Sequence[str]] = None,
    *,
    sizes: Optional[Mapping[str, float]] = None,
    builtins: FrozenSet[str] = BUILTIN_PREDICATES,
) -> AdornedProgram:
    """Adorn ``program`` by demand from ``query_predicates``.

    ``query_predicates`` defaults to every IDB predicate (matching the
    engines, whose ``evaluate`` materialises the full fixpoint).  ``sizes``
    maps predicate names to estimated relation sizes steering the greedy
    join order; omitted predicates (and an omitted mapping) default to a
    uniform size, which reduces the order to "most bound terms first,
    original body order on ties".
    """
    idb = {rule.head.predicate for rule in program.rules}
    if query_predicates is None:
        queries: Tuple[str, ...] = tuple(sorted(idb))
    else:
        queries = tuple(sorted(set(query_predicates) & idb))
    size_of = dict(sizes) if sizes else {}

    by_head: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        by_head.setdefault(rule.head.predicate, []).append(rule)

    demanded: Set[Tuple[str, Adornment]] = set()
    worklist: List[Tuple[str, Adornment]] = []
    for predicate in queries:
        rules = by_head.get(predicate)
        if not rules:
            continue
        pattern = (predicate, all_free(rules[0].head.arity))
        demanded.add(pattern)
        worklist.append(pattern)

    adorned_rules: List[AdornedRule] = []
    while worklist:
        predicate, head_adornment = worklist.pop(0)
        for rule in by_head.get(predicate, ()):
            if rule.head.arity != len(head_adornment):
                continue  # arity clash is D003's problem, not ours
            adorned = _adorn_rule(rule, head_adornment, size_of, builtins)
            adorned_rules.append(adorned)
            for literal in adorned.join_steps():
                if literal.predicate not in idb:
                    continue
                pattern = (literal.predicate, literal.adornment)
                if pattern not in demanded:
                    demanded.add(pattern)
                    worklist.append(pattern)

    # Deterministic output order: program rule order, then head adornment
    # (rules hash by content, so textual duplicates share an index — the
    # stable sort keeps their relative order).
    rule_index = {rule: index for index, rule in enumerate(program.rules)}
    adorned_rules.sort(key=lambda a: (rule_index[a.rule], a.head_adornment))
    return AdornedProgram(
        rules=tuple(adorned_rules),
        demanded=tuple(sorted(demanded)),
        query_predicates=queries,
    )


def _adorn_rule(
    rule: Rule,
    head_adornment: Adornment,
    size_of: Mapping[str, float],
    builtins: FrozenSet[str],
) -> AdornedRule:
    body = rule.body
    relational = [
        position
        for position, literal in enumerate(body)
        if not literal.negated and literal.atom.predicate not in builtins
    ]
    position_sizes = {
        position: float(size_of.get(body[position].atom.predicate, 1.0))
        for position in relational
    }
    seen: Set[Variable] = {
        term
        for index, term in enumerate(rule.head.terms)
        if head_adornment[index] == "b" and isinstance(term, Variable)
    }
    order = greedy_join_order(body, relational, None, position_sizes, bound=seen)

    literals: List[AdornedLiteral] = []
    for position in order:
        atom = body[position].atom
        adornment = _literal_adornment(atom.terms, seen)
        literals.append(AdornedLiteral(position, atom.predicate, adornment))
        for term in atom.terms:
            if isinstance(term, Variable):
                seen.add(term)
    # Filters carry the adornment they hold *after* the full join — the
    # engine hoists them to the earliest step where all slots are bound,
    # but "which positions end up bound" is order-independent.
    for position, literal in enumerate(body):
        if position in relational:
            continue
        atom = literal.atom
        kind = "negation" if literal.negated else "builtin"
        literals.append(
            AdornedLiteral(position, atom.predicate, _literal_adornment(atom.terms, seen), kind)
        )
    return AdornedRule(
        rule=rule,
        head_adornment=head_adornment,
        order=tuple(order),
        literals=tuple(literals),
    )

"""The analyzer front door: one :func:`analyze` for every program shape.

Accepts a datalog :class:`~repro.datalog.ast.Program`, a
:class:`~repro.mdatalog.program.MonadicProgram`, an
:class:`~repro.elog.ast.ElogProgram`, or raw source text (the language is
sniffed, or forced with ``kind=``), and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`.  Unparseable text is
itself a report — a single ``D000``/``E000`` error carrying the parser's
source position — so tooling never has to catch syntax errors separately.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence, Union

from ..datalog.ast import Program, Span
from ..datalog.parser import DatalogSyntaxError, parse_program
from ..elog.ast import ElogProgram
from ..elog.concepts import ConceptRegistry
from ..elog.parser import ElogSyntaxError, parse_elog
from ..mdatalog.program import MonadicProgram
from .datalog_checks import TREE_SIGNATURE, check_program
from .diagnostics import ERROR, AnalysisReport, Diagnostic
from .elog_checks import check_elog_program
from .fragments import classify

DATALOG = "datalog"
ELOG = "elog"

#: Atoms that exist only in Elog (extraction / crawling); text containing
#: any of them at a call position is sniffed as an Elog wrapper.
_ELOG_MARKER = re.compile(
    r"\b(subelem|subtext|subatt|subsq|document)\s*\("
)

Analyzable = Union[Program, MonadicProgram, ElogProgram, str]


def sniff_kind(text: str) -> str:
    """Guess whether ``text`` is a datalog program or an Elog wrapper."""
    return ELOG if _ELOG_MARKER.search(text) else DATALOG


def analyze(
    program: Analyzable,
    *,
    kind: Optional[str] = None,
    edb: Optional[object] = None,
    query_predicates: Optional[Sequence[str]] = None,
    concepts: Optional[ConceptRegistry] = None,
    performance: bool = False,
) -> AnalysisReport:
    """Analyze ``program`` and return every diagnostic the checks produce.

    ``kind`` forces the language for text input (``"datalog"`` or
    ``"elog"``); AST input carries its own kind.  ``edb`` and
    ``query_predicates`` feed the datalog D004/D010/D007 checks (see
    :func:`repro.analysis.datalog_checks.check_program`); ``concepts`` the
    Elog E005 check.  Monadic programs default to the tau_ur tree EDB
    signature.  ``performance=True`` additionally runs the opt-in ``P00x``
    adornment/cost diagnostics (:func:`repro.analysis.cost.
    check_performance`) for datalog-shaped input; Elog wrappers ignore the
    flag (their performance story lives in ``explain()`` after translation).
    """
    if isinstance(program, ElogProgram):
        return _analyze_elog(program, concepts)
    if isinstance(program, MonadicProgram):
        datalog = program.to_datalog_program()
        return _analyze_datalog(
            datalog,
            edb if edb is not None else TREE_SIGNATURE,
            query_predicates,
            performance,
        )
    if isinstance(program, Program):
        return _analyze_datalog(program, edb, query_predicates, performance)
    if isinstance(program, str):
        resolved = kind or sniff_kind(program)
        if resolved == ELOG:
            return _analyze_elog_text(program, concepts)
        if resolved == DATALOG:
            return _analyze_datalog_text(program, edb, query_predicates, performance)
        raise ValueError(f"unknown program kind {resolved!r}")
    raise TypeError(
        f"cannot analyze {type(program).__name__}; expected Program, "
        "MonadicProgram, ElogProgram or source text"
    )


def _analyze_datalog(
    program: Program,
    edb: Optional[object],
    query_predicates: Optional[Sequence[str]],
    performance: bool = False,
) -> AnalysisReport:
    diagnostics = check_program(
        program, edb=edb, query_predicates=query_predicates
    )
    if performance:
        from .cost import check_performance

        # D/E ids sort before P ids, so appending keeps rule-id order.
        diagnostics.extend(
            check_performance(program, edb=edb, query_predicates=query_predicates)
        )
    return AnalysisReport(
        kind=DATALOG,
        diagnostics=tuple(diagnostics),
        fragment=classify(program),
    )


def _analyze_datalog_text(
    text: str,
    edb: Optional[object],
    query_predicates: Optional[Sequence[str]],
    performance: bool = False,
) -> AnalysisReport:
    try:
        program = parse_program(text)
    except DatalogSyntaxError as error:
        span = (
            Span(error.line, error.column or 1, error.line, error.column or 1)
            if error.line is not None
            else None
        )
        diagnostic = Diagnostic("D000", ERROR, str(error), span=span)
        return AnalysisReport(kind=DATALOG, diagnostics=(diagnostic,))
    return _analyze_datalog(program, edb, query_predicates, performance)


def _analyze_elog(
    program: ElogProgram, concepts: Optional[ConceptRegistry]
) -> AnalysisReport:
    diagnostics = check_elog_program(program, concepts=concepts)
    return AnalysisReport(kind=ELOG, diagnostics=tuple(diagnostics))


def _analyze_elog_text(
    text: str, concepts: Optional[ConceptRegistry]
) -> AnalysisReport:
    try:
        program = parse_elog(text)
    except ElogSyntaxError as error:
        span = (
            Span(error.line, 1, error.line, 1)
            if error.line is not None
            else None
        )
        diagnostic = Diagnostic("E000", ERROR, str(error), span=span)
        return AnalysisReport(kind=ELOG, diagnostics=(diagnostic,))
    return _analyze_elog(program, concepts)

"""Static checks over (monadic) datalog programs: the ``D0xx`` rules.

Every check is grounded in machinery the engines already run — but where
the engines raise a bare error at compile time (or, worse, silently compute
an empty relation), these checks *explain*: which variable is unbound,
which cycle carries the negation, which predicate can never be derived.
See :data:`repro.analysis.diagnostics.RULE_CATALOG` for the id table and
docs/ANALYSIS.md for one example per rule.
"""

from __future__ import annotations

import difflib
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import Program, Rule, Span, get_span
from ..datalog.stratify import dependency_graph, is_stratifiable
from ..datalog.tree_edb import EXTENDED_BINARY, TAU_UR_BINARY, TAU_UR_UNARY
from .diagnostics import ERROR, INFO, WARNING, Diagnostic
from .fragments import classify

#: Comparison builtins the generic engine evaluates natively — never EDB,
#: never derivable, always "known" (mirrors ``SemiNaiveEngine.BUILTINS``).
BUILTIN_PREDICATES = frozenset({"lt", "le", "gt", "ge", "eq", "neq"})

#: The static tau_ur tree relations (label relations are ``label_<a>`` and
#: matched by prefix, since the alphabet is document-dependent).
TREE_EDB_PREDICATES = frozenset(TAU_UR_UNARY) | frozenset(TAU_UR_BINARY) | frozenset(
    EXTENDED_BINARY
)

#: Sentinel for "the EDB signature is the tau_ur tree signature".
TREE_SIGNATURE = "tree"


def _rule_name(rule: Rule) -> str:
    return f"the rule for {rule.head.predicate!r} ({rule})"


def _span(rule: Rule) -> Optional[Span]:
    return get_span(rule)


def _in_signature(predicate: str, signature: FrozenSet[str], tree: bool) -> bool:
    if predicate in signature:
        return True
    return tree and predicate.startswith("label_")


def check_program(
    program: Program,
    *,
    edb: "Optional[object]" = None,
    query_predicates: Optional[Sequence[str]] = None,
    fragment: bool = True,
) -> List[Diagnostic]:
    """All ``D0xx`` diagnostics for ``program``, in rule-id order.

    ``edb`` fixes the extensional signature the D004/D010 derivability
    checks trust: pass :data:`TREE_SIGNATURE` for the tau_ur tree relations
    (``label_*`` admitted by prefix) or an iterable of predicate names for
    a custom signature.  With ``edb=None`` both checks stay off — a
    ``Program``'s own ``edb_predicates`` declaration is not trusted,
    because the engines happily seed facts for *undeclared* predicates
    from the database at evaluation time, so "not declared" does not imply
    "never holds".  The tree signature is what catches the typos
    (``labell_i``) the unknown-predicate contract would hide.

    ``query_predicates`` enables the D007 reachability check (dead rules /
    IDB predicates relative to the queried heads).
    """
    diagnostics: List[Diagnostic] = []
    tree = edb == TREE_SIGNATURE
    if edb is None:
        signature = frozenset(program.edb_predicates)
    elif tree:
        signature = TREE_EDB_PREDICATES
    else:
        signature = frozenset(edb)  # type: ignore[arg-type]
    idb = {rule.head.predicate for rule in program.rules}

    diagnostics.extend(_check_safety(program))
    diagnostics.extend(_check_stratification(program))
    diagnostics.extend(_check_arities(program))
    if edb is not None:
        diagnostics.extend(_check_underived(program, idb, signature, tree))
    diagnostics.extend(_check_singletons(program))
    diagnostics.extend(_check_cartesian(program))
    diagnostics.extend(_check_dead_rules(program, idb, query_predicates))
    diagnostics.extend(_check_duplicates(program))
    diagnostics.extend(_check_edb_heads(program, signature, tree, edb is not None))
    if fragment:
        report = classify(program)
        diagnostics.append(
            Diagnostic("D008", INFO, report.verdict(), subject="fragment")
        )
    diagnostics.sort(key=lambda d: (d.rule_id, d.span.line if d.span else 0))
    return diagnostics


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_safety(program: Program) -> List[Diagnostic]:
    """D001: name exactly which variables the positive body fails to bind."""
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        if rule.is_safe():
            continue
        positive: Set = set()
        for atom in rule.positive_body():
            positive |= atom.variables()
        unbound_head = sorted(
            variable.name for variable in rule.head.variables() - positive
        )
        unbound_negative = sorted(
            {
                variable.name
                for atom in rule.negative_body()
                for variable in atom.variables() - positive
            }
            - set(unbound_head)
        )
        parts: List[str] = []
        if unbound_head:
            parts.append(f"head variable(s) {', '.join(unbound_head)}")
        if unbound_negative:
            parts.append(f"negated-body variable(s) {', '.join(unbound_negative)}")
        diagnostics.append(
            Diagnostic(
                "D001",
                ERROR,
                f"unsafe rule: {' and '.join(parts)} never occur in a positive "
                f"body atom in {_rule_name(rule)}",
                span=_span(rule),
                subject=rule.head.predicate,
            )
        )
    return diagnostics


def _negative_cycle(program: Program) -> Optional[List[Tuple[str, bool]]]:
    """A dependency cycle through a negative edge, as ``(predicate,
    edge-into-it-is-negated)`` pairs starting and ending at one predicate."""
    graph = dependency_graph(program)
    idb = program.idb_predicates()
    edges: Dict[str, Set[Tuple[str, bool]]] = {
        head: {(pred, neg) for pred, neg in deps if pred in idb}
        for head, deps in graph.items()
    }
    for start, deps in edges.items():
        for target, negated in deps:
            if not negated:
                continue
            # A negative edge start -> target closes a negative cycle iff
            # start is reachable from target.
            path = _path(edges, target, start)
            if path is not None:
                cycle = [(target, True)]
                cycle.extend(path)
                return cycle
    return None


def _path(
    edges: Dict[str, Set[Tuple[str, bool]]], source: str, goal: str
) -> Optional[List[Tuple[str, bool]]]:
    """A dependency path source ->* goal as (next predicate, negated) steps."""
    if source == goal:
        return []
    parents: Dict[str, Tuple[str, bool]] = {}
    frontier = [source]
    seen = {source}
    while frontier:
        current = frontier.pop()
        for neighbour, negated in edges.get(current, ()):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            parents[neighbour] = (current, negated)
            if neighbour == goal:
                path: List[Tuple[str, bool]] = []
                node = goal
                while node != source:
                    parent, edge_negated = parents[node]
                    path.append((node, edge_negated))
                    node = parent
                path.reverse()
                return path
            frontier.append(neighbour)
    return None


def _check_stratification(program: Program) -> List[Diagnostic]:
    """D002: report the precise negative cycle, not just "unstratifiable"."""
    if is_stratifiable(program):
        return []
    cycle = _negative_cycle(program)
    if cycle:
        start = cycle[-1][0]
        rendering = start
        for predicate, negated in cycle:
            arrow = "-[not]->" if negated else "->"
            rendering += f" {arrow} {predicate}"
        message = (
            "program is not stratifiable: negation occurs on the dependency "
            f"cycle {rendering}"
        )
        subject = start
    else:  # pragma: no cover - stratify and cycle search disagree
        message = "program is not stratifiable (negative cycle)"
        subject = ""
    return [Diagnostic("D002", ERROR, message, subject=subject)]


def _check_arities(program: Program) -> List[Diagnostic]:
    """D003: one predicate, one arity — heads and bodies together."""
    arities: Dict[str, Dict[int, Rule]] = defaultdict(dict)
    for rule in program.rules:
        arities[rule.head.predicate].setdefault(rule.head.arity, rule)
        for literal in rule.body:
            arities[literal.atom.predicate].setdefault(literal.atom.arity, rule)
    diagnostics: List[Diagnostic] = []
    for predicate in sorted(arities):
        seen = arities[predicate]
        if len(seen) < 2:
            continue
        rendered = ", ".join(f"{predicate}/{arity}" for arity in sorted(seen))
        witness = seen[sorted(seen)[-1]]
        diagnostics.append(
            Diagnostic(
                "D003",
                ERROR,
                f"predicate {predicate!r} is used with inconsistent arities "
                f"({rendered}); these denote disjoint relations and cannot "
                "join",
                span=_span(witness),
                subject=predicate,
            )
        )
    return diagnostics


def _check_underived(
    program: Program,
    idb: Set[str],
    signature: FrozenSet[str],
    tree: bool,
) -> List[Diagnostic]:
    """D004: body atoms nothing can ever derive (the typo catcher)."""
    diagnostics: List[Diagnostic] = []
    known = sorted(idb | signature | BUILTIN_PREDICATES)
    reported: Set[str] = set()
    for rule in program.rules:
        for literal in rule.body:
            predicate = literal.atom.predicate
            if (
                predicate in idb
                or predicate in BUILTIN_PREDICATES
                or _in_signature(predicate, signature, tree)
                or predicate in reported
            ):
                continue
            reported.add(predicate)
            suggestions = difflib.get_close_matches(predicate, known, n=1)
            hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            diagnostics.append(
                Diagnostic(
                    "D004",
                    ERROR,
                    f"body atom over {predicate!r} in {_rule_name(rule)} can "
                    "never hold: no rule derives it and it is not in the EDB "
                    f"signature{hint}",
                    span=_span(rule),
                    subject=predicate,
                )
            )
    return diagnostics


def _check_singletons(program: Program) -> List[Diagnostic]:
    """D005: variables used exactly once (likely typos; ``_``-names opt out)."""
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        # Count every occurrence, head and body alike.
        counts: Dict[str, int] = defaultdict(int)
        for term in rule.head.terms:
            if hasattr(term, "name"):
                counts[term.name] += 1
        for literal in rule.body:
            for term in literal.atom.terms:
                if hasattr(term, "name"):
                    counts[term.name] += 1
        singles = sorted(
            name for name, count in counts.items() if count == 1 and not name.startswith("_")
        )
        if singles:
            diagnostics.append(
                Diagnostic(
                    "D005",
                    WARNING,
                    f"variable(s) {', '.join(singles)} occur only once in "
                    f"{_rule_name(rule)}; prefix with '_' if intentional",
                    span=_span(rule),
                    subject=rule.head.predicate,
                )
            )
    return diagnostics


def _check_cartesian(program: Program) -> List[Diagnostic]:
    """D006: positive body atoms that share no variables multiply blindly.

    Mirrors the join structure :mod:`repro.datalog.plan` orders over: two
    variable-disjoint atom groups have no join key, so the plan enumerates
    their full cross product.
    """
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        atoms = [atom for atom in rule.positive_body() if atom.variables()]
        if len(atoms) < 2:
            continue
        component = list(range(len(atoms)))

        def find(index: int) -> int:
            while component[index] != index:
                component[index] = component[component[index]]
                index = component[index]
            return index

        for i in range(len(atoms)):
            for j in range(i + 1, len(atoms)):
                if atoms[i].variables() & atoms[j].variables():
                    component[find(i)] = find(j)
        groups: Dict[int, List[str]] = defaultdict(list)
        for index, atom in enumerate(atoms):
            groups[find(index)].append(str(atom))
        if len(groups) > 1:
            rendered = " x ".join(
                "{" + ", ".join(group) + "}" for group in groups.values()
            )
            diagnostics.append(
                Diagnostic(
                    "D006",
                    WARNING,
                    f"body of {_rule_name(rule)} is a cartesian product: the "
                    f"atom groups {rendered} share no variables",
                    span=_span(rule),
                    subject=rule.head.predicate,
                )
            )
    return diagnostics


def _check_dead_rules(
    program: Program,
    idb: Set[str],
    query_predicates: Optional[Sequence[str]],
) -> List[Diagnostic]:
    """D007: IDB predicates no queried head depends on (needs query preds)."""
    if not query_predicates:
        return []
    reachable: Set[str] = set()
    frontier = [
        predicate for predicate in query_predicates if predicate in idb
    ]
    reachable.update(frontier)
    by_head: Dict[str, List[Rule]] = defaultdict(list)
    for rule in program.rules:
        by_head[rule.head.predicate].append(rule)
    while frontier:
        predicate = frontier.pop()
        for rule in by_head.get(predicate, ()):
            for literal in rule.body:
                body_predicate = literal.atom.predicate
                if body_predicate in idb and body_predicate not in reachable:
                    reachable.add(body_predicate)
                    frontier.append(body_predicate)
    diagnostics: List[Diagnostic] = []
    for predicate in sorted(idb - reachable):
        witness = by_head[predicate][0]
        diagnostics.append(
            Diagnostic(
                "D007",
                WARNING,
                f"predicate {predicate!r} is never used: no query predicate "
                f"({', '.join(sorted(query_predicates))}) depends on it",
                span=_span(witness),
                subject=predicate,
            )
        )
    return diagnostics


def _check_duplicates(program: Program) -> List[Diagnostic]:
    """D009: textually identical rules (fixpoint-neutral, so likely a slip)."""
    seen: Dict[Rule, int] = {}
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        if rule in seen:
            diagnostics.append(
                Diagnostic(
                    "D009",
                    WARNING,
                    f"duplicate rule: {rule} appears more than once",
                    span=_span(rule),
                    subject=rule.head.predicate,
                )
            )
        else:
            seen[rule] = 1
    return diagnostics


def _check_edb_heads(
    program: Program,
    signature: FrozenSet[str],
    tree: bool,
    signature_declared: bool,
) -> List[Diagnostic]:
    """D010: a rule head over an extensional predicate redefines input data."""
    if not signature_declared:
        return []
    diagnostics: List[Diagnostic] = []
    reported: Set[str] = set()
    for rule in program.rules:
        predicate = rule.head.predicate
        if predicate in reported or not _in_signature(predicate, signature, tree):
            continue
        reported.add(predicate)
        diagnostics.append(
            Diagnostic(
                "D010",
                ERROR,
                f"{_rule_name(rule)} redefines the extensional predicate "
                f"{predicate!r}; EDB relations are supplied by the database "
                "and must not appear in rule heads",
                span=_span(rule),
                subject=predicate,
            )
        )
    return diagnostics

"""Static extraction of program texts embedded in Python source.

The repository's ``examples/`` scripts embed their datalog programs and
Elog wrappers as string constants.  :func:`scan_file` pulls those
constants out *without executing the file* — it walks the ``ast`` of the
source — so CI can run the analyzer over every example as a smoke gate
with no network, no browsers, no side effects.

A string constant is considered a program when it contains a rule
separator (``:-`` or ``<-``) and at least one line that starts like a rule
head (``name(...)``).  Docstrings are excluded.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple

from ..datalog.ast import Span
from .analyzer import analyze, sniff_kind
from .diagnostics import AnalysisReport

#: A line that opens a rule: ``name(`` ... ``)`` followed by ``:-``/``<-``
#: on the same or a later line (the head may close before the separator).
_HEAD_LINE = re.compile(r"^\s*[A-Za-z_][A-Za-z0-9_]*\s*\([^)]*\)\s*(:-|<-)")
_SEPARATOR = re.compile(r":-|<-")


@dataclass(frozen=True)
class ScannedProgram:
    """One program text found inside a Python source file."""

    path: str
    name: str  # the assigned variable name, or ``<line N>``
    line: int  # 1-based line of the string constant in the file
    kind: str  # "datalog" | "elog" (sniffed)
    text: str

    @property
    def label(self) -> str:
        return f"{self.path}:{self.name}"

    def map_span(self, span: Span) -> Span:
        """Map a snippet-relative span onto this file's coordinates.

        Line 1 of the embedded text is the line of the string literal's
        opening quote (triple-quoted program constants start with a
        newline, so their first rule line lands on ``self.line + 1``,
        exactly where an editor would jump to).  Columns are left alone:
        program constants are conventionally unindented.
        """
        shift = self.line - 1
        end_line = span.end_line + shift if span.end_line else span.end_line
        return Span(span.line + shift, span.column, end_line, span.end_column)


def looks_like_program(text: str) -> bool:
    """True when ``text`` plausibly is a datalog/Elog program."""
    if not _SEPARATOR.search(text):
        return False
    return any(_HEAD_LINE.match(line) for line in text.splitlines())


def _docstring_nodes(tree: ast.Module) -> set:
    """The ids of Constant nodes serving as docstrings."""
    nodes = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                nodes.add(id(body[0].value))
    return nodes


def _constant_name(tree: ast.Module, constant: ast.Constant) -> Optional[str]:
    """The variable name a top-level-ish assignment binds ``constant`` to."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is constant:
            targets = node.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                return targets[0].id
        if isinstance(node, ast.AnnAssign) and node.value is constant:
            if isinstance(node.target, ast.Name):
                return node.target.id
    return None


def scan_source(source: str, path: str = "<string>") -> List[ScannedProgram]:
    """All program-looking string constants in Python ``source``."""
    tree = ast.parse(source, filename=path)
    docstrings = _docstring_nodes(tree)
    found: List[ScannedProgram] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
            continue
        if id(node) in docstrings or not looks_like_program(node.value):
            continue
        name = _constant_name(tree, node) or f"<line {node.lineno}>"
        found.append(
            ScannedProgram(
                path=path,
                name=name,
                line=node.lineno,
                kind=sniff_kind(node.value),
                text=node.value,
            )
        )
    return found


def scan_file(path: str) -> List[ScannedProgram]:
    """All program-looking string constants in the Python file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return scan_source(handle.read(), path)


def _shift_into_file(
    scanned: ScannedProgram, report: AnalysisReport
) -> AnalysisReport:
    """Rebase a report's snippet-relative spans onto file coordinates."""
    if all(d.span is None for d in report.diagnostics):
        return report
    shifted = tuple(
        replace(d, span=scanned.map_span(d.span)) if d.span is not None else d
        for d in report.diagnostics
    )
    return replace(report, diagnostics=shifted)


def analyze_scanned(
    programs: Iterable[ScannedProgram],
    *,
    performance: bool = False,
) -> List[Tuple[ScannedProgram, AnalysisReport]]:
    """Analyze every scanned program (datalog ones against the tree EDB).

    Diagnostic spans are reported in the coordinates of the *enclosing
    Python file* — the snippet's line numbers are shifted by the string
    literal's position — so ``path:line`` output is clickable.
    ``performance=True`` adds the P-series adornment/cost findings for
    datalog snippets.
    """
    from .datalog_checks import TREE_SIGNATURE

    results: List[Tuple[ScannedProgram, AnalysisReport]] = []
    for scanned in programs:
        if scanned.kind == "datalog":
            report = analyze(
                scanned.text,
                kind="datalog",
                edb=TREE_SIGNATURE,
                performance=performance,
            )
        else:
            report = analyze(scanned.text, kind="elog")
        results.append((scanned, _shift_into_file(scanned, report)))
    return results

"""Command-line front end: ``python -m repro.analysis <file> [...]``.

* A ``.dl``/``.elog``/text file is analyzed as one program (language
  sniffed, or forced with ``--kind``).
* A ``.py`` file is *scanned*: every embedded program-looking string
  constant is analyzed (see :mod:`repro.analysis.scan`) — no code is
  executed.
* A directory is walked for ``*.py`` files and scanned likewise, which is
  how CI gates ``examples/``::

      python -m repro.analysis examples/

Exit status is 1 when any error-severity diagnostic was reported (with
``--strict``, warnings count too), 0 otherwise.  ``--json`` emits one JSON
document with a report per program for tooling.  ``--perf`` adds the
P-series adornment/cost checks; ``--explain`` switches to explain plans
(join orders, index advice, cardinality estimates) — there the exit
status is 1 only for unparseable programs (an Elog wrapper outside the
translatable core fragment is reported, not failed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .analyzer import DATALOG, ELOG, analyze
from .datalog_checks import TREE_SIGNATURE
from .diagnostics import AnalysisReport
from .scan import analyze_scanned, scan_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for datalog programs and Elog wrappers.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="program text file, Python file to scan, or directory of Python files",
    )
    parser.add_argument(
        "--kind",
        choices=(DATALOG, ELOG),
        default=None,
        help="force the program language for text files (default: sniff)",
    )
    parser.add_argument(
        "--edb",
        choices=("tree", "declared"),
        default="tree",
        help="EDB signature for datalog derivability checks: the tau_ur "
        "tree relations (default) or the program's own declaration",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON document instead of human-readable lines",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings as well as errors",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="also run the P-series adornment/cost performance checks",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        dest="explain",
        help="print explain plans (join orders, index advice, cardinality "
        "estimates) instead of diagnostics",
    )
    return parser


def _python_files(path: str) -> List[str]:
    files: List[str] = []
    for root, _dirs, names in os.walk(path):
        for name in sorted(names):
            if name.endswith(".py"):
                files.append(os.path.join(root, name))
    return files


def _collect(
    paths: List[str], kind: Optional[str], edb: str, performance: bool = False
) -> List[Tuple[str, AnalysisReport]]:
    signature = TREE_SIGNATURE if edb == "tree" else None
    reports: List[Tuple[str, AnalysisReport]] = []
    for path in paths:
        if os.path.isdir(path):
            for python_file in _python_files(path):
                for scanned, report in analyze_scanned(
                    scan_file(python_file), performance=performance
                ):
                    reports.append((scanned.label, report))
        elif path.endswith(".py"):
            for scanned, report in analyze_scanned(
                scan_file(path), performance=performance
            ):
                reports.append((scanned.label, report))
        else:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            reports.append(
                (
                    path,
                    analyze(
                        text, kind=kind, edb=signature, performance=performance
                    ),
                )
            )
    return reports


def _program_texts(paths: List[str]) -> List[Tuple[str, str]]:
    """(label, program text) for every program named by ``paths``."""
    texts: List[Tuple[str, str]] = []
    for path in paths:
        if os.path.isdir(path):
            for python_file in _python_files(path):
                for scanned in scan_file(python_file):
                    texts.append((scanned.label, scanned.text))
        elif path.endswith(".py"):
            for scanned in scan_file(path):
                texts.append((scanned.label, scanned.text))
        else:
            with open(path, "r", encoding="utf-8") as handle:
                texts.append((path, handle.read()))
    return texts


def _explain_main(options: "argparse.Namespace") -> int:
    """The ``--explain`` mode: plans instead of diagnostics."""
    from ..elog.to_mdatalog import ElogTranslationError
    from .explain import explain

    failures = 0
    payload: List[object] = []
    for label, text in _program_texts(options.paths):
        try:
            report = explain(text)
        except ElogTranslationError as error:
            # An Elog wrapper outside the translatable core fragment has no
            # datalog plan to show; that is a property of the program, not
            # a failure of this invocation.
            if options.as_json:
                payload.append({"name": label, "untranslatable": str(error)})
            else:
                print(f"explain {label}\nnot explainable: {error}\n")
            continue
        except Exception as error:  # unparseable / uncompilable program
            failures += 1
            if options.as_json:
                payload.append({"name": label, "error": str(error)})
            else:
                print(f"explain {label}\nerror: {error}\n")
            continue
        if options.as_json:
            entry = report.to_dict()
            entry["name"] = label
            payload.append(entry)
        else:
            print(report.render(label))
            print()
    if options.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    options = _build_parser().parse_args(argv)
    if options.explain:
        return _explain_main(options)
    reports = _collect(options.paths, options.kind, options.edb, options.perf)

    if options.as_json:
        payload = [json.loads(report.to_json(name)) for name, report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, report in reports:
            print(report.render(name))

    errors = sum(len(report.errors()) for _, report in reports)
    warnings = sum(len(report.warnings()) for _, report in reports)
    if not options.as_json:
        print(
            f"-- {len(reports)} program(s): {errors} error(s), "
            f"{warnings} warning(s)"
        )
    if errors or (options.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line front end: ``python -m repro.analysis <file> [...]``.

* A ``.dl``/``.elog``/text file is analyzed as one program (language
  sniffed, or forced with ``--kind``).
* A ``.py`` file is *scanned*: every embedded program-looking string
  constant is analyzed (see :mod:`repro.analysis.scan`) — no code is
  executed.
* A directory is walked for ``*.py`` files and scanned likewise, which is
  how CI gates ``examples/``::

      python -m repro.analysis examples/

Exit status is 1 when any error-severity diagnostic was reported (with
``--strict``, warnings count too), 0 otherwise.  ``--json`` emits one JSON
document with a report per program for tooling.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .analyzer import DATALOG, ELOG, analyze
from .datalog_checks import TREE_SIGNATURE
from .diagnostics import AnalysisReport
from .scan import analyze_scanned, scan_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for datalog programs and Elog wrappers.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="program text file, Python file to scan, or directory of Python files",
    )
    parser.add_argument(
        "--kind",
        choices=(DATALOG, ELOG),
        default=None,
        help="force the program language for text files (default: sniff)",
    )
    parser.add_argument(
        "--edb",
        choices=("tree", "declared"),
        default="tree",
        help="EDB signature for datalog derivability checks: the tau_ur "
        "tree relations (default) or the program's own declaration",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON document instead of human-readable lines",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings as well as errors",
    )
    return parser


def _python_files(path: str) -> List[str]:
    files: List[str] = []
    for root, _dirs, names in os.walk(path):
        for name in sorted(names):
            if name.endswith(".py"):
                files.append(os.path.join(root, name))
    return files


def _collect(
    paths: List[str], kind: Optional[str], edb: str
) -> List[Tuple[str, AnalysisReport]]:
    signature = TREE_SIGNATURE if edb == "tree" else None
    reports: List[Tuple[str, AnalysisReport]] = []
    for path in paths:
        if os.path.isdir(path):
            for python_file in _python_files(path):
                for scanned, report in analyze_scanned(scan_file(python_file)):
                    reports.append((scanned.label, report))
        elif path.endswith(".py"):
            for scanned, report in analyze_scanned(scan_file(path)):
                reports.append((scanned.label, report))
        else:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            reports.append(
                (path, analyze(text, kind=kind, edb=signature))
            )
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    options = _build_parser().parse_args(argv)
    reports = _collect(options.paths, options.kind, options.edb)

    if options.as_json:
        payload = [json.loads(report.to_json(name)) for name, report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, report in reports:
            print(report.render(name))

    errors = sum(len(report.errors()) for _, report in reports)
    warnings = sum(len(report.warnings()) for _, report in reports)
    if not options.as_json:
        print(
            f"-- {len(reports)} program(s): {errors} error(s), "
            f"{warnings} warning(s)"
        )
    if errors or (options.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Information pipes: wiring components into push-based pipelines.

Section 5: "The 'pipe flow' can model very complex unidirectional information
flows [...]  Components which are not on the boundaries of the network are
only activated by their neighboring components.  Boundary components (i.e.,
wrapper and deliverer components) have the ability to activate themselves
according to a user specified strategy and trigger the information processing
on behalf of the user."

:class:`InformationPipe` is a DAG of named components; running it activates
the source components and pushes the resulting XML documents through the
network in topological order.  :class:`TransformationServer` hosts several
pipes, keeps per-source state for change detection, and simulates periodic
activation (the scheduler advances a logical clock instead of sleeping).
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datalog.cache import CacheInfo
from ..datalog.registry import plan_registry_info
from ..distrib.envelope import TaskEnvelope
from ..distrib.executor import (
    DistribInfo,
    DistribStats,
    ProcessExecutor,
    resolve_distrib,
)
from ..distrib.journal import task_id_for
from ..resilience.policy import ON_ERROR_POLICIES, ErrorResult
from ..xmlgen.document import XmlElement
from .components import Component, DelivererComponent


class PipelineError(ValueError):
    """Raised on malformed pipe definitions (cycles, unknown components)."""


def _warn_imperative_wiring(method: str) -> None:
    warnings.warn(
        f"{method}() imperative wiring is deprecated; declare pipelines with "
        "repro.api.Pipeline.builder() (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class InformationPipe:
    """A DAG of components with XML hand-over along the edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._components: Dict[str, Component] = {}
        self._edges: Dict[str, List[str]] = defaultdict(list)   # component -> successors
        self._inputs: Dict[str, List[str]] = defaultdict(list)  # component -> predecessors
        self._order: Optional[List[str]] = None  # cached topological order
        self.last_results: Dict[str, XmlElement] = {}

    # -- construction ------------------------------------------------------
    #
    # The public ``add``/``connect``/``chain`` trio is the pre-façade,
    # imperative wiring surface; it still works but emits a
    # ``DeprecationWarning`` pointing at the declarative, build-time
    # validated ``repro.api.Pipeline.builder()`` (which assembles pipes
    # through the underscore internals below).

    def _add(self, component: Component) -> Component:
        if component.name in self._components:
            raise PipelineError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        self._order = None
        return component

    def _connect(self, source: str, target: str) -> None:
        for name in (source, target):
            if name not in self._components:
                raise PipelineError(f"unknown component {name!r}")
        self._edges[source].append(target)
        self._inputs[target].append(source)
        self._order = None

    def add(self, component: Component) -> Component:
        _warn_imperative_wiring("InformationPipe.add")
        return self._add(component)

    def connect(self, source: str, target: str) -> None:
        _warn_imperative_wiring("InformationPipe.connect")
        self._connect(source, target)

    def chain(self, *names: str) -> None:
        """Connect the named components in a linear chain."""
        _warn_imperative_wiring("InformationPipe.chain")
        for source, target in zip(names, names[1:]):
            self._connect(source, target)

    def component(self, name: str) -> Component:
        return self._components[name]

    def components(self) -> List[Component]:
        return list(self._components.values())

    def sources(self) -> List[str]:
        return [name for name in self._components if not self._inputs.get(name)]

    def deliverers(self) -> List[DelivererComponent]:
        return [c for c in self._components.values() if isinstance(c, DelivererComponent)]

    # -- execution -----------------------------------------------------------
    def _topological_order(self) -> List[str]:
        # The order is cached between runs (periodic server activation re-runs
        # an unchanged DAG every tick) and invalidated by add/connect.
        if self._order is not None:
            return self._order
        indegree = {name: len(self._inputs.get(name, [])) for name in self._components}
        frontier = [name for name, degree in indegree.items() if degree == 0]
        order: List[str] = []
        while frontier:
            name = frontier.pop()
            order.append(name)
            for successor in self._edges.get(name, []):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    frontier.append(successor)
        if len(order) != len(self._components):
            raise PipelineError(f"pipe {self.name!r} contains a cycle")
        self._order = order
        return order

    def run(self, *, executor=None) -> Dict[str, XmlElement]:
        """Activate the sources and push documents through the network.

        Returns the output document of every component (keyed by name).

        When ``executor`` (a :class:`concurrent.futures.Executor`) is
        given, every component exposing ``prefetch`` — the wrapper
        components — starts acquiring its page on it before the push
        begins, so the fetch I/O of later sources overlaps the extraction
        and transformation of earlier ones (the async-capable fetcher
        protocol of :mod:`repro.elog.extractor`).
        """
        results: Dict[str, XmlElement] = {}
        try:
            if executor is not None:
                # Inside the guard: a prefetch that raises mid-way (pool
                # already shut down, fetcher refusing) must discard the
                # futures it did manage to start.
                self.prefetch_sources(executor)
            for name in self._topological_order():
                component = self._components[name]
                inputs = [
                    results[predecessor] for predecessor in self._inputs.get(name, [])
                ]
                results[name] = component.process(inputs)
        except BaseException:
            # A failed run must not leave resolved futures behind: a later
            # activation consuming a minutes-old snapshot (or replaying a
            # transient fetch error) would defeat change detection.
            self.discard_prefetches()
            raise
        self.last_results = results
        return results

    def prefetch_sources(self, executor) -> None:
        """Start every prefetch-capable component's acquisition on
        ``executor`` (idempotent until the fetch is consumed)."""
        for component in self._components.values():
            prefetch = getattr(component, "prefetch", None)
            if prefetch is not None:
                prefetch(executor)

    def discard_prefetches(self) -> None:
        """Drop every unconsumed prefetch (see :meth:`run`'s abort path)."""
        for component in self._components.values():
            discard = getattr(component, "discard_prefetch", None)
            if discard is not None:
                discard()

    def run_and_get(self, component_name: str) -> XmlElement:
        return self.run()[component_name]


@dataclass
class ScheduledPipe:
    """A pipe plus its activation strategy (every ``period`` ticks)."""

    pipe: InformationPipe
    period: int = 1
    next_activation: int = 0


class TransformationServer:
    """A container hosting several information pipes.

    The server advances a logical clock; on every :meth:`tick`, pipes whose
    activation period has elapsed are run.  This models the periodic refresh
    strategies of Section 6.1 ("upgraded at periodic intervals ranging from a
    few seconds up to hours or days") without real-time waiting.
    """

    def __init__(self) -> None:
        self._pipes: Dict[str, ScheduledPipe] = {}
        self.clock: int = 0
        self.run_log: List[Tuple[int, str]] = []
        # Scale-out accounting for run_all(distrib=...) activations.
        self._distrib_stats = DistribStats()

    # -- registration ------------------------------------------------------
    def register(self, pipe: InformationPipe, period: int = 1) -> InformationPipe:
        if pipe.name in self._pipes:
            raise PipelineError(f"duplicate pipe name {pipe.name!r}")
        self._pipes[pipe.name] = ScheduledPipe(pipe=pipe, period=max(1, period))
        return pipe

    def pipe(self, name: str) -> InformationPipe:
        return self._pipes[name].pipe

    def pipes(self) -> List[str]:
        return sorted(self._pipes)

    # -- execution -----------------------------------------------------------
    def tick(self, steps: int = 1) -> List[str]:
        """Advance the clock; returns the names of the pipes that ran."""
        ran: List[str] = []
        for _ in range(steps):
            for name, scheduled in self._pipes.items():
                if self.clock >= scheduled.next_activation:
                    scheduled.pipe.run()
                    scheduled.next_activation = self.clock + scheduled.period
                    self.run_log.append((self.clock, name))
                    ran.append(name)
            self.clock += 1
        return ran

    def run_all(
        self, *, executor=None, on_error: str = "raise", distrib=None
    ) -> Dict[str, object]:
        """Run every registered pipe once, immediately.

        The runs go through the scheduler bookkeeping: each counts as the
        pipe's activation at the current clock (logged in ``run_log``) and
        pushes ``next_activation`` a full period out, so a following
        :meth:`tick` does not immediately double-run every pipe.

        With ``executor``, **every** pipe's wrapper components start their
        page fetches before the *first* pipe runs (one
        :meth:`InformationPipe.prefetch_sources` pass over all pipes), so
        acquisition I/O overlaps across the whole server, not just within
        one pipe.

        ``on_error`` isolates pipe failures from each other: ``"raise"``
        (the default, and the pre-resilience behaviour) aborts on the first
        failing pipe; ``"skip"`` drops the failed pipe from the results and
        runs the rest; ``"collect"`` puts an
        :class:`~repro.resilience.policy.ErrorResult` in the failed pipe's
        slot.  A failed pipe discards its own prefetched futures either way
        (see :meth:`InformationPipe.run`), so isolation never strands a
        minutes-old snapshot for a later activation.

        ``distrib`` (``"process"`` / a worker count /
        :class:`~repro.distrib.DistribOptions`) runs every pipe in a
        **worker process** instead — real CPU parallelism across pipes,
        with the distrib layer's crash recovery (a pipe whose worker dies
        is requeued; see docs/DISTRIB.md).  Each pipe travels to its
        worker by pickle; the parent applies the scheduler bookkeeping and
        caches each pipe's results in ``last_results``, but worker-side
        component *side effects* — deliverer sends, per-component fetch
        logs and fault-plan counters — happen in the worker and are not
        copied back.  An unpicklable pipe fails fast with a
        :class:`PipelineError` naming it (``Pipeline.build(
        distributable=True)`` catches this at build time, per stage).
        """
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"run_all(on_error={on_error!r}): expected one of {ON_ERROR_POLICIES}"
            )
        if distrib is not None:
            return self._run_all_distrib(on_error, resolve_distrib(distrib))
        results: Dict[str, object] = {}
        try:
            if executor is not None:
                for scheduled in self._pipes.values():
                    scheduled.pipe.prefetch_sources(executor)
            for name, scheduled in self._pipes.items():
                try:
                    results[name] = scheduled.pipe.run()
                except Exception as error:
                    if on_error == "raise":
                        raise
                    if on_error == "collect":
                        results[name] = ErrorResult.from_exception(
                            error, url=f"pipe:{name}", backend="pipe"
                        )
                scheduled.next_activation = self.clock + scheduled.period
                self.run_log.append((self.clock, name))
        except BaseException:
            # One failing pipe must not strand the later pipes' prefetched
            # futures — a future tick would extract stale snapshots.
            for scheduled in self._pipes.values():
                scheduled.pipe.discard_prefetches()
            raise
        return results

    def _run_all_distrib(self, on_error: str, options) -> Dict[str, object]:
        """The multi-process :meth:`run_all` body (one pipe per task)."""
        import pickle

        names = list(self._pipes)
        for name in names:
            try:
                pickle.dumps(self._pipes[name].pipe)
            except Exception as error:
                raise PipelineError(
                    f"pipe {name!r} cannot be distributed: it does not "
                    f"pickle ({type(error).__name__}: {error}).  Stages "
                    "holding lambdas, open handles or engine-bound state "
                    "must be rebuilt from declarative parts, or the pipe "
                    "run in-process"
                ) from error
        envelopes = [
            TaskEnvelope(
                task_id=task_id_for(index),
                index=index,
                kind="pipe",
                payload=self._pipes[name].pipe,
                payload_kind="pipe",
            )
            for index, name in enumerate(names)
        ]
        executor = ProcessExecutor(options, stats=self._distrib_stats)
        outcomes = executor.run(envelopes)
        results: Dict[str, object] = {}
        for name, outcome in zip(names, outcomes):
            scheduled = self._pipes[name]
            if outcome.ok:
                results[name] = outcome.result
                # The parent-side bookkeeping the in-process run() would
                # have done: later change detection and monitoring read
                # the pipe's last snapshot from here.
                scheduled.pipe.last_results = outcome.result
            elif on_error == "raise":
                raise outcome.error
            elif on_error == "collect":
                results[name] = ErrorResult.from_exception(
                    outcome.error, url=f"pipe:{name}", backend="pipe"
                )
            scheduled.next_activation = self.clock + scheduled.period
            self.run_log.append((self.clock, name))
        return results

    # -- monitoring ----------------------------------------------------------
    def resilience_report(self):
        """Per-component failure accounting across every hosted pipe
        (``"pipe/component"`` keys; see
        :func:`repro.server.monitoring.resilience_report`)."""
        from .monitoring import resilience_report

        return resilience_report(self)

    def plan_registry_info(self) -> CacheInfo:
        """Statistics of the process-wide compiled-program registry.

        Exposed next to the per-component fixpoint caches so server
        monitoring can assert that its hundreds of components over a
        handful of programs really paid a handful of compilations.
        """
        return plan_registry_info()

    def distrib_info(self) -> DistribInfo:
        """The server's scale-out accounting across every
        ``run_all(distrib=...)`` activation (dispatch / ack / requeue
        counters, worker crash events, per-worker compile counts)."""
        return self._distrib_stats.snapshot()

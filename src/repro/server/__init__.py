"""The Lixto Transformation Server: streaming integration of wrapped data."""

from .components import (
    Component,
    DatalogQueryComponent,
    DelivererComponent,
    Delivery,
    EmailDeliverer,
    FilterComponent,
    HtmlPortalDeliverer,
    IntegrationComponent,
    JoinComponent,
    RenameComponent,
    SmsDeliverer,
    SortComponent,
    TransformerComponent,
    WrapperComponent,
    XmlDeliverer,
    XmlSourceComponent,
)
from .monitoring import ChangeDetector, ChangeGatedDeliverer, ChangeReport
from .pipeline import InformationPipe, PipelineError, TransformationServer

__all__ = [
    "ChangeDetector",
    "ChangeGatedDeliverer",
    "ChangeReport",
    "Component",
    "DatalogQueryComponent",
    "DelivererComponent",
    "Delivery",
    "EmailDeliverer",
    "FilterComponent",
    "HtmlPortalDeliverer",
    "InformationPipe",
    "IntegrationComponent",
    "JoinComponent",
    "PipelineError",
    "RenameComponent",
    "SmsDeliverer",
    "SortComponent",
    "TransformationServer",
    "TransformerComponent",
    "WrapperComponent",
    "XmlDeliverer",
    "XmlSourceComponent",
]

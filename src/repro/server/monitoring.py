"""Source monitoring and change detection.

Section 5: "often source sites have to be monitored for changes, and changed
information has to be automatically extracted and processed"; Section 6.2:
"The system will send the actual flight status to the user by means of an SMS
message, but only if the status changed between consecutive requests."

:class:`ChangeDetector` keeps a fingerprint of the last XML snapshot per key
and reports added / removed / changed records between consecutive snapshots;
:class:`ChangeGatedDeliverer` wraps a deliverer so that it only fires when a
change was detected.

Degraded documents — outputs a resilient component served from its
last-good copy, marked ``stale="true"`` (see
:class:`repro.server.components.WrapperComponent`) — are *not* observed:
a stale snapshot carries no new information, so it must neither fire a
delivery nor perturb the detector's baseline.  :func:`resilience_report`
collects every component's failure accounting from a pipe or a whole
server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..xmlgen.document import XmlElement
from ..xmlgen.serializer import to_compact_xml
from .components import Component, DelivererComponent, Delivery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.policy import ResilienceInfo


def is_stale(document: XmlElement) -> bool:
    """Whether ``document`` is a degraded (served-stale) output."""
    return document.attributes.get("stale") == "true"


def resilience_report(target: object) -> "Dict[str, ResilienceInfo]":
    """Per-component failure accounting of a pipe or a whole server.

    ``target`` is anything with ``components()`` (an
    :class:`~repro.server.pipeline.InformationPipe`, a
    :class:`~repro.api.pipeline.Pipeline`) or with ``pipes()``/``pipe()``
    (a :class:`~repro.server.pipeline.TransformationServer`; keys are then
    ``"pipe/component"``).  Components without a resilience policy are
    omitted.
    """
    report: "Dict[str, ResilienceInfo]" = {}

    def collect(prefix: str, components) -> None:
        for component in components:
            info_of = getattr(component, "resilience_info", None)
            info = info_of() if info_of is not None else None
            if info is not None:
                report[prefix + component.name] = info

    pipes = getattr(target, "pipes", None)
    if pipes is not None and not hasattr(target, "components"):
        for name in pipes():
            collect(f"{name}/", target.pipe(name).components())
    else:
        collect("", target.components())
    return report


@dataclass
class ChangeReport:
    """The difference between two consecutive snapshots of a record set."""

    added: List[XmlElement] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[XmlElement] = field(default_factory=list)

    @property
    def has_changes(self) -> bool:
        return bool(self.added or self.removed or self.changed)

    def summary(self) -> str:
        return (
            f"{len(self.added)} added, {len(self.changed)} changed, "
            f"{len(self.removed)} removed"
        )


class ChangeDetector:
    """Record-level change detection keyed by a record's key element."""

    def __init__(self, record_name: str, key: str) -> None:
        self.record_name = record_name
        self.key = key
        self._previous: Dict[str, str] = {}

    def observe(self, document: XmlElement) -> ChangeReport:
        """Compare ``document`` with the previous snapshot and remember it."""
        current: Dict[str, Tuple[str, XmlElement]] = {}
        for record in document.iter(self.record_name):
            key_value = " ".join(record.findtext(self.key).split())
            current[key_value] = (to_compact_xml(record), record)
        report = ChangeReport()
        for key_value, (fingerprint, record) in current.items():
            if key_value not in self._previous:
                report.added.append(record)
            elif self._previous[key_value] != fingerprint:
                report.changed.append(record)
        for key_value in self._previous:
            if key_value not in current:
                report.removed.append(key_value)
        self._previous = {key: fingerprint for key, (fingerprint, _) in current.items()}
        return report


class ChangeGatedDeliverer(Component):
    """Forwards to an inner deliverer only when the snapshot changed.

    The first observation is treated as a baseline and (by default) not
    delivered — matching the flight application, where the user is notified
    only about *changes* of the status.
    """

    def __init__(
        self,
        name: str,
        inner: DelivererComponent,
        detector: ChangeDetector,
        deliver_initial: bool = False,
        message: Optional[Callable[[ChangeReport], str]] = None,
    ) -> None:
        super().__init__(name)
        self.inner = inner
        self.detector = detector
        self.deliver_initial = deliver_initial
        self.message = message
        self._seen_initial = False
        #: Activations skipped because the input was a served-stale copy.
        self.stale_skips = 0

    @property
    def deliveries(self) -> List[Delivery]:
        return self.inner.deliveries

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        document = inputs[0] if inputs else XmlElement(self.name)
        if is_stale(document):
            # Degraded output: the upstream source is down and this is its
            # last-good copy.  There is nothing new to deliver, and
            # observing it would churn the baseline (the root attribute is
            # invisible to record-level fingerprints, but record sets may
            # differ while the source flaps).  Pass it through untouched.
            self.stale_skips += 1
            return document
        report = self.detector.observe(document)
        is_initial = not self._seen_initial
        self._seen_initial = True
        should_deliver = report.has_changes and (self.deliver_initial or not is_initial)
        if should_deliver:
            if self.message is not None:
                summary = XmlElement("change")
                summary.text = self.message(report)
                self.inner.process([summary])
            else:
                changes = XmlElement("changes")
                for record in report.added + report.changed:
                    changes.append(record.copy())
                self.inner.process([changes])
        return document

"""Components of the Lixto Transformation Server.

Section 5: "The overall task of information processing is composed into
stages that can be used as building blocks for assembling an information
processing pipeline [...]  The stages are to (1) acquire the required content
from the source locations; (2) integrate it, (3) transform it, and (4)
deliver results to the end users.  The actual data flow within the
Transformation Server is realized by handing over XML documents."

Every component consumes XML documents (:class:`~repro.xmlgen.XmlElement`)
and produces an XML document; wrapper (source) components consume HTML
through a fetcher instead.  Components are plain Python objects so new stages
can be added by subclassing :class:`Component`.
"""

from __future__ import annotations

import html
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..datalog.options import DEFAULT_OPTIONS, UNSET, EngineOptions, resolve_options
from ..elog.ast import ElogProgram
from ..elog.extractor import (
    Extractor,
    ExtractorCache,
    Fetcher,
    PrefetchedFetcher,
    wrapper_fingerprint,
)
from ..resilience.policy import ResilienceInfo, ResiliencePolicy, ResilienceStats
from ..resilience.retry import ResilientFetcher, call_with_retry
from ..xmlgen.document import XmlElement
from ..xmlgen.serializer import to_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.registry import PlanRegistry
    from ..mdatalog.program import MonadicProgram
    from ..tree.document import Document


class Component:
    """Base class of all pipeline stages."""

    def __init__(self, name: str) -> None:
        self.name = name

    def process(self, inputs: List[XmlElement]) -> XmlElement:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


# ---------------------------------------------------------------------------
# Stage 1: acquisition (wrapper / source components)
# ---------------------------------------------------------------------------


#: Shared Elog interpreters, keyed by **program content** plus fetcher: N
#: wrapper components constructed over the same wrapper text and fetcher
#: reuse one Extractor — the same cross-component sharing the datalog side
#: gets from the compiled-plan registry.  Extraction state lives in the
#: per-run PatternInstanceBase, so one interpreter serves any number of
#: components.  The pre-PR-5 cache keyed by ``(id(program), id(fetcher))``
#: instead; :class:`repro.elog.extractor.ExtractorCache` documents why that
#: id()-reuse hazard (and the in-place-mutation staleness that comes with
#: mutable ``ElogProgram`` ASTs) demands content keys with verified hits.
#: Components that mutate their program *after* construction keep working:
#: ``WrapperComponent.process`` re-resolves its interpreter whenever its own
#: program's content has diverged from the shared interpreter's (a component
#: whose content-equal program object was aliased to a classmate's extractor
#: gets its own the moment it mutates) — though such callers should prefer
#: ``share_plans=False`` (a private interpreter) to content-keyed sharing.
_EXTRACTOR_CACHE: ExtractorCache = ExtractorCache(128)


def shared_extractor(program: ElogProgram, fetcher: Fetcher) -> Extractor:
    """One Elog interpreter per (program content, fetcher), process-wide."""
    return _EXTRACTOR_CACHE.get(program, fetcher)


class WrapperComponent(Component):
    """Acquires a page and runs an Elog wrapper over it (stage 1).

    This component resembles the Lixto Visual Wrapper embedded in the server:
    it is a boundary component that can activate itself (the scheduler calls
    :meth:`process` with no inputs).
    """

    def __init__(
        self,
        name: str,
        program: ElogProgram,
        fetcher: Fetcher,
        url: str,
        root_name: Optional[str] = None,
        share_interpreter: object = UNSET,
        *,
        options: Optional[EngineOptions] = None,
        extractor: Optional[Extractor] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        super().__init__(name)
        if share_interpreter is not UNSET:
            if options is not None:
                raise ValueError(
                    "WrapperComponent: pass either options=EngineOptions(...) "
                    "or the legacy share_interpreter kwarg, not both"
                )
            warnings.warn(
                "WrapperComponent(share_interpreter=...) is deprecated; pass "
                "options=EngineOptions(share_plans=...) instead (see docs/API.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            options = EngineOptions(share_plans=bool(share_interpreter))
        elif options is None:
            options = DEFAULT_OPTIONS
        self.program = program
        self.fetcher = fetcher
        self.url = url
        self.root_name = root_name or name
        # Resilience (optional): the fetch boundary is wrapped in a
        # ResilientFetcher (retry/backoff/deadline + per-host breaker), and
        # process() keeps the last successful output so a failing source
        # can be served stale instead of failing the pipe.  Without a
        # policy the component behaves exactly as before — no wrapper, no
        # stale copy, no accounting.
        self.resilience = resilience
        self._stats = ResilienceStats() if resilience is not None else None
        self._last_good: Optional[XmlElement] = None
        acquire: Optional[Fetcher] = fetcher
        if resilience is not None and fetcher is not None:
            acquire = ResilientFetcher(fetcher, resilience, stats=self._stats)
        self._acquire = acquire
        # One interpreter per (program, fetcher) pair for the server's
        # lifetime: periodic activations — and, with ``share_plans`` (the
        # default; the pre-façade spelling ``share_interpreter`` is a
        # deprecated alias) — every other component wrapping the same
        # program reuses the interpreter instead of rebuilding an Extractor
        # per run (extraction state lives in the per-run
        # PatternInstanceBase, so reuse is safe).  A pre-built interpreter
        # (``extractor=``, the :class:`repro.api.Session` path) wins over
        # both: sessions own their extractors.
        if extractor is not None:
            if resilience is not None and extractor.fetcher is not self._acquire:
                # A session-supplied interpreter carries the bare fetcher;
                # re-twin it (cheap, shares program/concepts/limits) so its
                # acquisition goes through the resilient wrapper too.
                extractor = extractor.with_fetcher(self._acquire)
            self._extractor = extractor
            self._extractor_aliased = False
        elif options.share_plans:
            self._extractor = shared_extractor(self.program, self._acquire)
            # A cache hit may wrap a classmate's content-equal program
            # object; only such aliased interpreters are ever re-resolved.
            self._extractor_aliased = True
        else:
            self._extractor = Extractor(self.program, fetcher=self._acquire)
            self._extractor_aliased = False
        self._pending_fetch = None

    def prefetch(self, executor) -> None:
        """Start acquiring this wrapper's page ahead of :meth:`process`.

        Uses the async-capable fetcher protocol
        (:meth:`repro.elog.extractor.Fetcher.fetch_async`): the page fetch
        runs on ``executor`` while upstream components still compute, and
        the next :meth:`process` call consumes the in-flight future instead
        of fetching synchronously.  Idempotent until consumed.  The fetch
        goes through the *active extractor's* fetcher — a caller-supplied
        ``extractor=`` may carry its own — so prefetched and plain runs
        always acquire from the same source.
        """
        if self._pending_fetch is None:
            fetcher = self._current_extractor().fetcher
            if fetcher is not None:
                self._pending_fetch = fetcher.fetch_async(self.url, executor)

    def _current_extractor(self) -> Extractor:
        """This component's interpreter, tracking its own program's content.

        Content-keyed sharing can hand a component an interpreter built
        around a classmate's content-equal program object; if this
        component's *own* program is later mutated, that shared interpreter
        would silently ignore the edit (the identity-keyed pre-PR-5 cache
        gave every program object its own interpreter instead).  Only
        cache-aliased interpreters are ever re-resolved: a caller-supplied
        ``extractor=`` (which may carry custom concepts/limits/fetcher)
        and a private ``share_plans=False`` interpreter always win, per the
        constructor contract.  The identity check is free for sharing via
        one program object; the fingerprint comparison only runs for
        aliased components whose contents diverged.  The per-activation
        re-serialisation is deliberate: caching the fingerprints would miss
        in-place rule edits (the AST carries no mutation counter), and two
        small-string passes are noise next to the page fetch and Elog
        fixpoint each activation already pays.
        """
        extractor = self._extractor
        if (
            self._extractor_aliased
            and extractor.program is not self.program
            and wrapper_fingerprint(self.program)
            != wrapper_fingerprint(extractor.program)
        ):
            extractor = shared_extractor(self.program, self._acquire)
            self._extractor = extractor
        return extractor

    def discard_prefetch(self) -> None:
        """Drop an unconsumed prefetch so no later activation extracts a
        stale snapshot (called when the run that scheduled it aborts)."""
        pending, self._pending_fetch = self._pending_fetch, None
        if pending is not None:
            pending.cancel()

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        pending, self._pending_fetch = self._pending_fetch, None
        extractor = self._current_extractor()
        if pending is not None:
            # Crawl targets beyond the start page fall through to the same
            # fetcher the plain (un-prefetched) run would use.
            extractor = extractor.with_fetcher(
                PrefetchedFetcher(extractor.fetcher, {self.url: pending})
            )
        try:
            result = extractor.extract_to_xml(url=self.url, root_name=self.root_name)
        except Exception:
            stale = self._stale_copy()
            if stale is not None:
                return stale
            raise
        result.attributes["source"] = self.url
        if self.resilience is not None and self.resilience.serve_stale:
            self._last_good = result.copy()
        return result

    def _stale_copy(self) -> Optional[XmlElement]:
        """The last-good output marked stale, or ``None`` if degradation is
        off (no policy, ``serve_stale=False``) or nothing good was seen."""
        if (
            self.resilience is None
            or not self.resilience.serve_stale
            or self._last_good is None
        ):
            return None
        self._stats.bump("stale_served")
        stale = self._last_good.copy()
        stale.attributes["stale"] = "true"
        return stale

    def resilience_info(self) -> Optional[ResilienceInfo]:
        """Failure accounting (``None`` when no policy is configured)."""
        return self._stats.snapshot() if self._stats is not None else None


class XmlSourceComponent(Component):
    """A source component fed by a callable returning XML (used in tests)."""

    def __init__(self, name: str, supplier: Callable[[], XmlElement]) -> None:
        super().__init__(name)
        self.supplier = supplier

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        return self.supplier()


class DatalogQueryComponent(Component):
    """Runs a monadic datalog wrapper over a document source (stage 1).

    The component holds one reusable
    :class:`~repro.mdatalog.evaluator.MonadicTreeEvaluator` whose fixpoint
    LRU is sized for the server's working set: periodic activations over a
    handful of hot documents (the ``supplier`` returning whichever document
    is current) all hit the cache and skip re-evaluation.  Matched nodes are
    rendered as one XML record per query predicate.
    """

    def __init__(
        self,
        name: str,
        program: "MonadicProgram",
        supplier: "Callable[[], Document]",
        root_name: Optional[str] = None,
        cache_size: object = UNSET,
        force_generic: object = UNSET,
        share_plans: object = UNSET,
        *,
        options: Optional[EngineOptions] = None,
        registry: Optional["PlanRegistry"] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        super().__init__(name)
        from ..mdatalog.evaluator import MonadicTreeEvaluator

        options = resolve_options(
            "DatalogQueryComponent",
            options,
            {
                "cache_size": cache_size,
                "force_generic": force_generic,
                "share_plans": share_plans,
            },
        )
        self.supplier = supplier
        self.root_name = root_name or name
        # The supplier is this component's acquisition boundary: with a
        # policy its call is retried, and the last good output can be
        # served stale when acquisition or evaluation fails.
        self.resilience = resilience
        self._stats = ResilienceStats() if resilience is not None else None
        self._last_good: Optional[XmlElement] = None
        self._evaluator = MonadicTreeEvaluator(
            program, options=options, registry=registry
        )

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        try:
            if self.resilience is not None:
                document = call_with_retry(
                    self.supplier,
                    self.resilience.retry,
                    label=f"supplier:{self.name}",
                    stats=self._stats,
                )
            else:
                document = self.supplier()
            matches = self._evaluator.evaluate(document)
        except Exception:
            if (
                self.resilience is not None
                and self.resilience.serve_stale
                and self._last_good is not None
            ):
                self._stats.bump("stale_served")
                stale = self._last_good.copy()
                stale.attributes["stale"] = "true"
                return stale
            raise
        result = XmlElement(self.root_name)
        for predicate in sorted(matches):
            # Document order is this component's output contract: downstream
            # change detection diffs the serialised XML, so the ordering is
            # enforced here at the boundary rather than assumed from the
            # evaluator (whose interface does not promise any order).
            # Sorting an already-sorted list is a linear pass.
            nodes = sorted(matches[predicate], key=lambda node: node.preorder_index)
            for node in nodes:
                record = result.add(predicate)
                record.attributes["node"] = str(node.preorder_index)
                record.attributes["label"] = node.label
        if self.resilience is not None and self.resilience.serve_stale:
            self._last_good = result.copy()
        return result

    def resilience_info(self) -> Optional[ResilienceInfo]:
        """Failure accounting (``None`` when no policy is configured)."""
        return self._stats.snapshot() if self._stats is not None else None

    def cache_info(self):
        """Fixpoint-cache statistics of the underlying evaluator."""
        return self._evaluator.fixpoint_cache_info()


# ---------------------------------------------------------------------------
# Stage 2: integration
# ---------------------------------------------------------------------------


class IntegrationComponent(Component):
    """Merges the XML documents of several upstream components (stage 2)."""

    def __init__(self, name: str, root_name: Optional[str] = None) -> None:
        super().__init__(name)
        self.root_name = root_name or name

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        merged = XmlElement(self.root_name)
        for document in inputs:
            merged.append(document.copy())
        return merged


class JoinComponent(Component):
    """Joins records from two upstream documents on a key element.

    Used e.g. by the "Now Playing" application to attach chart positions and
    lyrics to the currently playing song.
    """

    def __init__(
        self,
        name: str,
        record_name: str,
        other_record_name: str,
        key: str,
        other_key: Optional[str] = None,
        root_name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.record_name = record_name
        self.other_record_name = other_record_name
        self.key = key
        self.other_key = other_key or key
        self.root_name = root_name or name

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        if not inputs:
            return XmlElement(self.root_name)
        primary, *others = inputs
        result = XmlElement(self.root_name)
        other_records: List[XmlElement] = []
        for document in others:
            other_records.extend(document.iter(self.other_record_name))
        # Records without a key (missing or empty key element) cannot join:
        # indexing them under the normalised empty string would cross-join
        # every keyless record on both sides.  They are skipped on the other
        # side and passed through unjoined on the primary side.
        index: Dict[str, List[XmlElement]] = {}
        for record in other_records:
            key = self._key_of(record, self.other_key)
            if key:
                index.setdefault(key, []).append(record)
        for record in primary.iter(self.record_name):
            joined = record.copy()
            key = self._key_of(record, self.key)
            if key:
                for match in index.get(key, []):
                    joined.append(match.copy())
            result.append(joined)
        return result

    @staticmethod
    def _key_of(record: XmlElement, key: str) -> str:
        return " ".join(record.findtext(key).lower().split())


# ---------------------------------------------------------------------------
# Stage 3: transformation
# ---------------------------------------------------------------------------


class TransformerComponent(Component):
    """Applies a user function to the (single) upstream document (stage 3)."""

    def __init__(self, name: str, function: Callable[[XmlElement], XmlElement]) -> None:
        super().__init__(name)
        self.function = function

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        if not inputs:
            return XmlElement(self.name)
        return self.function(inputs[0])


class FilterComponent(Component):
    """Keeps only the records satisfying a predicate."""

    def __init__(
        self,
        name: str,
        record_name: str,
        predicate: Callable[[XmlElement], bool],
        root_name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.record_name = record_name
        self.predicate = predicate
        self.root_name = root_name or name

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        result = XmlElement(self.root_name)
        for document in inputs:
            for record in document.iter(self.record_name):
                if self.predicate(record):
                    result.append(record.copy())
        return result


class SortComponent(Component):
    """Sorts records by a key element (numeric when possible)."""

    def __init__(
        self,
        name: str,
        record_name: str,
        key: str,
        reverse: bool = False,
        numeric: bool = True,
        root_name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.record_name = record_name
        self.key = key
        self.reverse = reverse
        self.numeric = numeric
        self.root_name = root_name or name

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        from ..elog.concepts import parse_number

        records: List[XmlElement] = []
        for document in inputs:
            records.extend(record.copy() for record in document.iter(self.record_name))

        def sort_key(record: XmlElement):
            value = record.findtext(self.key)
            if self.numeric:
                number = parse_number(value)
                if number is not None:
                    return (0, number)
            return (1, value.lower())

        result = XmlElement(self.root_name)
        for record in sorted(records, key=sort_key, reverse=self.reverse):
            result.append(record)
        return result


class RenameComponent(Component):
    """Renames elements according to a mapping (e.g. to NITF element names)."""

    def __init__(self, name: str, mapping: Dict[str, str], root_name: Optional[str] = None) -> None:
        super().__init__(name)
        self.mapping = mapping
        self.root_name = root_name

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        if not inputs:
            return XmlElement(self.root_name or self.name)
        document = inputs[0].copy()
        for element in document.iter():
            if element.name in self.mapping:
                element.name = self.mapping[element.name]
        if self.root_name:
            document.name = self.root_name
        return document


# ---------------------------------------------------------------------------
# Stage 4: delivery
# ---------------------------------------------------------------------------


@dataclass
class Delivery:
    """One delivered message (channel, recipient, subject, body)."""

    channel: str
    recipient: str
    subject: str
    body: str


class DelivererComponent(Component):
    """Base class of boundary components that push results to users."""

    def __init__(self, name: str, channel: str, recipient: str) -> None:
        super().__init__(name)
        self.channel = channel
        self.recipient = recipient
        self.deliveries: List[Delivery] = []

    def process(self, inputs: List[XmlElement]) -> XmlElement:
        for document in inputs:
            self.deliveries.append(self.deliver(document))
        return inputs[0] if inputs else XmlElement(self.name)

    def deliver(self, document: XmlElement) -> Delivery:  # pragma: no cover
        raise NotImplementedError

    def last_delivery(self) -> Optional[Delivery]:
        return self.deliveries[-1] if self.deliveries else None


class XmlDeliverer(DelivererComponent):
    """Delivers the full XML document (e.g. to a downstream content system)."""

    def __init__(self, name: str, recipient: str = "downstream") -> None:
        super().__init__(name, channel="xml", recipient=recipient)

    def deliver(self, document: XmlElement) -> Delivery:
        return Delivery(self.channel, self.recipient, document.name, to_xml(document))


class SmsDeliverer(DelivererComponent):
    """Delivers a short text message (the flight-status application)."""

    def __init__(
        self,
        name: str,
        phone_number: str,
        summarise: Callable[[XmlElement], str],
    ) -> None:
        super().__init__(name, channel="sms", recipient=phone_number)
        self.summarise = summarise

    def deliver(self, document: XmlElement) -> Delivery:
        text = self.summarise(document)
        return Delivery(self.channel, self.recipient, "status update", text[:160])


class EmailDeliverer(DelivererComponent):
    """Delivers an e-mail style message."""

    def __init__(self, name: str, address: str, subject: str = "Lixto report") -> None:
        super().__init__(name, channel="email", recipient=address)
        self.subject = subject

    def deliver(self, document: XmlElement) -> Delivery:
        return Delivery(self.channel, self.recipient, self.subject, to_xml(document))


class HtmlPortalDeliverer(DelivererComponent):
    """Renders records into a small HTML portal page (mobile syndication)."""

    def __init__(self, name: str, record_name: str, fields: Sequence[str]) -> None:
        super().__init__(name, channel="html", recipient="portal")
        self.record_name = record_name
        self.fields = list(fields)
        self.page: str = ""

    def deliver(self, document: XmlElement) -> Delivery:
        # Field text is scraped content: a literal "<" or "&" must render as
        # data, never as markup injected into the portal page.
        rows = []
        for record in document.iter(self.record_name):
            cells = "".join(
                f"<td>{html.escape(record.findtext(field))}</td>"
                for field in self.fields
            )
            rows.append(f"<tr>{cells}</tr>")
        header = "".join(f"<th>{html.escape(field)}</th>" for field in self.fields)
        self.page = f"<html><body><table><tr>{header}</tr>{''.join(rows)}</table></body></html>"
        return Delivery(self.channel, self.recipient, self.record_name, self.page)

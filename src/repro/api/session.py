"""The Session: one front door to every evaluator of the reproduction.

A :class:`Session` is the façade's unit of ownership.  It holds

* one :class:`~repro.datalog.options.EngineOptions` applied to every
  evaluator it builds,
* its **own** :class:`~repro.datalog.registry.PlanRegistry` — compiled
  programs (strata, rule plans, trigger maps) are shared across the
  session's engines without touching the process-wide singleton, so two
  sessions never contend on module globals and dropping the session drops
  every compilation it paid for,
* an evaluator memo per (backend, program content, options) — the
  per-engine state (join-order memos, fixpoint LRUs) lives inside those
  memoised engines, and
* an Elog interpreter memo per (wrapper program, fetcher).

Everything evaluates through the backend registry
(:mod:`repro.api.backends`): callers pick ``"semi-naive"``, ``"monadic"``
or ``"automata"`` by name, or let the program's type choose.  Results come
back as the uniform :class:`~repro.api.results.QueryResult` /
:class:`~repro.api.results.ExtractionResult` views.

The batch entry points — :meth:`Session.query_many` and
:meth:`Session.extract_many` — are the server-style path: one compiled
program, one interpreter, streamed over many documents, so plan sharing
and the fixpoint LRUs do their work across the whole stream.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..datalog.cache import CacheInfo, LruMap
from ..datalog.options import DEFAULT_OPTIONS, EngineOptions
from ..datalog.registry import PlanRegistry
from ..elog.ast import ElogProgram
from ..elog.extractor import Extractor, Fetcher
from ..elog.parser import parse_elog
from ..tree.document import Document
from ..tree.node import Node
from .backends import EvaluatorBackend, backend_named, infer_backend
from .results import ExtractionResult, QueryResult


class Session:
    """A configured, stateful entry point over all evaluation layers.

    Parameters
    ----------
    options:
        The :class:`EngineOptions` applied to every evaluator the session
        builds (defaults to the stock options).
    registry:
        The compiled-program registry the session's engines share.  By
        default each session owns a private one; pass
        :func:`repro.datalog.shared_registry` to join the process-wide
        registry instead (several sessions amortising one compilation), or
        any other registry to share between chosen sessions.
    """

    #: Capacities of the session-level memos.  Bounded like every other
    #: server-scale cache in the stack (see :mod:`repro.datalog.cache`):
    #: a long-lived session streaming documents with ever-new label
    #: alphabets (automata backend) or wrapper texts must not grow without
    #: limit — an evicted evaluator merely recompiles through the
    #: registry on next use.
    MAX_EVALUATORS = 64
    MAX_EXTRACTORS = 64

    def __init__(
        self,
        options: Optional[EngineOptions] = None,
        *,
        registry: Optional[PlanRegistry] = None,
    ) -> None:
        self.options = options if options is not None else DEFAULT_OPTIONS
        self.registry = registry if registry is not None else PlanRegistry()
        self._evaluators: LruMap[Tuple[str, Hashable], object] = LruMap(
            self.MAX_EVALUATORS
        )
        self._extractors: LruMap[Hashable, Extractor] = LruMap(self.MAX_EXTRACTORS)
        self._parsed_wrappers: LruMap[str, ElogProgram] = LruMap(self.MAX_EXTRACTORS)
        # (backend name, program text) -> normalised program, so repeated
        # session.query(TEXT, ...) calls parse once, not per call.
        self._parsed_programs: LruMap[Tuple[str, str], object] = LruMap(
            self.MAX_EVALUATORS
        )
        self._backends_used: set = set()

    # ------------------------------------------------------------------
    # Evaluator construction (memoised per backend + program content)
    # ------------------------------------------------------------------
    def engine(
        self,
        program: object,
        backend: Optional[str] = None,
        *,
        labels: Optional[Iterable[str]] = None,
    ) -> object:
        """The session's (memoised) evaluator for ``program``.

        ``backend`` defaults by program type: datalog :class:`Program` →
        ``"semi-naive"``, :class:`MonadicProgram` → ``"monadic"``,
        :class:`TreeAutomaton` → ``"automata"``.  Program *text* needs an
        explicit backend name.  ``labels`` pins the label alphabet of the
        automata compilation — required here (only :meth:`query` can
        derive it from the queried document).
        """
        resolved, native, label_key = self._resolve(program, backend, labels)
        return self._memoised(resolved, native, label_key)

    def _memoised(
        self,
        resolved: EvaluatorBackend,
        native: object,
        label_key: Optional[Tuple[str, ...]],
    ) -> object:
        key = (resolved.name, resolved.cache_key(native, self.options, label_key))
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = resolved.build(native, self.options, self.registry, label_key)
            self._evaluators.put(key, evaluator)
            self._backends_used.add(resolved.name)
        return evaluator

    def _resolve(
        self,
        program: object,
        backend: Optional[str],
        labels: Optional[Iterable[str]],
        source: Optional[object] = None,
    ) -> Tuple[EvaluatorBackend, object, Optional[Tuple[str, ...]]]:
        resolved = backend_named(backend) if backend else infer_backend(program)
        if isinstance(program, str):
            memo_key = (resolved.name, program)
            native = self._parsed_programs.get(memo_key)
            if native is None:
                native = resolved.normalise(program)
                self._parsed_programs.put(memo_key, native)
        else:
            native = resolved.normalise(program)
        label_key: Optional[Tuple[str, ...]] = None
        if labels is not None:
            label_key = tuple(sorted(set(labels)))
        elif isinstance(source, Document):
            label_key = tuple(sorted(source.labels()))
        return resolved, native, label_key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        program: object,
        source: object,
        backend: Optional[str] = None,
        *,
        labels: Optional[Iterable[str]] = None,
    ) -> QueryResult:
        """Evaluate ``program`` over one source, uniformly wrapped.

        ``source`` is a ``{predicate: facts}`` database or a
        :class:`Document` (semi-naive accepts both; monadic and automata
        take documents).
        """
        resolved, native, label_key = self._resolve(program, backend, labels, source)
        return resolved.run(self._memoised(resolved, native, label_key), source)

    def query_many(
        self,
        program: object,
        sources: Sequence[object],
        backend: Optional[str] = None,
        *,
        labels: Optional[Iterable[str]] = None,
    ) -> List[QueryResult]:
        """The batch path: one compiled evaluator over a source stream.

        All sources run through a single memoised evaluator, so the
        compilation is paid once, the fixpoint LRU serves repeated
        documents, and (for the automata backend) one program covering the
        union of the documents' labels is compiled instead of one per
        document.
        """
        if labels is None:
            union: set = set()
            for source in sources:
                if isinstance(source, Document):
                    union.update(source.labels())
            labels = union or None
        # Resolve and normalise once for the whole stream — per-source
        # query() calls would re-parse text programs and recompute the
        # content cache key N times just to hit the same memo entry.
        resolved, native, label_key = self._resolve(program, backend, labels)
        evaluator = self._memoised(resolved, native, label_key)
        return [resolved.run(evaluator, source) for source in sources]

    def select(
        self,
        program: object,
        document: Document,
        predicate: str,
        backend: Optional[str] = None,
    ) -> Tuple[Node, ...]:
        """The nodes one predicate selects — shorthand over :meth:`query`."""
        return self.query(program, document, backend).nodes(predicate)

    # ------------------------------------------------------------------
    # Elog extraction
    # ------------------------------------------------------------------
    def wrapper(
        self,
        program: "ElogProgram | str",
        fetcher: Optional[Fetcher] = None,
    ) -> Extractor:
        """The session's (memoised) Elog interpreter for ``program``.

        Program text is parsed once per distinct text; ``ElogProgram``
        objects are keyed by identity (they are mutable ASTs — see
        :func:`repro.server.components.shared_extractor` for the
        rationale).  The sharing is deliberate in both directions:
        mutating the returned interpreter's program (e.g.
        ``session.wrapper(TEXT).program.mark_auxiliary(...)``) flows
        through to every later use of the same wrapper text in this
        session — callers that need a private copy should parse their own
        ``ElogProgram``.  One interpreter serves any number of
        extractions: per-run state lives in the
        :class:`~repro.elog.instance_base.PatternInstanceBase`.
        """
        if isinstance(program, str):
            parsed = self._parsed_wrappers.get(program)
            if parsed is None:
                parsed = parse_elog(program)
                self._parsed_wrappers.put(program, parsed)
            program = parsed
        key = (id(program), id(fetcher))
        extractor = self._extractors.get(key)
        if extractor is None:
            extractor = Extractor(program, fetcher=fetcher)
            self._extractors.put(key, extractor)
        return extractor

    def extract(
        self,
        program: "ElogProgram | str",
        document: Optional[Document] = None,
        *,
        documents: Optional[Sequence[Document]] = None,
        url: Optional[str] = None,
        fetcher: Optional[Fetcher] = None,
    ) -> ExtractionResult:
        """Run an Elog wrapper and return the uniform extraction result.

        Accepts any combination of a single ``document``, several
        ``documents`` and a start ``url`` (which requires ``fetcher``),
        exactly like :meth:`Extractor.extract`; the result's
        :meth:`~repro.api.results.ExtractionResult.to_xml` already knows
        the program's auxiliary patterns.
        """
        extractor = self.wrapper(program, fetcher)
        base = extractor.extract(document=document, documents=documents, url=url)
        return ExtractionResult(base, auxiliary=extractor.program.auxiliary_patterns)

    def extract_many(
        self,
        program: "ElogProgram | str",
        documents: Sequence[Document] = (),
        *,
        urls: Sequence[str] = (),
        fetcher: Optional[Fetcher] = None,
    ) -> List[ExtractionResult]:
        """The batch extraction path for server-style document streams.

        One interpreter — hence one parsed program, one set of compiled
        plans behind any datalog translation — serves the whole stream;
        each document (or fetched URL) yields its own
        :class:`ExtractionResult`.
        """
        extractor = self.wrapper(program, fetcher)
        auxiliary = extractor.program.auxiliary_patterns
        results = [
            ExtractionResult(extractor.extract(document=doc), auxiliary=auxiliary)
            for doc in documents
        ]
        results.extend(
            ExtractionResult(extractor.extract(url=url), auxiliary=auxiliary)
            for url in urls
        )
        return results

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------
    def pipeline(self, name: str = "pipeline"):
        """A :class:`~repro.api.pipeline.PipelineBuilder` bound to this
        session (its wrapper/query stages reuse the session's interpreters,
        options and plan registry)."""
        from .pipeline import PipelineBuilder

        return PipelineBuilder(name, session=self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def plan_registry_info(self) -> CacheInfo:
        """Hit/miss statistics of the session-owned compiled-plan registry."""
        return self.registry.info()

    def info(self) -> Dict[str, object]:
        """A monitoring snapshot of everything the session owns."""
        return {
            "options": self.options,
            "backends": set(self._backends_used),
            "evaluators": len(self._evaluators),
            "extractors": len(self._extractors),
            "plan_registry": self.registry.info(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(evaluators={len(self._evaluators)}, "
            f"extractors={len(self._extractors)}, options={self.options})"
        )

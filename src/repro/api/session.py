"""The Session: one front door to every evaluator of the reproduction.

A :class:`Session` is the façade's unit of ownership.  It holds

* one :class:`~repro.datalog.options.EngineOptions` applied to every
  evaluator it builds,
* its **own** :class:`~repro.datalog.registry.PlanRegistry` — compiled
  programs (strata, rule plans, trigger maps) are shared across the
  session's engines without touching the process-wide singleton, so two
  sessions never contend on module globals and dropping the session drops
  every compilation it paid for,
* an evaluator memo per (backend, program content, options) — the
  per-engine state (join-order memos, fixpoint LRUs) lives inside those
  memoised engines, and
* an Elog interpreter memo per (wrapper program, fetcher).

Everything evaluates through the backend registry
(:mod:`repro.api.backends`): callers pick ``"semi-naive"``, ``"monadic"``
or ``"automata"`` by name, or let the program's type choose.  Results come
back as the uniform :class:`~repro.api.results.QueryResult` /
:class:`~repro.api.results.ExtractionResult` views.

The batch entry points — :meth:`Session.query_many` and
:meth:`Session.extract_many` — are the server-style path: one compiled
program, one interpreter, streamed over many documents, so plan sharing
and the fixpoint LRUs do their work across the whole stream.  Both accept
``max_workers=`` to run the stream on a thread pool, and the ``urls=``
extraction path overlaps fetching with evaluation through the
async-capable fetcher protocol (:meth:`repro.elog.extractor.Fetcher.
fetch_async`).

Thread safety: one ``Session`` is safe to share across the request threads
of a server front end.  Every session-scale cache locks internally
(:mod:`repro.datalog.cache`), and the evaluator/extractor/parse memos are
built under :class:`~repro.datalog.cache.SingleFlight` coordination, so
concurrent :meth:`Session.engine` / :meth:`Session.wrapper` calls over one
cold key construct exactly one instance (see docs/API.md, "Thread safety &
concurrency").
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..analysis.analyzer import ELOG, analyze as _analyze_program, sniff_kind
from ..analysis.datalog_checks import TREE_SIGNATURE
from ..analysis.diagnostics import AnalysisReport, apply_policy
from ..datalog.ast import Program
from ..datalog.cache import CacheInfo, LruMap, SingleFlight
from ..datalog.engine import EngineInfo, aggregate_engine_info
from ..datalog.options import DEFAULT_OPTIONS, EngineOptions
from ..datalog.parser import DatalogSyntaxError
from ..datalog.registry import PlanRegistry, program_fingerprint
from ..distrib.envelope import TaskEnvelope
from ..distrib.executor import (
    DistribInfo,
    DistribOptions,
    DistribStats,
    ProcessExecutor,
    resolve_distrib,
)
from ..distrib.journal import task_id_for
from ..elog.ast import ElogProgram
from ..elog.extractor import (
    Extractor,
    ExtractorCache,
    Fetcher,
    PrefetchedFetcher,
    wrapper_fingerprint,
)
from ..elog.parser import ElogSyntaxError, parse_elog
from ..mdatalog.program import MonadicProgram
from ..resilience.policy import (
    ON_ERROR_POLICIES,
    ErrorResult,
    ResilienceInfo,
    ResiliencePolicy,
    ResilienceStats,
)
from ..resilience.retry import ResilientFetcher
from ..tree.document import Document
from ..tree.node import Node
from .backends import EvaluatorBackend, backend_named, infer_backend
from .results import ExtractionResult, QueryResult


class Session:
    """A configured, stateful entry point over all evaluation layers.

    Parameters
    ----------
    options:
        The :class:`EngineOptions` applied to every evaluator the session
        builds (defaults to the stock options).
    registry:
        The compiled-program registry the session's engines share.  By
        default each session owns a private one; pass
        :func:`repro.datalog.shared_registry` to join the process-wide
        registry instead (several sessions amortising one compilation), or
        any other registry to share between chosen sessions.
    resilience:
        An optional :class:`~repro.resilience.policy.ResiliencePolicy`.
        When set, every fetch the session performs on a caller's behalf
        (``extract``/``extract_many``) goes through a
        :class:`~repro.resilience.retry.ResilientFetcher` (retry, backoff,
        deadline, per-host circuit breaking), the policy's ``on_error``
        becomes the default batch error policy, and all failure accounting
        aggregates into :meth:`resilience_info`.  Without a policy the
        session behaves exactly as before.
    """

    #: Capacities of the session-level memos.  Bounded like every other
    #: server-scale cache in the stack (see :mod:`repro.datalog.cache`):
    #: a long-lived session streaming documents with ever-new label
    #: alphabets (automata backend) or wrapper texts must not grow without
    #: limit — an evicted evaluator merely recompiles through the
    #: registry on next use.
    MAX_EVALUATORS = 64
    MAX_EXTRACTORS = 64
    MAX_ANALYSES = 64

    def __init__(
        self,
        options: Optional[EngineOptions] = None,
        *,
        registry: Optional[PlanRegistry] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.options = options if options is not None else DEFAULT_OPTIONS
        self.registry = registry if registry is not None else PlanRegistry()
        self.resilience = resilience
        # One stats sink for the whole session: every resilient fetcher the
        # session wraps, and every isolated batch error, reports here.
        self._resilience_stats = ResilienceStats()
        # Likewise for the multi-process batch paths (workers=): dispatch /
        # ack / requeue counters and per-worker compile accounting.
        self._distrib_stats = DistribStats()
        self._evaluators: LruMap[Tuple[str, Hashable], object] = LruMap(
            self.MAX_EVALUATORS
        )
        self._extractors: ExtractorCache = ExtractorCache(self.MAX_EXTRACTORS)
        self._parsed_wrappers: LruMap[str, ElogProgram] = LruMap(self.MAX_EXTRACTORS)
        # (backend name, program text) -> normalised program, so repeated
        # session.query(TEXT, ...) calls parse once, not per call.
        self._parsed_programs: LruMap[Tuple[str, str], object] = LruMap(
            self.MAX_EVALUATORS
        )
        self._backends_used: set = set()
        # Elog analysis reports, keyed by wrapper content fingerprint (the
        # datalog side caches in the registry's analysis store instead, so
        # content-equal programs across engines share one report).
        self._elog_analyses: LruMap[Hashable, AnalysisReport] = LruMap(
            self.MAX_ANALYSES
        )
        # Per-key build coordination for every memo above: the caches lock
        # their own structure, the flight guarantees at most one evaluator /
        # parsed program is ever *constructed* per key under concurrency.
        self._flight = SingleFlight()

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def _resolve_on_error(self, on_error: Optional[str]) -> str:
        """An explicit ``on_error=`` wins; otherwise the session policy's
        default applies (``"raise"`` without a policy)."""
        if on_error is None:
            return self.resilience.on_error if self.resilience is not None else "raise"
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error={on_error!r}: expected one of {ON_ERROR_POLICIES}"
            )
        return on_error

    def _resilient(self, fetcher: Optional[Fetcher]) -> Optional[Fetcher]:
        """``fetcher`` hardened under the session policy (pass-through when
        no policy or no fetcher).  A fresh wrapper per call: retry state is
        call-local, while the accounting aggregates into the session-wide
        stats sink."""
        if fetcher is None or self.resilience is None:
            return fetcher
        return ResilientFetcher(
            fetcher, self.resilience, stats=self._resilience_stats
        )

    def _isolated(
        self,
        error: BaseException,
        *,
        index: int,
        url: Optional[str] = None,
        backend: str = "error",
    ) -> ErrorResult:
        self._resilience_stats.bump("errors_isolated")
        return ErrorResult.from_exception(error, index=index, url=url, backend=backend)

    # ------------------------------------------------------------------
    # Evaluator construction (memoised per backend + program content)
    # ------------------------------------------------------------------
    def engine(
        self,
        program: object,
        backend: Optional[str] = None,
        *,
        labels: Optional[Iterable[str]] = None,
    ) -> object:
        """The session's (memoised) evaluator for ``program``.

        ``backend`` defaults by program type: datalog :class:`Program` →
        ``"semi-naive"``, :class:`MonadicProgram` → ``"monadic"``,
        :class:`TreeAutomaton` → ``"automata"``.  Program *text* needs an
        explicit backend name.  ``labels`` pins the label alphabet of the
        automata compilation — required here (only :meth:`query` can
        derive it from the queried document).
        """
        resolved, native, label_key = self._resolve(program, backend, labels)
        self._enforce_diagnostics(resolved, native)
        return self._memoised(resolved, native, label_key)

    def _memoised(
        self,
        resolved: EvaluatorBackend,
        native: object,
        label_key: Optional[Tuple[str, ...]],
    ) -> object:
        key = (resolved.name, resolved.cache_key(native, self.options, label_key))

        def store(evaluator: object) -> None:
            self._evaluators.put(key, evaluator)
            self._backends_used.add(resolved.name)

        # Single-flight: N request threads hitting one cold key pay one
        # compilation and share the one evaluator it produced.
        return self._flight.run(
            ("evaluator", key),
            lambda: self._evaluators.get(key),
            lambda: resolved.build(native, self.options, self.registry, label_key),
            store,
        )

    def _resolve(
        self,
        program: object,
        backend: Optional[str],
        labels: Optional[Iterable[str]],
        source: Optional[object] = None,
    ) -> Tuple[EvaluatorBackend, object, Optional[Tuple[str, ...]]]:
        resolved = backend_named(backend) if backend else infer_backend(program)
        if isinstance(program, str):
            memo_key = (resolved.name, program)
            native = self._flight.run(
                ("parse", memo_key),
                lambda: self._parsed_programs.get(memo_key),
                lambda: resolved.normalise(program),
                lambda parsed: self._parsed_programs.put(memo_key, parsed),
            )
        else:
            native = resolved.normalise(program)
        label_key: Optional[Tuple[str, ...]] = None
        if labels is not None:
            label_key = tuple(sorted(set(labels)))
        elif isinstance(source, Document):
            label_key = tuple(sorted(source.labels()))
        return resolved, native, label_key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        program: object,
        source: object,
        backend: Optional[str] = None,
        *,
        labels: Optional[Iterable[str]] = None,
    ) -> QueryResult:
        """Evaluate ``program`` over one source, uniformly wrapped.

        ``source`` is a ``{predicate: facts}`` database or a
        :class:`Document` (semi-naive accepts both; monadic and automata
        take documents).
        """
        resolved, native, label_key = self._resolve(program, backend, labels, source)
        self._enforce_diagnostics(resolved, native)
        return resolved.run(self._memoised(resolved, native, label_key), source)

    def query_many(
        self,
        program: object,
        sources: Iterable[object],
        backend: Optional[str] = None,
        *,
        labels: Optional[Iterable[str]] = None,
        max_workers: Optional[int] = None,
        on_error: Optional[str] = None,
        workers: Optional[object] = None,
    ) -> List[QueryResult]:
        """The batch path: one compiled evaluator over a source stream.

        All sources run through a single memoised evaluator, so the
        compilation is paid once, the fixpoint LRU serves repeated
        documents, and (for the automata backend) one program covering the
        union of the documents' labels is compiled instead of one per
        document.

        ``max_workers`` > 1 evaluates the stream on a thread pool (result
        order still matches ``sources``).  Evaluation is safe to fan out —
        per-call state is call-local and the shared caches lock — but it is
        CPU-bound Python, so threads pay the GIL; the pool buys the most
        when sources hit the fixpoint LRU unevenly or the caller's fetcher
        / supplier does I/O.

        ``on_error`` isolates per-source failures: ``"raise"`` (default)
        aborts the batch on the first failure, ``"skip"`` drops failed
        slots, ``"collect"`` yields an
        :class:`~repro.resilience.policy.ErrorResult` in the failed slot
        (result order still matches ``sources``).  A session constructed
        with ``resilience=`` defaults to its policy's ``on_error``.

        ``workers`` scales *out*: ``"process"``, a worker count, or a
        :class:`~repro.distrib.DistribOptions` runs the batch on worker
        **processes** through the distrib subsystem (real CPU parallelism,
        durable journal, crash recovery — see docs/DISTRIB.md); the
        ``on_error`` slot semantics are unchanged.  ``sources`` may also be
        a generator: the stream feeds a bounded dispatch window instead of
        being materialised (label-union derivation then needs an explicit
        ``labels=`` for the automata backend).
        """
        on_error = self._resolve_on_error(on_error)
        if workers is not None:
            return self._query_many_process(
                program,
                sources,
                backend,
                labels=labels,
                on_error=on_error,
                distrib=resolve_distrib(workers),
            )
        if not isinstance(sources, Sequence):
            return self._query_many_stream(
                program,
                sources,
                backend,
                labels=labels,
                max_workers=max_workers,
                on_error=on_error,
            )
        if labels is None:
            union: set = set()
            for source in sources:
                if isinstance(source, Document):
                    union.update(source.labels())
            labels = union or None
        # Resolve and normalise once for the whole stream — per-source
        # query() calls would re-parse text programs and recompute the
        # content cache key N times just to hit the same memo entry.
        resolved, native, label_key = self._resolve(program, backend, labels)
        self._enforce_diagnostics(resolved, native)
        evaluator = self._memoised(resolved, native, label_key)
        parallel = max_workers is not None and max_workers > 1 and len(sources) > 1
        if on_error == "raise":
            # The pre-resilience fast path, byte-for-byte.
            if parallel:
                with ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="repro-query"
                ) as pool:
                    return list(
                        pool.map(
                            lambda source: resolved.run(evaluator, source), sources
                        )
                    )
            return [resolved.run(evaluator, source) for source in sources]

        def guarded(index: int, source: object) -> QueryResult:
            try:
                return resolved.run(evaluator, source)
            except Exception as error:
                return self._isolated(error, index=index, backend=resolved.name)

        if parallel:
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-query"
            ) as pool:
                slots = list(
                    pool.map(lambda pair: guarded(*pair), enumerate(sources))
                )
        else:
            slots = [guarded(index, source) for index, source in enumerate(sources)]
        if on_error == "skip":
            return [slot for slot in slots if not isinstance(slot, ErrorResult)]
        return slots

    def _query_many_stream(
        self,
        program: object,
        sources: Iterable[object],
        backend: Optional[str],
        *,
        labels: Optional[Iterable[str]],
        max_workers: Optional[int],
        on_error: str,
    ) -> List[QueryResult]:
        """:meth:`query_many` over a generator: one source in memory at a
        time (sequential) or a bounded thread-pool dispatch window
        (``max_workers * 4`` submissions in flight), never the whole batch.
        No label-union pass — that would consume the stream — so the
        automata backend needs an explicit ``labels=`` here."""
        resolved, native, label_key = self._resolve(program, backend, labels)
        self._enforce_diagnostics(resolved, native)
        evaluator = self._memoised(resolved, native, label_key)

        def evaluate(index: int, source: object) -> QueryResult:
            if on_error == "raise":
                return resolved.run(evaluator, source)
            try:
                return resolved.run(evaluator, source)
            except Exception as error:
                return self._isolated(error, index=index, backend=resolved.name)

        slots: List[QueryResult] = []
        if max_workers is not None and max_workers > 1:
            window = max_workers * 4
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-query"
            ) as pool:
                jobs: deque = deque()
                for index, source in enumerate(sources):
                    jobs.append(pool.submit(evaluate, index, source))
                    if len(jobs) >= window:
                        slots.append(jobs.popleft().result())
                while jobs:
                    slots.append(jobs.popleft().result())
        else:
            slots = [
                evaluate(index, source) for index, source in enumerate(sources)
            ]
        if on_error == "skip":
            return [slot for slot in slots if not isinstance(slot, ErrorResult)]
        return slots

    def _query_many_process(
        self,
        program: object,
        sources: Iterable[object],
        backend: Optional[str],
        *,
        labels: Optional[Iterable[str]],
        on_error: str,
        distrib: DistribOptions,
    ) -> List[QueryResult]:
        """:meth:`query_many` on worker processes (the distrib subsystem).

        The program is resolved (and its diagnostics enforced) in the
        parent, then shipped as source/AST — never compiled plans — and
        re-hydrated through each worker's own registry, fingerprint-
        verified.  Sequences still get the automata label-union pass;
        generators stream straight into the executor's bounded window.
        """
        if labels is None and isinstance(sources, Sequence):
            union: set = set()
            for source in sources:
                if isinstance(source, Document):
                    union.update(source.labels())
            labels = union or None
        resolved, native, label_key = self._resolve(program, backend, labels)
        self._enforce_diagnostics(resolved, native)
        fingerprint = (
            program_fingerprint(native) if isinstance(native, Program) else None
        )

        def envelopes() -> Iterable[TaskEnvelope]:
            for index, source in enumerate(sources):
                yield TaskEnvelope(
                    task_id=task_id_for(index),
                    index=index,
                    kind="query",
                    program=native,
                    fingerprint=fingerprint,
                    backend=resolved.name,
                    labels=label_key,
                    options=self.options,
                    resilience=self.resilience,
                    payload=source,
                    payload_kind=(
                        "document" if isinstance(source, Document) else "database"
                    ),
                )

        executor = ProcessExecutor(distrib, stats=self._distrib_stats)
        outcomes = executor.run(envelopes())
        return self._collect_outcomes(outcomes, on_error, backend=resolved.name)

    def _collect_outcomes(
        self, outcomes, on_error: str, *, backend: str
    ) -> List[QueryResult]:
        """Distrib results back into batch-slot semantics.

        ``"raise"`` re-raises the lowest-index failure (the distributed
        batch has already drained — workers evaluate independently, so
        "abort on first failure" means "fail with the first slot's
        error"); ``"skip"`` / ``"collect"`` mirror the thread paths,
        including the :meth:`_isolated` accounting.
        """
        slots: List[QueryResult] = []
        for outcome in outcomes:
            if outcome.ok:
                slots.append(outcome.result)
            elif on_error == "raise":
                raise outcome.error
            else:
                slots.append(
                    self._isolated(
                        outcome.error,
                        index=outcome.index,
                        url=outcome.url,
                        backend=backend,
                    )
                )
        if on_error == "skip":
            return [slot for slot in slots if not isinstance(slot, ErrorResult)]
        return slots

    def select(
        self,
        program: object,
        document: Document,
        predicate: str,
        backend: Optional[str] = None,
    ) -> Tuple[Node, ...]:
        """The nodes one predicate selects — shorthand over :meth:`query`."""
        return self.query(program, document, backend).nodes(predicate)

    # ------------------------------------------------------------------
    # Elog extraction
    # ------------------------------------------------------------------
    def wrapper(
        self,
        program: "ElogProgram | str",
        fetcher: Optional[Fetcher] = None,
    ) -> Extractor:
        """The session's (memoised) Elog interpreter for ``program``.

        Program text is parsed once per distinct text; interpreters are
        keyed by **program content** (rule text + auxiliary patterns, see
        :func:`repro.elog.extractor.wrapper_fingerprint`) plus the fetcher,
        so content-equal programs share one interpreter and a recycled
        ``id()`` can never serve a stranger's interpreter (the pre-PR-5
        identity keys could).  Mutating the returned interpreter's program
        (e.g. ``session.wrapper(TEXT).program.mark_auxiliary(...)``) still
        flows through to every later use of the same wrapper text in this
        session — the parse memo returns the same (now mutated) program
        object, whose moved fingerprint builds a fresh interpreter around
        it — while callers that need a private copy should parse their own
        ``ElogProgram``.  One interpreter serves any number of
        extractions: per-run state lives in the
        :class:`~repro.elog.instance_base.PatternInstanceBase`.
        """
        if isinstance(program, str):
            program = self._parsed_wrapper(program)
        if self.options.on_diagnostics != "ignore":
            apply_policy(
                self._elog_report(program),
                self.options.on_diagnostics,
                "elog wrapper",
            )
        return self._extractors.get(program, fetcher)

    def _parsed_wrapper(self, text: str) -> ElogProgram:
        return self._flight.run(
            ("elog-parse", text),
            lambda: self._parsed_wrappers.get(text),
            lambda: parse_elog(text),
            lambda parsed: self._parsed_wrappers.put(text, parsed),
        )

    def extract(
        self,
        program: "ElogProgram | str",
        document: Optional[Document] = None,
        *,
        documents: Optional[Sequence[Document]] = None,
        url: Optional[str] = None,
        fetcher: Optional[Fetcher] = None,
    ) -> ExtractionResult:
        """Run an Elog wrapper and return the uniform extraction result.

        Accepts any combination of a single ``document``, several
        ``documents`` and a start ``url`` (which requires ``fetcher``),
        exactly like :meth:`Extractor.extract`; the result's
        :meth:`~repro.api.results.ExtractionResult.to_xml` already knows
        the program's auxiliary patterns.
        """
        extractor = self.wrapper(program, fetcher)
        if self.resilience is not None and fetcher is not None:
            # Cheap twin around the resilient wrapper — the memoised
            # interpreter stays keyed by the caller's own fetcher.
            extractor = extractor.with_fetcher(self._resilient(fetcher))
        base = extractor.extract(document=document, documents=documents, url=url)
        return ExtractionResult(base, auxiliary=extractor.program.auxiliary_patterns)

    def extract_many(
        self,
        program: "ElogProgram | str",
        documents: Iterable[Document] = (),
        *,
        urls: Iterable[str] = (),
        fetcher: Optional[Fetcher] = None,
        max_workers: Optional[int] = None,
        on_error: Optional[str] = None,
        workers: Optional[object] = None,
    ) -> List[ExtractionResult]:
        """The batch extraction path for server-style document streams.

        One interpreter — hence one parsed program, one set of compiled
        plans behind any datalog translation — serves the whole stream;
        each document (or fetched URL) yields its own
        :class:`ExtractionResult`.

        ``max_workers`` > 1 runs the stream concurrently, and the ``urls=``
        path additionally *overlaps fetching with evaluation*: every URL's
        acquisition starts up front on a dedicated fetch pool (through
        :meth:`~repro.elog.extractor.Fetcher.fetch_async`), and extraction
        consumes the in-flight futures through a
        :class:`~repro.elog.extractor.PrefetchedFetcher` — so on
        fetch-bound workloads the wall clock approaches
        max(total fetch / workers, total evaluation).  Result order always
        matches ``documents`` + ``urls``; fetch errors surface on the
        result exactly as the sequential path raises them.

        ``on_error`` isolates per-document failures — ``"raise"``
        (default) / ``"skip"`` / ``"collect"``, exactly as in
        :meth:`query_many`; a collected failure's
        :class:`~repro.resilience.policy.ErrorResult` carries the slot's
        URL (when it has one) plus the attempt/elapsed metadata the retry
        layer annotated.  A session constructed with ``resilience=``
        additionally routes every fetch through a
        :class:`~repro.resilience.retry.ResilientFetcher` and defaults
        ``on_error`` to its policy's.

        ``workers`` scales *out* (``"process"`` / a worker count /
        :class:`~repro.distrib.DistribOptions`): the stream runs on worker
        processes through the distrib subsystem — see docs/DISTRIB.md.
        ``documents`` / ``urls`` may be generators; they then stream into a
        bounded dispatch window instead of being materialised (the URL
        prefetch overlap applies to sequence inputs only).
        """
        on_error = self._resolve_on_error(on_error)
        if workers is not None:
            return self._extract_many_process(
                program, documents, urls, fetcher, on_error,
                resolve_distrib(workers),
            )
        if not (
            isinstance(documents, Sequence) and isinstance(urls, Sequence)
        ):
            return self._extract_many_stream(
                program, documents, urls, fetcher, max_workers, on_error
            )
        extractor = self.wrapper(program, fetcher)
        run_fetcher = fetcher
        if self.resilience is not None and fetcher is not None:
            run_fetcher = self._resilient(fetcher)
            extractor = extractor.with_fetcher(run_fetcher)
        auxiliary = extractor.program.auxiliary_patterns
        if (
            max_workers is not None
            and max_workers > 1
            and len(documents) + len(urls) > 1
        ):
            return self._extract_many_parallel(
                extractor, auxiliary, documents, urls, run_fetcher, max_workers,
                on_error,
            )
        if on_error == "raise":
            # The pre-resilience fast path, byte-for-byte.
            results = [
                ExtractionResult(extractor.extract(document=doc), auxiliary=auxiliary)
                for doc in documents
            ]
            results.extend(
                ExtractionResult(extractor.extract(url=url), auxiliary=auxiliary)
                for url in urls
            )
            return results
        slots: List[ExtractionResult] = []
        for index, doc in enumerate(documents):
            try:
                slots.append(
                    ExtractionResult(extractor.extract(document=doc), auxiliary=auxiliary)
                )
            except Exception as error:
                slots.append(
                    self._isolated(
                        error, index=index, url=getattr(doc, "url", None),
                        backend="elog",
                    )
                )
        for offset, url in enumerate(urls):
            try:
                slots.append(
                    ExtractionResult(extractor.extract(url=url), auxiliary=auxiliary)
                )
            except Exception as error:
                slots.append(
                    self._isolated(
                        error, index=len(documents) + offset, url=url, backend="elog"
                    )
                )
        if on_error == "skip":
            return [slot for slot in slots if not isinstance(slot, ErrorResult)]
        return slots

    def _extract_many_parallel(
        self,
        extractor: Extractor,
        auxiliary,
        documents: Sequence[Document],
        urls: Sequence[str],
        fetcher: Optional[Fetcher],
        max_workers: int,
        on_error: str = "raise",
    ) -> List[ExtractionResult]:
        # Two pools, never one: extraction tasks block on fetch futures, so
        # sharing a pool could park every worker on a fetch that has no
        # worker left to run (classic nested-submit deadlock).
        fetch_pool: Optional[ThreadPoolExecutor] = None
        try:
            url_extractors = [extractor] * len(urls)
            if urls and fetcher is not None:
                fetch_pool = ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="repro-fetch"
                )
                # One fetch per URL *instance*, exactly like the sequential
                # loop: a duplicated URL is fetched twice, so stateful
                # fetchers (rotating content, per-fetch counters, transient
                # errors) see the same calls either way.  Crawling targets
                # beyond the start URL fall through to the base fetcher,
                # synchronously — results match the sequential path byte
                # for byte.
                url_extractors = [
                    extractor.with_fetcher(
                        PrefetchedFetcher(
                            fetcher, {url: fetcher.fetch_async(url, fetch_pool)}
                        )
                    )
                    for url in urls
                ]
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-extract"
            ) as pool:
                jobs = [
                    pool.submit(extractor.extract, document=doc) for doc in documents
                ]
                jobs.extend(
                    pool.submit(url_extractor.extract, url=url)
                    for url, url_extractor in zip(urls, url_extractors)
                )
                if on_error == "raise":
                    return [
                        ExtractionResult(job.result(), auxiliary=auxiliary)
                        for job in jobs
                    ]
                slot_urls = [getattr(doc, "url", None) for doc in documents]
                slot_urls.extend(urls)
                slots: List[ExtractionResult] = []
                for index, (job, url) in enumerate(zip(jobs, slot_urls)):
                    try:
                        slots.append(
                            ExtractionResult(job.result(), auxiliary=auxiliary)
                        )
                    except Exception as error:
                        slots.append(
                            self._isolated(
                                error, index=index, url=url, backend="elog"
                            )
                        )
                if on_error == "skip":
                    return [
                        slot for slot in slots if not isinstance(slot, ErrorResult)
                    ]
                return slots
        finally:
            if fetch_pool is not None:
                fetch_pool.shutdown()

    def _extract_many_stream(
        self,
        program: "ElogProgram | str",
        documents: Iterable[Document],
        urls: Iterable[str],
        fetcher: Optional[Fetcher],
        max_workers: Optional[int],
        on_error: str,
    ) -> List[ExtractionResult]:
        """:meth:`extract_many` over generators: bounded dispatch window,
        no batch materialisation, no up-front URL prefetch pass (fetches
        overlap through the pool threads themselves)."""
        extractor = self.wrapper(program, fetcher)
        if self.resilience is not None and fetcher is not None:
            extractor = extractor.with_fetcher(self._resilient(fetcher))
        auxiliary = extractor.program.auxiliary_patterns

        def stream() -> Iterable[Tuple[str, object]]:
            for doc in documents:
                yield ("document", doc)
            for url in urls:
                yield ("url", url)

        def evaluate(index: int, kind: str, item: object) -> ExtractionResult:
            url = item if kind == "url" else getattr(item, "url", None)
            try:
                if kind == "url":
                    base = extractor.extract(url=item)
                else:
                    base = extractor.extract(document=item)
                return ExtractionResult(base, auxiliary=auxiliary)
            except Exception as error:
                if on_error == "raise":
                    raise
                return self._isolated(error, index=index, url=url, backend="elog")

        slots: List[ExtractionResult] = []
        if max_workers is not None and max_workers > 1:
            window = max_workers * 4
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-extract"
            ) as pool:
                jobs: deque = deque()
                for index, (kind, item) in enumerate(stream()):
                    jobs.append(pool.submit(evaluate, index, kind, item))
                    if len(jobs) >= window:
                        slots.append(jobs.popleft().result())
                while jobs:
                    slots.append(jobs.popleft().result())
        else:
            slots = [
                evaluate(index, kind, item)
                for index, (kind, item) in enumerate(stream())
            ]
        if on_error == "skip":
            return [slot for slot in slots if not isinstance(slot, ErrorResult)]
        return slots

    def _extract_many_process(
        self,
        program: "ElogProgram | str",
        documents: Iterable[Document],
        urls: Iterable[str],
        fetcher: Optional[Fetcher],
        on_error: str,
        distrib: DistribOptions,
    ) -> List[ExtractionResult]:
        """:meth:`extract_many` on worker processes.

        The wrapper parses (and its diagnostics apply) in the parent;
        workers re-build their interpreter from the shipped
        :class:`~repro.elog.ast.ElogProgram` once each.  ``fetcher``
        travels inside each URL envelope, and each worker's session wraps
        it under the session's resilience policy exactly like the
        in-process paths; worker-side fetch logs stay in the worker.
        """
        if isinstance(program, str):
            program = self._parsed_wrapper(program)
        if self.options.on_diagnostics != "ignore":
            apply_policy(
                self._elog_report(program),
                self.options.on_diagnostics,
                "elog wrapper",
            )
        wrapper_program = program

        def envelopes() -> Iterable[TaskEnvelope]:
            index = 0
            for doc in documents:
                yield TaskEnvelope(
                    task_id=task_id_for(index),
                    index=index,
                    kind="extract",
                    program=wrapper_program,
                    options=self.options,
                    resilience=self.resilience,
                    payload=doc,
                    payload_kind="document",
                )
                index += 1
            for url in urls:
                yield TaskEnvelope(
                    task_id=task_id_for(index),
                    index=index,
                    kind="extract",
                    program=wrapper_program,
                    options=self.options,
                    resilience=self.resilience,
                    payload=url,
                    payload_kind="url",
                    fetcher=fetcher,
                )
                index += 1

        executor = ProcessExecutor(distrib, stats=self._distrib_stats)
        outcomes = executor.run(envelopes())
        return self._collect_outcomes(outcomes, on_error, backend="elog")

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------
    def pipeline(self, name: str = "pipeline"):
        """A :class:`~repro.api.pipeline.PipelineBuilder` bound to this
        session (its wrapper/query stages reuse the session's interpreters,
        options and plan registry)."""
        from .pipeline import PipelineBuilder

        return PipelineBuilder(name, session=self)

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        program: object,
        *,
        kind: Optional[str] = None,
        edb: Optional[object] = None,
        query_predicates: Optional[Sequence[str]] = None,
    ) -> AnalysisReport:
        """The static-analysis report for ``program``, cached per content.

        Accepts everything :func:`repro.analysis.analyze` accepts: a
        datalog :class:`Program`, a :class:`MonadicProgram` (analyzed
        against the tau_ur tree EDB signature), an :class:`ElogProgram`,
        or source text (language sniffed, or forced via ``kind=``).
        Reports are cached by program *content* — datalog reports in the
        session registry's analysis store, Elog reports per wrapper
        fingerprint — so a second call on a content-equal program does no
        re-analysis (see :meth:`analysis_info`).

        ``edb`` and ``query_predicates`` refine the datalog checks (see
        :func:`repro.analysis.check_program`); pass
        ``edb=repro.analysis.TREE_SIGNATURE`` to validate against the tree
        relations.
        """
        if isinstance(program, ElogProgram):
            return self._elog_report(program)
        if isinstance(program, MonadicProgram):
            return self._datalog_report(
                program.to_datalog_program(),
                edb if edb is not None else TREE_SIGNATURE,
                query_predicates,
            )
        if isinstance(program, Program):
            return self._datalog_report(program, edb, query_predicates)
        if isinstance(program, str):
            resolved = kind or sniff_kind(program)
            # Parse through the session memos so analyze/query over the
            # same text share one parse and one content-keyed report;
            # unparseable text falls back to the analyzer, whose report is
            # a single D000/E000 syntax diagnostic.
            if resolved == ELOG:
                try:
                    parsed: object = self._parsed_wrapper(program)
                except ElogSyntaxError:
                    return _analyze_program(program, kind=ELOG)
                return self._elog_report(parsed)
            try:
                parsed = self._resolve(program, "semi-naive", None)[1]
            except DatalogSyntaxError:
                return _analyze_program(program, kind=resolved)
            return self._datalog_report(parsed, edb, query_predicates)
        raise TypeError(
            f"cannot analyze {type(program).__name__}; expected Program, "
            "MonadicProgram, ElogProgram or source text"
        )

    def explain(
        self,
        program: object,
        query: Optional[Sequence[str]] = None,
        *,
        edb: Optional[object] = None,
        domain_size: Optional[int] = None,
    ):
        """The evaluation plan of ``program``, cached per program content.

        Accepts the same shapes as :meth:`analyze` (datalog
        :class:`Program`, :class:`MonadicProgram`, :class:`ElogProgram` —
        translated through the monadic layer — or source text) and returns
        an :class:`~repro.analysis.explain.ExplainReport`: the
        statically-seeded join orders, filter hoist points, advised index
        keys, estimated cardinalities and ``P00x`` performance diagnostics
        the session's engines will run with.  ``query`` narrows the demand
        analysis to the named query predicates.  Reports are cached in the
        registry's analysis store, keyed by program content + arguments.
        """
        from ..analysis.explain import DEFAULT_DOMAIN_SIZE, explain as _explain
        from ..elog.to_mdatalog import to_monadic_datalog

        size = domain_size if domain_size is not None else DEFAULT_DOMAIN_SIZE
        if isinstance(program, str):
            # Parse through the session memos, like analyze()/query().
            if sniff_kind(program) == ELOG:
                program = self._parsed_wrapper(program)
            else:
                program = self._resolve(program, "semi-naive", None)[1]
        if isinstance(program, ElogProgram):
            program = to_monadic_datalog(program)
        if isinstance(program, MonadicProgram):
            if query is None:
                query = tuple(sorted(program.query_predicates))
            if edb is None:
                edb = TREE_SIGNATURE
            program = program.to_datalog_program()
        if not isinstance(program, Program):
            raise TypeError(
                f"cannot explain {type(program).__name__}; expected Program, "
                "MonadicProgram, ElogProgram or source text"
            )
        if edb is not None and not isinstance(edb, str):
            edb = frozenset(edb)
        key = (
            "explain",
            edb,
            tuple(query) if query is not None else None,
            size,
        )
        resolved = program
        return self.registry.analysis_cached(
            resolved,
            lambda: _explain(resolved, query, edb=edb, domain_size=size),
            key=key,
        )

    def _datalog_report(
        self,
        program: Program,
        edb: Optional[object],
        query_predicates: Optional[Sequence[str]],
    ) -> AnalysisReport:
        if edb is None or isinstance(edb, str):
            edb_key: object = edb
        else:
            edb = frozenset(edb)
            edb_key = edb
        key = (
            "analysis",
            edb_key,
            tuple(query_predicates) if query_predicates else None,
        )
        return self.registry.analysis_cached(
            program,
            lambda: _analyze_program(
                program, edb=edb, query_predicates=query_predicates
            ),
            key=key,
        )

    def _elog_report(self, program: ElogProgram) -> AnalysisReport:
        fingerprint = wrapper_fingerprint(program)
        return self._flight.run(
            ("analysis", fingerprint),
            lambda: self._elog_analyses.get(fingerprint),
            lambda: _analyze_program(program),
            lambda report: self._elog_analyses.put(fingerprint, report),
        )

    def _enforce_diagnostics(
        self, resolved: EvaluatorBackend, native: object
    ) -> None:
        """Apply ``options.on_diagnostics`` before building an evaluator.

        Datalog and monadic programs are analyzed (once per content — the
        report cache makes every later call a lookup); the automata backend
        is exempt (a :class:`TreeAutomaton` is not a logic program).
        """
        policy = self.options.on_diagnostics
        if policy == "ignore":
            return
        if isinstance(native, MonadicProgram):
            report = self._datalog_report(
                native.to_datalog_program(), TREE_SIGNATURE, None
            )
        elif isinstance(native, Program):
            report = self._datalog_report(native, None, None)
        else:
            return
        apply_policy(report, policy, f"{resolved.name} program")

    def analysis_info(self) -> Dict[str, CacheInfo]:
        """Hit/miss statistics of the analysis-report caches, by kind."""
        return {
            "datalog": self.registry.analysis_info(),
            "elog": self._elog_analyses.info(),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def plan_registry_info(self) -> CacheInfo:
        """Hit/miss statistics of the session-owned compiled-plan registry."""
        return self.registry.info()

    def engine_info(self) -> EngineInfo:
        """Aggregated storage/executor counters of the session's engines.

        Sums :meth:`~repro.datalog.engine.SemiNaiveEngine.engine_info`
        across every memoised evaluator that evaluates relationally (the
        semi-naive backend, plus monadic/automata evaluators running on the
        generic fallback engine); the ``storage`` / ``index_keys`` fields
        report what the session's options resolve to.  All-zero until a
        query actually evaluates.
        """
        infos = []
        for evaluator in self._evaluators.values():
            probe = getattr(evaluator, "engine_info", None)
            if probe is None:
                continue
            info = probe()
            if info is not None:
                infos.append(info)
        return aggregate_engine_info(
            self.options.effective_storage, self.options.index_keys, infos
        )

    def resilience_info(self) -> ResilienceInfo:
        """The session-wide failure accounting: attempts/retries/failures of
        every resilient fetch made on the session's behalf, circuit-breaker
        trips and rejections, and the batch slots isolated under
        ``on_error="skip"|"collect"``.  All zeros until a policy (or an
        isolating ``on_error=``) is used."""
        return self._resilience_stats.snapshot()

    def distrib_info(self) -> DistribInfo:
        """The session's scale-out accounting: tasks dispatched / acked /
        requeued across every ``workers=`` batch, worker crash events,
        current queue depth, and per-worker-pid compile counts (how the
        tests pin "one compilation per program per worker").  All zeros
        until a ``workers=`` batch runs."""
        return self._distrib_stats.snapshot()

    def info(self) -> Dict[str, object]:
        """A monitoring snapshot of everything the session owns."""
        return {
            "options": self.options,
            "backends": set(self._backends_used),
            "evaluators": len(self._evaluators),
            "extractors": len(self._extractors),
            "plan_registry": self.registry.info(),
            "resilience": self._resilience_stats.snapshot(),
            "distrib": self._distrib_stats.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(evaluators={len(self._evaluators)}, "
            f"extractors={len(self._extractors)}, options={self.options})"
        )

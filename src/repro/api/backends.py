"""The evaluator backend registry of the façade.

A *backend* packages one way of evaluating a program: how to normalise the
program spec (parse text, validate types), how to key an evaluator memo,
how to build the evaluator (threading :class:`EngineOptions` and the
session's :class:`PlanRegistry` down), and how to run it over a source
producing a uniform :class:`~repro.api.results.QueryResult`.

Three backends ship with the reproduction, mirroring the paper's layers:

``"semi-naive"``
    Generic stratified datalog (:class:`~repro.datalog.engine.
    SemiNaiveEngine`) over ``{predicate: facts}`` databases — or over
    documents, which are encoded through
    :func:`~repro.datalog.tree_edb.tree_database` first.
``"monadic"``
    Monadic datalog over trees (:class:`~repro.mdatalog.evaluator.
    MonadicTreeEvaluator`, the Theorem-2.4 pipeline with generic fallback)
    over :class:`~repro.tree.document.Document` sources.
``"automata"``
    Tree automata compiled to monadic datalog (Theorem 2.5,
    :func:`~repro.automata.to_datalog.compiled_evaluator`) over documents.

:func:`register_backend` admits new evaluators under new names without
touching the session; :func:`infer_backend` maps program types to backend
names so most callers never spell the name at all.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..automata.ranked import TreeAutomaton
from ..automata.to_datalog import _automaton_signature, compile_automaton
from ..datalog.ast import Program
from ..datalog.engine import SemiNaiveEngine
from ..datalog.options import EngineOptions
from ..datalog.parser import parse_program
from ..datalog.registry import PlanRegistry, program_snapshot
from ..datalog.tree_edb import tree_database
from ..mdatalog.evaluator import MonadicTreeEvaluator
from ..mdatalog.program import MonadicProgram
from ..tree.document import Document
from .results import FactsResult, QueryResult, SelectionResult


class BackendError(ValueError):
    """Raised for unknown backend names or unsupported program specs."""


class EvaluatorBackend:
    """One named evaluation strategy (see module docstring).

    ``labels`` is only meaningful for backends whose compilation depends on
    the document alphabet (the automata backend); the others ignore it.
    """

    name: str = ""

    def accepts(self, program: object) -> bool:
        """Whether :func:`infer_backend` should route ``program`` here."""
        raise NotImplementedError

    def normalise(self, program: object) -> object:
        """Parse / validate a program spec into the backend's native type."""
        raise NotImplementedError

    def cache_key(
        self,
        program: object,
        options: EngineOptions,
        labels: Optional[Tuple[str, ...]] = None,
    ) -> Hashable:
        """An exact content key for the session's evaluator memo."""
        raise NotImplementedError

    def build(
        self,
        program: object,
        options: EngineOptions,
        registry: Optional[PlanRegistry],
        labels: Optional[Tuple[str, ...]] = None,
    ) -> object:
        """Construct the evaluator (compilation happens here, once)."""
        raise NotImplementedError

    def run(self, evaluator: object, source: object) -> QueryResult:
        """Evaluate ``source`` and wrap the output uniformly."""
        raise NotImplementedError


class SemiNaiveBackend(EvaluatorBackend):
    name = "semi-naive"

    def accepts(self, program: object) -> bool:
        return isinstance(program, Program)

    def normalise(self, program: object) -> Program:
        if isinstance(program, str):
            return parse_program(program)
        if isinstance(program, Program):
            return program
        raise BackendError(
            f"semi-naive backend expects a datalog Program or text, "
            f"got {type(program).__name__}"
        )

    def cache_key(self, program, options, labels=None):
        return (program_snapshot(program), options)

    def build(self, program, options, registry, labels=None):
        return SemiNaiveEngine(program, options=options, registry=registry)

    def run(self, evaluator, source):
        if isinstance(source, Document):
            return FactsResult(
                evaluator.fixpoint(tree_database(source)),
                document=source,
                backend=self.name,
            )
        if isinstance(source, dict):
            return FactsResult(evaluator.fixpoint(source), backend=self.name)
        raise BackendError(
            f"semi-naive backend evaluates databases or documents, "
            f"got {type(source).__name__}"
        )


class MonadicBackend(EvaluatorBackend):
    name = "monadic"

    def accepts(self, program: object) -> bool:
        return isinstance(program, MonadicProgram)

    def normalise(self, program: object) -> MonadicProgram:
        if isinstance(program, str):
            return MonadicProgram.parse(program)
        if isinstance(program, MonadicProgram):
            return program
        raise BackendError(
            f"monadic backend expects a MonadicProgram or text, "
            f"got {type(program).__name__}"
        )

    def cache_key(self, program, options, labels=None):
        return (tuple(program.rules), program.query_predicates, options)

    def build(self, program, options, registry, labels=None):
        return MonadicTreeEvaluator(program, options=options, registry=registry)

    def run(self, evaluator, source):
        if not isinstance(source, Document):
            raise BackendError(
                f"monadic backend evaluates documents, got {type(source).__name__}"
            )
        return SelectionResult(
            evaluator.evaluate(source),
            document=source,
            resolver=evaluator.select,
            backend=self.name,
        )


class AutomataBackend(EvaluatorBackend):
    """Theorem 2.5: evaluate a tree automaton through its datalog compilation.

    The compiled program depends on the label alphabet, so the evaluator
    memo is keyed per (automaton content, labels); sessions derive labels
    from the queried documents when the caller does not pin them.
    """

    name = "automata"

    def accepts(self, program: object) -> bool:
        return isinstance(program, TreeAutomaton)

    def normalise(self, program: object) -> TreeAutomaton:
        if isinstance(program, TreeAutomaton):
            return program
        raise BackendError(
            f"automata backend expects a TreeAutomaton, "
            f"got {type(program).__name__}"
        )

    def cache_key(self, program, options, labels=None):
        return (_automaton_signature(program), labels or (), options)

    def build(self, program, options, registry, labels=None):
        if not labels:
            # An empty alphabet compiles a program that selects nothing on
            # every document — silently wrong, so refuse instead.
            raise BackendError(
                "automata backend needs a label alphabet: pass labels=... "
                "(Session.query derives it from the queried document)"
            )
        # Construct directly rather than through compiled_evaluator: the
        # session memoises this evaluator itself, and going through the
        # module-level (or per-registry) evaluator cache would pin a second
        # copy with independent eviction.  That cache serves the functional
        # compiled_select/compiled_evaluator API.
        compiled = compile_automaton(program, labels)
        return MonadicTreeEvaluator(compiled, options=options, registry=registry)

    def run(self, evaluator, source):
        if not isinstance(source, Document):
            raise BackendError(
                f"automata backend evaluates documents, got {type(source).__name__}"
            )
        return SelectionResult(
            evaluator.evaluate(source),
            document=source,
            resolver=evaluator.select,
            backend=self.name,
        )


_BACKENDS: Dict[str, EvaluatorBackend] = {}


def register_backend(backend: EvaluatorBackend, replace: bool = False) -> None:
    """Admit ``backend`` under ``backend.name`` for every future session.

    Registration is additive API surface: an existing name is only
    overwritten with ``replace=True`` so two libraries cannot silently
    shadow each other's evaluators.
    """
    if not backend.name:
        raise BackendError("backend must declare a non-empty name")
    if backend.name in _BACKENDS and not replace:
        raise BackendError(f"backend {backend.name!r} is already registered")
    _BACKENDS[backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def backend_named(name: str) -> EvaluatorBackend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def infer_backend(program: object) -> EvaluatorBackend:
    """The backend whose native program type matches ``program``.

    Checked in registration order; program *text* is ambiguous (datalog vs
    monadic syntax overlap) and therefore requires an explicit name.
    """
    for backend in _BACKENDS.values():
        if backend.accepts(program):
            return backend
    raise BackendError(
        f"no backend accepts programs of type {type(program).__name__}; "
        "pass backend=<name> explicitly "
        f"(available: {', '.join(available_backends())})"
    )


# MonadicProgram subclasses nothing and Program accepts any rules, so the
# registration order below doubles as the inference priority: the most
# specific program type must be probed first.
register_backend(MonadicBackend())
register_backend(AutomataBackend())
register_backend(SemiNaiveBackend())

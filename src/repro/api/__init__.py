"""repro.api — the single public front door of the reproduction.

The paper presents Lixto as one coherent system: Elog wrappers over HTML
(Section 3), monadic datalog as the theoretical core (Section 2), and the
Transformation Server streaming wrapped data to users (Section 5).  This
package gives the reproduction the matching single surface:

* :class:`~repro.datalog.options.EngineOptions` — one frozen dataclass of
  evaluator tuning, accepted uniformly by every engine (the pre-façade
  per-constructor kwargs survive as deprecation shims);
* :class:`~repro.api.session.Session` — the stateful entry point that owns
  the compiled-plan registry, evaluator memos and Elog interpreters, routes
  programs through the backend registry (``"semi-naive" | "monadic" |
  "automata"``, extensible via :func:`register_backend`), and exposes the
  batch entry points ``query_many`` / ``extract_many`` for server-style
  document streams;
* :class:`~repro.api.results.QueryResult` /
  :class:`~repro.api.results.ExtractionResult` — uniform lazily-memoised
  views (tuples / nodes / texts) over datalog facts, monadic node
  selections and Elog pattern-instance bases;
* :class:`~repro.api.pipeline.Pipeline` and its
  :meth:`~repro.api.pipeline.Pipeline.builder` — declarative, build-time
  validated construction of Transformation Server pipelines, replacing
  imperative ``InformationPipe`` wiring;
* :mod:`repro.analysis` — compile-time diagnostics: ``Session.analyze``
  returns a cached :class:`~repro.analysis.diagnostics.AnalysisReport`,
  ``EngineOptions(on_diagnostics="warn" | "strict" | "ignore")`` decides
  what evaluation does about error-severity findings, and
  ``Pipeline.builder().build(on_diagnostics=...)`` vets every
  wrapper/query program in a pipeline.

The deliverer/monitoring component classes and the
:class:`TransformationServer` are re-exported so a pipeline definition
needs no imports below the façade.  See docs/API.md for the full tour and
the migration notes from the pre-façade constructors.
"""

from ..analysis import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    DiagnosticWarning,
    analyze,
)
from ..datalog.options import DEFAULT_OPTIONS, EngineOptions
from ..datalog.registry import PlanRegistry
from ..distrib import CrashPlan, DistribInfo, DistribOptions, WorkJournal
from ..elog.parser import parse_elog
from ..server.components import (
    Component,
    DelivererComponent,
    Delivery,
    EmailDeliverer,
    HtmlPortalDeliverer,
    SmsDeliverer,
    XmlDeliverer,
)
from ..resilience import (
    DEFAULT_RESILIENCE,
    ErrorResult,
    FaultPlan,
    FaultyFetcher,
    FetchError,
    ResilienceInfo,
    ResiliencePolicy,
    RetryPolicy,
    WorkerCrashError,
)
from ..server.monitoring import (
    ChangeDetector,
    ChangeGatedDeliverer,
    ChangeReport,
    resilience_report,
)
from ..server.pipeline import PipelineError, TransformationServer
from .backends import (
    BackendError,
    EvaluatorBackend,
    available_backends,
    backend_named,
    infer_backend,
    register_backend,
)
from .pipeline import Pipeline, PipelineBuilder
from .results import ExtractionResult, QueryResult
from .session import Session

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BackendError",
    "ChangeDetector",
    "ChangeGatedDeliverer",
    "ChangeReport",
    "Component",
    "CrashPlan",
    "DEFAULT_OPTIONS",
    "DEFAULT_RESILIENCE",
    "Diagnostic",
    "DiagnosticWarning",
    "DelivererComponent",
    "Delivery",
    "DistribInfo",
    "DistribOptions",
    "EmailDeliverer",
    "EngineOptions",
    "ErrorResult",
    "EvaluatorBackend",
    "ExtractionResult",
    "FaultPlan",
    "FaultyFetcher",
    "FetchError",
    "HtmlPortalDeliverer",
    "Pipeline",
    "PipelineBuilder",
    "PipelineError",
    "PlanRegistry",
    "QueryResult",
    "ResilienceInfo",
    "ResiliencePolicy",
    "RetryPolicy",
    "Session",
    "SmsDeliverer",
    "TransformationServer",
    "WorkJournal",
    "WorkerCrashError",
    "XmlDeliverer",
    "analyze",
    "available_backends",
    "backend_named",
    "infer_backend",
    "parse_elog",
    "register_backend",
    "resilience_report",
]

"""Uniform result wrappers: one interface over every evaluation layer.

Before the façade, each layer returned a different shape — the datalog
engine a frozenset of fact tuples, the monadic evaluator a ``{predicate:
[Node]}`` mapping, the Elog extractor a
:class:`~repro.elog.instance_base.PatternInstanceBase` forest — and every
consumer re-invented the conversions between them.  :class:`QueryResult`
(and its extraction specialisation :class:`ExtractionResult`) expose all
three through one vocabulary of lazily materialised, memoised views:

``predicates()``
    The names with any matches (datalog predicates, monadic query
    predicates, Elog patterns).
``tuples(name)``
    The relational view: raw fact tuples for datalog, ``(preorder_index,)``
    singletons for node selections, ``(anchor, sub-anchor, text)`` triples
    for extracted pattern instances.
``nodes(name)``
    The matched document nodes in document order (empty when no document
    is attached or the matches are strings).
``texts(name)``
    The textual view in document order.

Every view is built on first access and memoised, so consuming a large
result through one view never pays for the others.

Unknown-predicate contract (uniform across the stack, see docs/API.md):
asking any view about a name the program never defines returns an *empty*
view — never an error.  Strictness lives at declaration time
(``MonadicProgram(query_predicates=...)`` rejects undefined predicates).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..datalog.engine import EvaluationResult
from ..elog.instance_base import PatternInstance, PatternInstanceBase
from ..tree.document import Document
from ..tree.node import Node
from ..xmlgen.document import XmlElement

FactTuple = Tuple[object, ...]

_EMPTY_TUPLES: FrozenSet[FactTuple] = frozenset()


class QueryResult:
    """One uniform, lazily-memoised view over an evaluation result.

    Subclasses adapt one producer each (datalog facts, monadic node
    selections, Elog instance bases); consumers only ever see this
    interface.  Views are immutable and shared between calls.
    """

    __slots__ = ("backend", "_memo")

    def __init__(self, backend: str) -> None:
        self.backend = backend
        self._memo: Dict[Tuple[str, str], object] = {}

    # -- the uniform interface --------------------------------------------
    @property
    def ok(self) -> bool:
        """``True``: this slot evaluated successfully.  The batch paths'
        ``on_error="collect"`` mode mixes in
        :class:`~repro.resilience.policy.ErrorResult` slots whose ``ok`` is
        ``False``, so mixed lists filter uniformly
        (``[r for r in results if r.ok]``)."""
        return True

    def predicates(self) -> FrozenSet[str]:
        """The result's *primary* names with at least one match: derived
        relations (datalog), declared query predicates (selections),
        patterns (extraction).  Membership (``name in result``) is wider —
        it tests whether *any* view of ``name`` has matches, including
        lazily-resolved auxiliary predicates."""
        raise NotImplementedError

    def tuples(self, predicate: str) -> FrozenSet[FactTuple]:
        """The relational view of ``predicate`` (empty when unknown)."""
        return self._view("tuples", predicate, self._tuples)

    def nodes(self, predicate: str) -> Tuple[Node, ...]:
        """The matched nodes in document order (empty when unknown)."""
        return self._view("nodes", predicate, self._nodes)

    def texts(self, predicate: str) -> Tuple[str, ...]:
        """The textual matches in document order (empty when unknown)."""
        return self._view("texts", predicate, self._texts)

    def count(self, predicate: str) -> int:
        return len(self.tuples(predicate))

    def __contains__(self, predicate: str) -> bool:
        # Count-based, not predicates()-based: auxiliary predicates that a
        # resolver answers non-empty must test True uniformly across
        # adapters (the guard idiom is `if name in result: result.nodes(name)`).
        return self.count(predicate) > 0

    # -- adapter hooks -----------------------------------------------------
    def _tuples(self, predicate: str) -> FrozenSet[FactTuple]:
        raise NotImplementedError

    def _nodes(self, predicate: str) -> Tuple[Node, ...]:
        raise NotImplementedError

    def _texts(self, predicate: str) -> Tuple[str, ...]:
        raise NotImplementedError

    def _view(self, kind: str, predicate: str, build: Callable):
        key = (kind, predicate)
        if key not in self._memo:
            self._memo[key] = build(predicate)
        return self._memo[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(sorted(self.predicates()))
        return f"{type(self).__name__}({self.backend}: {names})"


class FactsResult(QueryResult):
    """Datalog fixpoints (:class:`~repro.datalog.engine.EvaluationResult`).

    When the database was derived from a document (the
    :func:`~repro.datalog.tree_edb.tree_database` encoding), attach the
    document so unary integer facts resolve to nodes.
    """

    __slots__ = ("evaluation", "document")

    def __init__(
        self,
        evaluation: EvaluationResult,
        document: Optional[Document] = None,
        backend: str = "semi-naive",
    ) -> None:
        super().__init__(backend)
        self.evaluation = evaluation
        self.document = document

    def predicates(self) -> FrozenSet[str]:
        # "Has at least one match" uniformly across adapters: relations the
        # fixpoint mentions but leaves empty do not count.
        return frozenset(
            predicate
            for predicate in self.evaluation.predicates()
            if self.evaluation.query(predicate)
        )

    def _tuples(self, predicate: str) -> FrozenSet[FactTuple]:
        return self.evaluation.query(predicate)

    def _node_indexes(self, predicate: str) -> List[int]:
        document = self.document
        if document is None:
            return []
        size = len(document)
        return sorted(
            fact[0]
            for fact in self.evaluation.query(predicate)
            if len(fact) == 1 and isinstance(fact[0], int) and 0 <= fact[0] < size
        )

    def _nodes(self, predicate: str) -> Tuple[Node, ...]:
        if self.document is None:
            return ()
        return tuple(
            self.document.node_at(index) for index in self._node_indexes(predicate)
        )

    def _texts(self, predicate: str) -> Tuple[str, ...]:
        if self.document is not None:
            return tuple(node.normalized_text() for node in self.nodes(predicate))
        # No document: a deterministic textual rendering of the raw facts.
        facts = sorted(self.evaluation.query(predicate), key=repr)
        return tuple(" ".join(str(value) for value in fact) for fact in facts)


class SelectionResult(QueryResult):
    """Monadic / automata node selections (``{predicate: [Node]}``).

    ``resolver`` (when given) lazily answers predicates outside the initial
    mapping — the evaluator's auxiliary IDB predicates — through
    :meth:`MonadicTreeEvaluator.select`; truly unknown predicates come back
    empty from there as well.
    """

    __slots__ = ("selection", "document", "_resolver")

    def __init__(
        self,
        selection: Mapping[str, List[Node]],
        document: Document,
        resolver: Optional[Callable[[Document, str], List[Node]]] = None,
        backend: str = "monadic",
    ) -> None:
        super().__init__(backend)
        self.selection = dict(selection)
        self.document = document
        self._resolver = resolver

    def predicates(self) -> FrozenSet[str]:
        return frozenset(
            name for name, nodes in self.selection.items() if nodes
        )

    def _nodes(self, predicate: str) -> Tuple[Node, ...]:
        found = self.selection.get(predicate)
        if found is None and self._resolver is not None:
            found = self._resolver(self.document, predicate)
        return tuple(found or ())

    # -- pickling (the distrib worker protocol) --------------------------
    #
    # ``_resolver`` is a bound method of the evaluator that produced the
    # result — evaluators hold compiled plans and cannot (and must not)
    # cross a process boundary.  A pickled SelectionResult therefore ships
    # the materialised selection and document but *drops the resolver*:
    # the declared query predicates answer identically, while auxiliary
    # IDB predicates outside the initial mapping resolve empty after
    # unpickling (documented in docs/DISTRIB.md).
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        state["_resolver"] = None
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def _tuples(self, predicate: str) -> FrozenSet[FactTuple]:
        return frozenset((node.preorder_index,) for node in self.nodes(predicate))

    def _texts(self, predicate: str) -> Tuple[str, ...]:
        return tuple(node.normalized_text() for node in self.nodes(predicate))


class ExtractionResult(QueryResult):
    """Elog extraction output (a :class:`PatternInstanceBase` forest).

    Adds the extraction-specific surface on top of the uniform views: the
    hierarchical ``instances(pattern)``, the XML Designer step
    (:meth:`to_xml`), and the underlying ``instance_base``.  The relational
    ``tuples`` view renders each instance as ``(anchor, sub-anchor, text)``
    where the anchor pair approximates document order
    (:meth:`PatternInstance.anchor`).
    """

    __slots__ = ("instance_base", "auxiliary")

    def __init__(
        self,
        instance_base: PatternInstanceBase,
        auxiliary: Iterable[str] = (),
        backend: str = "elog",
    ) -> None:
        super().__init__(backend)
        self.instance_base = instance_base
        self.auxiliary = tuple(auxiliary)

    # -- uniform views ------------------------------------------------------
    def predicates(self) -> FrozenSet[str]:
        return frozenset(self.instance_base.patterns())

    def patterns(self) -> FrozenSet[str]:
        """Alias of :meth:`predicates` in extraction vocabulary."""
        return self.predicates()

    def _nodes(self, predicate: str) -> Tuple[Node, ...]:
        return tuple(self.instance_base.nodes_of(predicate))

    def _texts(self, predicate: str) -> Tuple[str, ...]:
        return tuple(self.instance_base.values_of(predicate))

    def _tuples(self, predicate: str) -> FrozenSet[FactTuple]:
        return frozenset(
            instance.anchor() + (instance.text(),)
            for instance in self.instance_base.instances_of(predicate)
        )

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is None:
            return self.instance_base.count()
        return self.instance_base.count(predicate)

    # -- extraction-specific surface ---------------------------------------
    def instances(self, pattern: str) -> List[PatternInstance]:
        """The hierarchical pattern instances, in document order."""
        return self.instance_base.instances_of(pattern)

    def to_xml(
        self,
        root_name: str = "result",
        auxiliary: Optional[Iterable[str]] = None,
    ) -> XmlElement:
        """The XML Designer / Transformer step over the instance base.

        ``auxiliary`` defaults to the wrapper program's auxiliary patterns
        (recorded at extraction time by :meth:`repro.api.Session.extract`).
        """
        return self.instance_base.to_xml(
            root_name=root_name,
            auxiliary=self.auxiliary if auxiliary is None else auxiliary,
        )

"""Declarative, build-time-validated Transformation Server pipelines.

The pre-façade way to assemble a pipeline was imperative::

    pipe = InformationPipe("books")
    pipe.add(WrapperComponent("shop_a", SHOP_A, web, "books-a.test/bestsellers"))
    pipe.add(IntegrationComponent("integrate", root_name="allbooks"))
    pipe.connect("shop_a", "integrate")          # wiring after the fact
    ...

— with mistakes (unknown names, missing inputs, cycles, a join whose
primary arrives second) surfacing only at run time, if at all.
:class:`PipelineBuilder` replaces that with a declarative chain that
validates while you build and once more at :meth:`~PipelineBuilder.build`::

    pipeline = (
        Pipeline.builder("books")
        .wrapper("shop_a", SHOP_A, web, "books-a.test/bestsellers")
        .wrapper("shop_b", SHOP_B, web, "books-b.test/chart")
        .integrate("integrate", inputs=["shop_a", "shop_b"], root_name="allbooks")
        .filter("affordable", "book", lambda b: price(b) < 30)
        .sort("by_price", "book", "price", root_name="offers")
        .deliver(XmlDeliverer("deliver", recipient="portal"))
        .build()
    )
    results = pipeline.run()

Stages connect to the previously added stage by default (``inputs=``
overrides), so linear flows read top to bottom; fan-in stages
(``integrate``, ``join``) name their upstreams explicitly.  ``build()``
returns a :class:`Pipeline` — a façade over
:class:`~repro.server.pipeline.InformationPipe` that also knows how to
register itself on a :class:`~repro.server.pipeline.TransformationServer`
(:meth:`Pipeline.serve`).

The old imperative wiring keeps working as a deprecation shim
(``InformationPipe.add/connect/chain`` emit :class:`DeprecationWarning`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence

from ..analysis.analyzer import analyze as _analyze_program
from ..analysis.diagnostics import POLICIES, apply_policy
from ..datalog.cache import LruMap
from ..elog.ast import ElogProgram
from ..elog.extractor import Fetcher
from ..elog.parser import parse_elog
from ..server.components import (
    Component,
    DatalogQueryComponent,
    DelivererComponent,
    FilterComponent,
    IntegrationComponent,
    JoinComponent,
    RenameComponent,
    SortComponent,
    TransformerComponent,
    WrapperComponent,
    XmlSourceComponent,
)
from ..server.monitoring import ChangeDetector, ChangeGatedDeliverer, ChangeReport
from ..server.pipeline import InformationPipe, PipelineError, TransformationServer
from ..xmlgen.document import XmlElement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mdatalog.program import MonadicProgram
    from ..resilience.policy import ResilienceInfo, ResiliencePolicy
    from ..tree.document import Document
    from .session import Session

#: Wrapper texts parsed by session-less builders (see
#: :meth:`PipelineBuilder.wrapper`); session-bound builders use the
#: session's own parse memo instead.
_PARSED_WRAPPER_TEXTS: "LruMap[str, ElogProgram]" = LruMap(64)


class Pipeline:
    """A built, validated pipeline — the façade over an information pipe."""

    def __init__(
        self,
        pipe: InformationPipe,
        session: "Optional[Session]" = None,
        programs: Sequence[tuple] = (),
    ) -> None:
        self._pipe = pipe
        self._session = session
        # (stage name, program) pairs of the wrapper/query stages, kept for
        # the explain() surface.
        self._programs = tuple(programs)

    @staticmethod
    def builder(
        name: str = "pipeline",
        session: "Optional[Session]" = None,
        resilience: "Optional[ResiliencePolicy]" = None,
    ) -> "PipelineBuilder":
        """Start a declarative pipeline definition.

        ``resilience`` becomes the default policy of every wrapper/query
        stage (each stage may override with its own ``resilience=``); a
        session-bound builder defaults to the session's policy.
        """
        return PipelineBuilder(name, session=session, resilience=resilience)

    # -- execution ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self._pipe.name

    @property
    def pipe(self) -> InformationPipe:
        """The underlying :class:`InformationPipe` (monitoring / legacy)."""
        return self._pipe

    def run(self) -> Dict[str, XmlElement]:
        """Activate the sources and push documents through the network."""
        return self._pipe.run()

    def run_and_get(self, component_name: str) -> XmlElement:
        return self._pipe.run_and_get(component_name)

    @property
    def last_results(self) -> Dict[str, XmlElement]:
        return self._pipe.last_results

    def component(self, name: str) -> Component:
        return self._pipe.component(name)

    def components(self) -> List[Component]:
        return self._pipe.components()

    def resilience_report(self) -> "Dict[str, ResilienceInfo]":
        """Per-component failure accounting (components without a
        resilience policy are omitted)."""
        from ..server.monitoring import resilience_report

        return resilience_report(self._pipe)

    def explain(self) -> "Dict[str, object]":
        """Explain plans for every wrapper/query stage of this pipeline.

        Returns ``{stage name: ExplainReport}`` in stage-definition order
        (see :func:`repro.analysis.explain.explain`).  Session-bound
        pipelines answer from the session's analysis cache; unbound ones
        compute each report directly.  Elog wrappers are explained through
        their monadic-datalog translation, so the report shows the plans
        the engine would actually run.
        """
        reports: Dict[str, object] = {}
        for stage_name, program in self._programs:
            if self._session is not None:
                reports[stage_name] = self._session.explain(program)
            else:
                from ..analysis.explain import explain as _explain

                reports[stage_name] = _explain(program)
        return reports

    def deliverers(self) -> List[DelivererComponent]:
        """Every configured deliverer, including those behind change gates
        (a :class:`ChangeGatedDeliverer` stage *is* the gate; the deliverer
        it forwards to is what monitoring code wants to iterate)."""
        found: List[DelivererComponent] = []
        for component in self._pipe.components():
            if isinstance(component, DelivererComponent):
                found.append(component)
            elif isinstance(component, ChangeGatedDeliverer):
                found.append(component.inner)
        return found

    def serve(
        self,
        server: Optional[TransformationServer] = None,
        period: int = 1,
    ) -> TransformationServer:
        """Register on a :class:`TransformationServer` (created on demand)
        with the given activation period; returns the server so callers can
        drive its logical clock (``server.tick()``)."""
        if server is None:
            server = TransformationServer()
        server.register(self._pipe, period=period)
        return server

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline({self.name!r}, components={len(self._pipe.components())})"


class PipelineBuilder:
    """Declarative construction of Transformation Server pipelines.

    Every stage method returns the builder; stages consume the previously
    added stage unless ``inputs=`` names their upstreams.  Validation is
    eager — duplicate names, references to unknown stages, and input-less
    consumers fail at definition time with :class:`PipelineError` — and
    :meth:`build` re-checks the whole DAG (topological order, source-only
    boundaries) before returning a :class:`Pipeline`.
    """

    def __init__(
        self,
        name: str = "pipeline",
        session: "Optional[Session]" = None,
        resilience: "Optional[ResiliencePolicy]" = None,
    ) -> None:
        self._pipe = InformationPipe(name)
        self._session = session
        # The default policy of every wrapper/query stage: an explicit
        # builder policy wins, else a bound session's policy applies.
        self._resilience = resilience
        if resilience is None and session is not None:
            self._resilience = session.resilience
        self._previous: Optional[str] = None
        self._sources: List[str] = []
        # (stage name, program) for every wrapper/query stage, analyzed at
        # build() time under the on_diagnostics policy.
        self._programs: List[tuple] = []

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _add_stage(
        self,
        component: Component,
        inputs: Optional[Sequence[str]],
        *,
        is_source: bool = False,
    ) -> "PipelineBuilder":
        if is_source and inputs:
            raise PipelineError(
                f"source stage {component.name!r} cannot declare inputs {list(inputs)}"
            )
        if not is_source:
            if inputs is None:
                if self._previous is None:
                    raise PipelineError(
                        f"stage {component.name!r} has no upstream: add a source "
                        "first or name inputs=[...] explicitly"
                    )
                inputs = [self._previous]
            elif not inputs:
                raise PipelineError(
                    f"stage {component.name!r} declares an empty input list"
                )
        self._pipe._add(component)
        for upstream in inputs or ():
            self._pipe._connect(upstream, component.name)
        if is_source:
            self._sources.append(component.name)
        self._previous = component.name
        return self

    def _engine_kwargs(self) -> Dict[str, object]:
        if self._session is None:
            return {}
        return {
            "options": self._session.options,
            "registry": self._session.registry,
        }

    # ------------------------------------------------------------------
    # Stage 1: acquisition (sources)
    # ------------------------------------------------------------------
    def source(
        self,
        name: str,
        supplier: Callable[[], XmlElement],
    ) -> "PipelineBuilder":
        """A boundary component fed by a callable returning XML."""
        return self._add_stage(XmlSourceComponent(name, supplier), None, is_source=True)

    def wrapper(
        self,
        name: str,
        program: "ElogProgram | str",
        fetcher: Fetcher,
        url: str,
        root_name: Optional[str] = None,
        resilience: "Optional[ResiliencePolicy]" = None,
    ) -> "PipelineBuilder":
        """An Elog wrapper source (program text is parsed on the spot).

        Session-bound builders reuse the session's interpreter for the
        (program, fetcher) pair; unbound builders share through the
        process-wide interpreter cache.  ``resilience`` overrides the
        builder's default policy for this stage.
        """
        extractor = None
        if self._session is not None:
            extractor = self._session.wrapper(program, fetcher)
            program = extractor.program
        elif isinstance(program, str):
            # Text is parsed through a module-level memo so that N unbound
            # builders over one wrapper text share one program object.
            # (Interpreter sharing no longer depends on this — the
            # process-wide extractor cache keys by content since PR 5 —
            # the memo just saves re-parsing.)
            parsed = _PARSED_WRAPPER_TEXTS.get(program)
            if parsed is None:
                parsed = parse_elog(program)
                _PARSED_WRAPPER_TEXTS.put(program, parsed)
            program = parsed
        component = WrapperComponent(
            name,
            program,
            fetcher,
            url,
            root_name=root_name,
            extractor=extractor,
            resilience=resilience if resilience is not None else self._resilience,
        )
        self._programs.append((name, program))
        return self._add_stage(component, None, is_source=True)

    def query(
        self,
        name: str,
        program: "MonadicProgram",
        supplier: "Callable[[], Document]",
        root_name: Optional[str] = None,
        resilience: "Optional[ResiliencePolicy]" = None,
    ) -> "PipelineBuilder":
        """A monadic-datalog wrapper source over a document supplier.

        ``resilience`` overrides the builder's default policy for this
        stage (the supplier call is retried; failures can serve stale).
        """
        component = DatalogQueryComponent(
            name,
            program,
            supplier,
            root_name=root_name,
            resilience=resilience if resilience is not None else self._resilience,
            **self._engine_kwargs(),
        )
        self._programs.append((name, program))
        return self._add_stage(component, None, is_source=True)

    # ------------------------------------------------------------------
    # Stage 2: integration
    # ------------------------------------------------------------------
    def integrate(
        self,
        name: str,
        inputs: Sequence[str],
        root_name: Optional[str] = None,
    ) -> "PipelineBuilder":
        """Merge several upstream documents (fan-in is explicit)."""
        return self._add_stage(IntegrationComponent(name, root_name=root_name), inputs)

    def join(
        self,
        name: str,
        primary: str,
        other: str,
        record_name: str,
        other_record_name: str,
        key: str,
        other_key: Optional[str] = None,
        root_name: Optional[str] = None,
    ) -> "PipelineBuilder":
        """Join records of ``primary`` with records of ``other`` on a key.

        Input order is part of the join's semantics (the primary side
        passes through un-joined records); the builder pins it by
        construction instead of trusting call order of ``connect``.
        """
        component = JoinComponent(
            name,
            record_name=record_name,
            other_record_name=other_record_name,
            key=key,
            other_key=other_key,
            root_name=root_name,
        )
        return self._add_stage(component, [primary, other])

    # ------------------------------------------------------------------
    # Stage 3: transformation
    # ------------------------------------------------------------------
    def filter(
        self,
        name: str,
        record_name: str,
        predicate: Callable[[XmlElement], bool],
        inputs: Optional[Sequence[str]] = None,
        root_name: Optional[str] = None,
    ) -> "PipelineBuilder":
        component = FilterComponent(name, record_name, predicate, root_name=root_name)
        return self._add_stage(component, inputs)

    def sort(
        self,
        name: str,
        record_name: str,
        key: str,
        reverse: bool = False,
        numeric: bool = True,
        inputs: Optional[Sequence[str]] = None,
        root_name: Optional[str] = None,
    ) -> "PipelineBuilder":
        component = SortComponent(
            name, record_name, key, reverse=reverse, numeric=numeric, root_name=root_name
        )
        return self._add_stage(component, inputs)

    def rename(
        self,
        name: str,
        mapping: Mapping[str, str],
        inputs: Optional[Sequence[str]] = None,
        root_name: Optional[str] = None,
    ) -> "PipelineBuilder":
        component = RenameComponent(name, dict(mapping), root_name=root_name)
        return self._add_stage(component, inputs)

    def transform(
        self,
        name: str,
        function: Callable[[XmlElement], XmlElement],
        inputs: Optional[Sequence[str]] = None,
    ) -> "PipelineBuilder":
        return self._add_stage(TransformerComponent(name, function), inputs)

    # ------------------------------------------------------------------
    # Stage 4: delivery
    # ------------------------------------------------------------------
    def deliver(
        self,
        deliverer: DelivererComponent,
        inputs: Optional[Sequence[str]] = None,
        *,
        name: Optional[str] = None,
        on_change: Optional[ChangeDetector] = None,
        message: Optional[Callable[[ChangeReport], str]] = None,
        deliver_initial: bool = False,
    ) -> "PipelineBuilder":
        """Attach a deliverer (the configured channel object).

        With ``on_change`` the deliverer is wrapped in a
        :class:`ChangeGatedDeliverer` (named ``name``, defaulting to
        ``"<deliverer>_gate"``) that fires only when the watched records
        changed between activations — the Section 6.2 monitoring pattern.
        """
        stage: Component = deliverer
        if on_change is not None:
            stage = ChangeGatedDeliverer(
                name or f"{deliverer.name}_gate",
                deliverer,
                on_change,
                deliver_initial=deliver_initial,
                message=message,
            )
        else:
            # The gate-only kwargs must not be dropped silently: a message
            # formatter or deliver_initial without a detector means the
            # caller forgot on_change=.
            if message is not None or deliver_initial:
                raise PipelineError(
                    f"deliver({deliverer.name!r}): message=/deliver_initial= "
                    "only apply to change-gated delivery; pass "
                    "on_change=ChangeDetector(...) as well"
                )
            if name is not None and name != deliverer.name:
                raise PipelineError(
                    f"deliverer is named {deliverer.name!r}; an ungated deliver() "
                    f"stage cannot rename it to {name!r}"
                )
        return self._add_stage(stage, inputs)

    # ------------------------------------------------------------------
    # Escape hatch + build
    # ------------------------------------------------------------------
    def stage(
        self,
        component: Component,
        inputs: Optional[Sequence[str]] = None,
        *,
        is_source: bool = False,
    ) -> "PipelineBuilder":
        """Add a custom :class:`Component` (the extension point for stages
        the builder has no verb for)."""
        return self._add_stage(component, inputs, is_source=is_source)

    def connect(self, source: str, target: str) -> "PipelineBuilder":
        """An extra edge between already-declared stages (fan-out)."""
        self._pipe._connect(source, target)
        return self

    def build(
        self,
        *,
        on_diagnostics: Optional[str] = None,
        distributable: bool = False,
    ) -> Pipeline:
        """Validate the whole network and seal it into a :class:`Pipeline`.

        Besides the structural checks (stages exist, sources exist, the
        DAG is acyclic), every wrapper/query program added to the builder
        runs through :mod:`repro.analysis` under ``on_diagnostics`` —
        ``"warn"`` (default) emits a ``DiagnosticWarning`` per
        error-severity finding, ``"strict"`` raises
        :class:`~repro.analysis.diagnostics.AnalysisError`, ``"ignore"``
        skips analysis.  Session-bound builders default to the session's
        ``options.on_diagnostics`` and reuse its cached reports.

        ``distributable=True`` additionally proves every stage pickles —
        the requirement for running the pipe on worker processes
        (``TransformationServer.run_all(distrib=...)``, docs/DISTRIB.md) —
        and raises a :class:`PipelineError` naming the first stage that
        does not (typically a ``filter()``/``tap()`` lambda or a component
        capturing an engine; use named module-level functions and
        declarative stages instead).
        """
        components = self._pipe.components()
        if not components:
            raise PipelineError(f"pipeline {self._pipe.name!r} has no stages")
        if not self._sources:
            raise PipelineError(
                f"pipeline {self._pipe.name!r} has no source stage "
                "(wrapper/query/source)"
            )
        policy = on_diagnostics
        if policy is None:
            policy = (
                self._session.options.on_diagnostics
                if self._session is not None
                else "warn"
            )
        if policy not in POLICIES:
            raise PipelineError(
                f"build(on_diagnostics={policy!r}): expected one of {POLICIES}"
            )
        if policy != "ignore":
            for stage_name, program in self._programs:
                if self._session is not None:
                    report = self._session.analyze(program)
                else:
                    report = _analyze_program(program)
                apply_policy(report, policy, f"pipeline stage {stage_name!r}")
        # Raises on cycles; unreachable stages are impossible by
        # construction (every non-source stage was connected when added).
        self._pipe._topological_order()
        if distributable:
            import pickle

            for component in components:
                try:
                    pickle.dumps(component)
                except Exception as error:
                    raise PipelineError(
                        f"pipeline {self._pipe.name!r} stage "
                        f"{component.name!r} is not distributable: it does "
                        f"not pickle ({type(error).__name__}: {error}).  "
                        "Replace lambdas/closures with module-level "
                        "functions and keep engine-bound state out of "
                        "stage components"
                    ) from error
        return Pipeline(self._pipe, session=self._session, programs=self._programs)

"""The Interactive Pattern Builder, simulated programmatically.

Section 3.2 describes the visual specification loop:

1. select a destination pattern and a parent pattern;
2. the system highlights the instances of the parent pattern on the example
   document;
3. the user marks a subregion of one highlighted region; the system computes
   the best-describing path ``pi`` and adds the rule
   ``p(S, X) <- p0(_, S), subelem(S, pi, X)``;
4. if the filter is too general, the user refines it (generalise the path,
   add conditions); if too narrow, further filters are added.

:class:`PatternBuilderSession` reproduces that loop against a rendered
example document.  Every interaction returns ordinary Elog objects, so the
resulting wrapper can be saved, inspected, and run by the Extractor — the
user never has to write Elog by hand, exactly as the paper stipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..elog.ast import ROOT_PATTERN, Condition, ElogProgram, ElogRule, SubElem
from ..elog.epath import AttributeCondition, ElementPath
from ..elog.extractor import Extractor
from ..elog.instance_base import PatternInstanceBase
from ..tree.document import Document
from ..tree.node import Node
from .generalize import exact_path, generalized_path, suggest_conditions
from .region import RenderedPage


class PatternBuilderError(RuntimeError):
    """Raised on invalid interactions (unknown patterns, bad selections)."""


@dataclass
class FilterProposal:
    """What the builder shows the user after a selection: the rule it would
    add, plus the instances that rule currently matches on the example."""

    rule: ElogRule
    matched_nodes: List[Node]

    def match_count(self) -> int:
        return len(self.matched_nodes)


class PatternBuilderSession:
    """One visual wrapper-specification session over an example document."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self.page = RenderedPage.render(document)
        self.program = ElogProgram()
        self._pattern_names: List[str] = [ROOT_PATTERN]

    # ------------------------------------------------------------------
    # Pattern / filter management
    # ------------------------------------------------------------------
    def patterns(self) -> List[str]:
        return list(self._pattern_names)

    def program_tree(self) -> Dict[str, List[str]]:
        """The pattern/filter tree shown in the GUI (Figure 4, top left)."""
        return {
            pattern: [str(rule) for rule in self.program.rules_for(pattern)]
            for pattern in self._pattern_names
            if pattern != ROOT_PATTERN
        }

    def highlight_instances(self, pattern: str) -> List[Node]:
        """The regions the GUI would highlight for ``pattern``."""
        if pattern == ROOT_PATTERN:
            return [self.document.root]
        base = self._extract()
        return base.nodes_of(pattern)

    # ------------------------------------------------------------------
    # The core interaction: select a region, get a rule
    # ------------------------------------------------------------------
    def propose_filter(
        self,
        pattern: str,
        parent: str,
        selected_text: str,
        occurrence: int = 0,
        generalize: bool = True,
    ) -> FilterProposal:
        """Simulate marking the ``occurrence``-th occurrence of
        ``selected_text`` while defining ``pattern`` under ``parent``.

        Returns the proposed rule together with the nodes it matches so the
        user can decide to accept, refine or generalise it.
        """
        if parent != ROOT_PATTERN and parent not in self._pattern_names:
            raise PatternBuilderError(f"unknown parent pattern {parent!r}")
        target = self.page.select_text(selected_text, occurrence=occurrence)
        if target is None:
            raise PatternBuilderError(f"no region matching {selected_text!r} found")
        if target.label == "#text" and target.parent is not None:
            target = target.parent
        parent_node = self._enclosing_parent_instance(parent, target)
        if parent_node is None:
            raise PatternBuilderError(
                f"the selection is not inside any instance of the parent pattern {parent!r}"
            )
        path = generalized_path(parent_node, target) if generalize else exact_path(parent_node, target)
        rule = ElogRule(pattern=pattern, parent=parent, extraction=SubElem(path=path))
        return FilterProposal(rule=rule, matched_nodes=self._matches_of(rule))

    def propose_filter_region(
        self,
        pattern: str,
        parent: str,
        start: int,
        end: int,
        generalize: bool = True,
    ) -> FilterProposal:
        """Like :meth:`propose_filter` but with an explicit character region
        of the rendered page (a mouse drag spanning several elements)."""
        if parent != ROOT_PATTERN and parent not in self._pattern_names:
            raise PatternBuilderError(f"unknown parent pattern {parent!r}")
        target = self.page.node_for_selection(start, end)
        if target is None:
            raise PatternBuilderError("the selected region does not cover any node")
        if target.label == "#text" and target.parent is not None:
            target = target.parent
        parent_node = self._enclosing_parent_instance(parent, target)
        if parent_node is None:
            raise PatternBuilderError(
                f"the selection is not inside any instance of the parent pattern {parent!r}"
            )
        path = generalized_path(parent_node, target) if generalize else exact_path(parent_node, target)
        rule = ElogRule(pattern=pattern, parent=parent, extraction=SubElem(path=path))
        return FilterProposal(rule=rule, matched_nodes=self._matches_of(rule))

    def accept(self, proposal: FilterProposal) -> ElogRule:
        """Add the proposed filter to the wrapper program."""
        self.program.add_rule(proposal.rule)
        if proposal.rule.pattern not in self._pattern_names:
            self._pattern_names.append(proposal.rule.pattern)
        return proposal.rule

    # ------------------------------------------------------------------
    # Refinement actions (the "filter too general / too specific" loop)
    # ------------------------------------------------------------------
    def refine_with_attribute(
        self, proposal: FilterProposal, attribute: str, value: str, mode: str = "exact"
    ) -> FilterProposal:
        rule = proposal.rule
        extraction = rule.extraction
        assert isinstance(extraction, SubElem)
        refined_path = ElementPath(
            steps=extraction.path.steps,
            conditions=extraction.path.conditions + (AttributeCondition(attribute, value, mode),),
        )
        refined = ElogRule(
            pattern=rule.pattern,
            parent=rule.parent,
            extraction=SubElem(path=refined_path),
            conditions=rule.conditions,
        )
        return FilterProposal(rule=refined, matched_nodes=self._matches_of(refined))

    def refine_with_condition(self, proposal: FilterProposal, condition: Condition) -> FilterProposal:
        rule = proposal.rule
        refined = ElogRule(
            pattern=rule.pattern,
            parent=rule.parent,
            extraction=rule.extraction,
            conditions=rule.conditions + (condition,),
        )
        return FilterProposal(rule=refined, matched_nodes=self._matches_of(refined))

    def suggested_refinements(self, proposal: FilterProposal) -> List[AttributeCondition]:
        """Attribute conditions the GUI would offer for the first match."""
        if not proposal.matched_nodes:
            return []
        return suggest_conditions(proposal.matched_nodes[0])

    # ------------------------------------------------------------------
    # Testing the wrapper (the "test pattern" button)
    # ------------------------------------------------------------------
    def test_pattern(self, pattern: str) -> List[str]:
        """The extracted textual instances of ``pattern`` on the example."""
        return self._extract().values_of(pattern)

    def wrapper(self) -> ElogProgram:
        """The Elog program built so far."""
        return self.program

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _extract(self) -> PatternInstanceBase:
        return Extractor(self.program).extract(document=self.document)

    def _enclosing_parent_instance(self, parent: str, target: Node) -> Optional[Node]:
        if parent == ROOT_PATTERN:
            return self.document.root
        candidates = [
            node
            for node in self.highlight_instances(parent)
            if node.is_ancestor_of(target)
        ]
        if not candidates:
            return None
        # the innermost enclosing instance
        return max(candidates, key=lambda node: node.preorder_index)

    def _matches_of(self, rule: ElogRule) -> List[Node]:
        probe = ElogProgram(rules=[r for r in self.program.rules] + [rule])
        base = Extractor(probe).extract(document=self.document)
        return base.nodes_of(rule.pattern)

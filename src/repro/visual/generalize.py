"""Path computation and generalisation for the Pattern Builder.

Given a parent node and a selected target node, the builder computes the tag
path between them (the ``pi`` of Section 3.2) and can *generalise* it — the
operation the paper describes for obtaining e.g. TMNF-style rules: replace a
concrete path by a wildcard path (``?``-prefixed), drop leading steps, or
keep only the target's tag.
"""

from __future__ import annotations

from typing import List, Optional

from ..elog.epath import AttributeCondition, ElementPath
from ..tree.node import Node


def path_between(parent: Node, target: Node) -> Optional[List[str]]:
    """The label path from ``parent`` (exclusive) to ``target`` (inclusive)."""
    if parent is target or not parent.is_ancestor_of(target):
        return None
    labels: List[str] = []
    node: Optional[Node] = target
    while node is not None and node is not parent:
        labels.append(node.label)
        node = node.parent
    labels.reverse()
    return labels


def exact_path(parent: Node, target: Node) -> ElementPath:
    """The fully concrete element path from ``parent`` to ``target``."""
    labels = path_between(parent, target)
    if labels is None:
        raise ValueError("target is not a descendant of the parent node")
    return ElementPath(steps=tuple(labels))


def generalized_path(parent: Node, target: Node) -> ElementPath:
    """The standard generalisation: ``?`` followed by the target's tag.

    This is the robust form the Pattern Builder proposes by default — it
    survives changes of the intermediate structure (Section 2.5's schema-less
    argument).
    """
    return ElementPath(steps=("?", target.label))


def generalize_last_step(path: ElementPath) -> ElementPath:
    """Replace the last named step by ``*`` (used when generalising from a
    specific tag to "any element here")."""
    if not path.steps:
        return path
    return ElementPath(steps=path.steps[:-1] + ("*",), conditions=path.conditions)


def add_attribute_condition(
    path: ElementPath, attribute: str, value: str, mode: str = "exact"
) -> ElementPath:
    """Refine a path with an attribute condition (a visual "restrict" action)."""
    return ElementPath(
        steps=path.steps,
        conditions=path.conditions + (AttributeCondition(attribute, value, mode),),
    )


def suggest_conditions(target: Node, max_conditions: int = 3) -> List[AttributeCondition]:
    """Attribute conditions the builder offers for refining a filter.

    Class and id attributes come first (they are the most robust anchors),
    then other attributes, then a text condition.
    """
    suggestions: List[AttributeCondition] = []
    for attribute in ("class", "id"):
        if attribute in target.attributes:
            suggestions.append(AttributeCondition(attribute, target.attributes[attribute], "exact"))
    for attribute, value in target.attributes.items():
        if attribute in ("class", "id"):
            continue
        suggestions.append(AttributeCondition(attribute, value, "exact"))
    text = target.normalized_text()
    if text:
        word = text.split()[0]
        suggestions.append(AttributeCondition("elementtext", word, "substr"))
    return suggestions[:max_conditions]

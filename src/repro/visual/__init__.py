"""Visual wrapper specification (the Interactive Pattern Builder, simulated)."""

from .generalize import (
    add_attribute_condition,
    exact_path,
    generalize_last_step,
    generalized_path,
    path_between,
    suggest_conditions,
)
from .pattern_builder import FilterProposal, PatternBuilderError, PatternBuilderSession
from .region import RenderedPage

__all__ = [
    "FilterProposal",
    "PatternBuilderError",
    "PatternBuilderSession",
    "RenderedPage",
    "add_attribute_condition",
    "exact_path",
    "generalize_last_step",
    "generalized_path",
    "path_between",
    "suggest_conditions",
]

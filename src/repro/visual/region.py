"""Mapping screen selections to document nodes.

Section 3.2: "By marking a region of an example Web document displayed on
screen using an input device such as a mouse, the node in the document tree
best matching the selected region can be robustly determined."

The GUI is simulated: a page is rendered to plain text with per-node
character spans (:func:`repro.html.render_text_with_spans`), a "mouse
selection" is a character interval of that text, and the best matching node
is the deepest node whose span covers the selection (ties broken towards the
smallest covering span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..html.render import render_text_with_spans
from ..tree.document import Document
from ..tree.node import Node


@dataclass
class RenderedPage:
    """A document together with its text rendering and node spans."""

    document: Document
    text: str
    spans: Dict[int, Tuple[int, int]]

    @classmethod
    def render(cls, document: Document) -> "RenderedPage":
        text, spans = render_text_with_spans(document)
        return cls(document=document, text=text, spans=spans)

    # ------------------------------------------------------------------
    def node_for_selection(self, start: int, end: int) -> Optional[Node]:
        """The deepest node whose rendered span covers [start, end)."""
        if start > end:
            start, end = end, start
        best: Optional[Node] = None
        best_width = None
        for node in self.document:
            span = self.spans.get(id(node))
            if span is None:
                continue
            span_start, span_end = span
            if span_start <= start and end <= span_end and span_end > span_start:
                width = span_end - span_start
                if best_width is None or width <= best_width:
                    # prefer element nodes over bare text nodes of equal width
                    if (
                        best_width is not None
                        and width == best_width
                        and node.label == "#text"
                        and best is not None
                        and best.label != "#text"
                    ):
                        continue
                    best = node
                    best_width = width
        return best

    def select_text(self, fragment: str, occurrence: int = 0) -> Optional[Node]:
        """Simulate selecting the ``occurrence``-th occurrence of ``fragment``."""
        position = -1
        for _ in range(occurrence + 1):
            position = self.text.find(fragment, position + 1)
            if position < 0:
                return None
        return self.node_for_selection(position, position + len(fragment))

    def span_of(self, node: Node) -> Tuple[int, int]:
        return self.spans[id(node)]

    def highlight(self, node: Node) -> str:
        """The rendered text of ``node`` (what the GUI would highlight)."""
        start, end = self.spans[id(node)]
        return self.text[start:end].strip()

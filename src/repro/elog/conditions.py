"""Evaluation of Elog condition atoms.

The paper distinguishes (Section 3.3) context conditions (``before`` /
``after`` with distance tolerances), internal conditions (``contains``,
``firstsubtree``), concept conditions (``isCurrency`` ...), comparison
conditions, and pattern references.  This module evaluates a single condition
against one extraction candidate.

Path interpretation: extraction paths (``subelem``) are anchored at the
parent node, but context- and internal-condition paths are matched anywhere
within the relevant subtree (an implicit leading ``?``) — the paper stresses
that "before and after predicates are much more flexible in that they allow
for nodes before or after the target pattern instance node to be arbitrarily
distant".

Distance semantics: for a witness node B occurring before the target X, the
distance is the number of document-order positions between the end of B's
subtree and the start of X (0 = immediately adjacent); symmetrically for
``after``.  This reproduces the 0/0 tolerances of Figure 5 (the sequence
starts right after the list header and is immediately followed by an ``hr``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..tree.document import Document
from ..tree.node import Node
from .ast import (
    AfterCondition,
    BeforeCondition,
    ComparisonCondition,
    ConceptCondition,
    Condition,
    ContainsCondition,
    FirstSubtreeCondition,
    PatternReference,
)
from .concepts import DEFAULT_CONCEPTS, ConceptRegistry, parse_date, parse_number
from .epath import ElementPath
from .instance_base import PatternInstanceBase

Target = Union[Node, Sequence[Node], str]


@dataclass
class ConditionContext:
    """Everything a condition may need to look at."""

    document: Document
    parent_node: Optional[Node]
    parent_nodes: Optional[List[Node]]  # sequence parents
    target: Target
    bindings: Dict[str, object] = field(default_factory=dict)
    instance_base: Optional[PatternInstanceBase] = None
    concepts: ConceptRegistry = field(default_factory=lambda: DEFAULT_CONCEPTS)

    # -- helpers -----------------------------------------------------------
    def target_nodes(self) -> List[Node]:
        if isinstance(self.target, Node):
            return [self.target]
        if isinstance(self.target, str):
            return []
        return list(self.target)

    def target_span(self) -> Optional[Tuple[int, int]]:
        """(start, end) of the target in document order; None for strings."""
        nodes = self.target_nodes()
        if not nodes:
            return None
        start = nodes[0].preorder_index
        last = nodes[-1]
        end = last.preorder_index + last.subtree_size()
        return start, end

    def scope_node(self) -> Optional[Node]:
        if self.parent_node is not None:
            return self.parent_node
        if self.parent_nodes:
            return self.parent_nodes[0].parent or self.parent_nodes[0]
        return None

    def value_of(self, argument: str) -> Optional[object]:
        """The value of a condition argument: X = the target, otherwise a
        bound variable."""
        if argument == "X":
            if isinstance(self.target, str):
                return self.target
            nodes = self.target_nodes()
            return nodes[0].normalized_text() if nodes else None
        value = self.bindings.get(argument)
        if isinstance(value, Node):
            return value.normalized_text()
        return value


def _lenient_path(path: ElementPath) -> ElementPath:
    """Prefix the path with '?' so it matches anywhere within the subtree."""
    if path.steps and path.steps[0] == "?":
        return path
    return ElementPath(steps=("?",) + path.steps, conditions=path.conditions)


def _witnesses_in_scope(context: ConditionContext, path: ElementPath) -> List[Tuple[Node, Dict[str, str]]]:
    scope = context.scope_node()
    if scope is None:
        return []
    return _lenient_path(path).find_targets(scope)


def evaluate_condition(condition: Condition, context: ConditionContext) -> List[Dict[str, object]]:
    """Evaluate one condition.

    Returns the list of possible binding extensions: empty when the condition
    fails, one empty dict for plain success, and one dict per witness for
    binding conditions (``before``/``after``/``contains`` with a ``bind``
    variable) — the extractor backtracks over these alternatives, so later
    pattern-reference or concept conditions can reject one witness and accept
    another.  ``FirstSubtreeCondition`` is handled by the extractor (it is a
    property of the candidate *set*) and always succeeds here.
    """
    if isinstance(condition, BeforeCondition):
        return _evaluate_context_condition(condition, context, before=True)
    if isinstance(condition, AfterCondition):
        return _evaluate_context_condition(condition, context, before=False)
    if isinstance(condition, ContainsCondition):
        return _evaluate_contains(condition, context)
    if isinstance(condition, FirstSubtreeCondition):
        return [{}]
    if isinstance(condition, ConceptCondition):
        return _evaluate_concept(condition, context)
    if isinstance(condition, ComparisonCondition):
        return _evaluate_comparison(condition, context)
    if isinstance(condition, PatternReference):
        return _evaluate_pattern_reference(condition, context)
    raise TypeError(f"unknown condition type {type(condition).__name__}")


# ---------------------------------------------------------------------------
# Context conditions
# ---------------------------------------------------------------------------


def _evaluate_context_condition(
    condition: Union[BeforeCondition, AfterCondition],
    context: ConditionContext,
    before: bool,
) -> List[Dict[str, object]]:
    span = context.target_span()
    if span is None:
        return []
    target_start, target_end = span
    target_nodes = set(id(n) for node in context.target_nodes() for n in node.iter_preorder())
    witnesses = _witnesses_in_scope(context, condition.path)
    found: List[Dict[str, object]] = []
    for node, bindings in witnesses:
        if id(node) in target_nodes:
            continue
        if before:
            witness_end = node.preorder_index + node.subtree_size()
            if witness_end > target_start:
                continue
            distance = target_start - witness_end
        else:
            if node.preorder_index < target_end:
                continue
            distance = node.preorder_index - target_end
        if condition.min_distance <= distance <= condition.max_distance:
            result: Dict[str, object] = dict(bindings)
            if condition.bind:
                result[condition.bind] = node
            found.append(result)
    if condition.negated:
        return [{}] if not found else []
    return found


# ---------------------------------------------------------------------------
# Internal conditions
# ---------------------------------------------------------------------------


def _evaluate_contains(
    condition: ContainsCondition, context: ConditionContext
) -> List[Dict[str, object]]:
    found: List[Dict[str, object]] = []
    for target_node in context.target_nodes():
        for node, bindings in _lenient_path(condition.path).find_targets(target_node):
            result: Dict[str, object] = dict(bindings)
            if condition.bind:
                result[condition.bind] = node
            found.append(result)
    if condition.negated:
        return [{}] if not found else []
    return found


# ---------------------------------------------------------------------------
# Concept / comparison / pattern-reference conditions
# ---------------------------------------------------------------------------


def _evaluate_concept(
    condition: ConceptCondition, context: ConditionContext
) -> List[Dict[str, object]]:
    value = context.value_of(condition.argument)
    if value is None:
        return [{}] if condition.negated else []
    holds = context.concepts.check(condition.concept, value)
    if condition.negated:
        holds = not holds
    return [{}] if holds else []


def _evaluate_comparison(
    condition: ComparisonCondition, context: ConditionContext
) -> List[Dict[str, object]]:
    left = context.value_of(condition.left)
    right = context.value_of(condition.right)
    if left is None or right is None:
        return []
    left_value, right_value = _coerce_pair(left, right)
    operators = {
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "eq": lambda a, b: a == b,
        "neq": lambda a, b: a != b,
    }
    if condition.operator not in operators:
        raise ValueError(f"unknown comparison operator {condition.operator!r}")
    try:
        return [{}] if operators[condition.operator](left_value, right_value) else []
    except TypeError:
        return []


def _coerce_pair(left: object, right: object) -> Tuple[object, object]:
    """Try to compare as numbers, then as dates, then as strings."""
    left_text, right_text = str(left), str(right)
    left_number, right_number = parse_number(left_text), parse_number(right_text)
    if left_number is not None and right_number is not None:
        return left_number, right_number
    left_date, right_date = parse_date(left_text), parse_date(right_text)
    if left_date is not None and right_date is not None:
        return left_date, right_date
    return left_text, right_text


def _evaluate_pattern_reference(
    condition: PatternReference, context: ConditionContext
) -> List[Dict[str, object]]:
    if context.instance_base is None:
        return []
    value = context.bindings.get(condition.argument)
    if condition.argument == "X" and value is None:
        nodes = context.target_nodes()
        value = nodes[0] if nodes else None
    holds = isinstance(value, Node) and context.instance_base.node_is_instance_of(
        condition.pattern, value
    )
    if condition.negated:
        holds = not holds
    return [{}] if holds else []

"""Element path definitions — the tree-extraction patterns of Elog.

Section 3.3: the ``subelem`` predicate takes an *element path definition*: a
path over tag names that may contain wildcards (certain regular expressions
over tag names) and attribute conditions on the target node.

Concrete syntax (as in Figure 5 of the paper)::

    .table                         a direct child labelled table
    .body.table                    a table child of a body child
    ?.td                           a td at arbitrary depth
    ?.td.?.a                       an a somewhere below a td somewhere below
    (?.td, [(elementtext, \\var[Y].*, regvar)])
                                   a td whose text matches the pattern,
                                   binding Y to the matched prefix
    (.table, [(class, listing, exact)])
                                   a direct child table with class="listing"

Semantics of the path part: the sequence of labels on the path from the
parent node (exclusive) to the target node (inclusive) must match the
sequence of steps, where a named step matches exactly that tag, ``*`` matches
any single tag, and ``?`` matches any (possibly empty) sequence of tags.

Attribute conditions are triples ``(attribute, value, mode)``:

* ``attribute`` is an HTML attribute name, or ``elementtext`` for the
  normalised text of the target subtree, or a tag name (asserting that the
  target contains such a descendant whose text/attributes match — the form
  used for ``(a, , substr)`` in Figure 5);
* ``mode`` is ``exact``, ``substr``, ``regexp`` or ``regvar``; ``regvar``
  makes the condition *binding*: the pattern must contain ``\\var[NAME]`` and
  the text matched by that group is bound to the Elog variable ``NAME``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..tree.node import Node

VAR_PATTERN = re.compile(r"\\var\[(?P<name>[A-Za-z_][A-Za-z0-9_]*)\]")


class EPathSyntaxError(ValueError):
    """Raised when an element path definition cannot be parsed."""


@dataclass(frozen=True)
class AttributeCondition:
    """One attribute condition of an element path definition."""

    attribute: str
    value: str
    mode: str = "substr"  # exact | substr | regexp | regvar

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "substr", "regexp", "regvar"):
            raise EPathSyntaxError(f"unknown attribute condition mode {self.mode!r}")

    # -- evaluation -----------------------------------------------------
    def matches(self, node: Node) -> Optional[Dict[str, str]]:
        """Check the condition on ``node``.

        Returns ``None`` on failure, or a (possibly empty) dict of variable
        bindings on success.
        """
        subject = self._subject_text(node)
        if subject is None:
            return None
        if self.mode == "exact":
            return {} if subject.strip() == self.value else None
        if self.mode == "substr":
            return {} if self.value in subject else None
        # regexp / regvar
        pattern, variable_names = compile_variable_pattern(self.value)
        match = pattern.search(subject)
        if match is None:
            return None
        if self.mode == "regexp":
            return {}
        return {name: match.group(name) for name in variable_names}

    def _subject_text(self, node: Node) -> Optional[str]:
        if self.attribute == "elementtext":
            return node.normalized_text()
        if self.attribute in node.attributes:
            return node.attributes[self.attribute]
        # Figure 5 uses conditions like (a, , substr): the target must contain
        # a descendant element with that tag; the "value" (if any) must occur
        # in its text.
        for descendant in node.iter_preorder():
            if descendant is node:
                continue
            if descendant.label == self.attribute:
                return descendant.normalized_text()
        return None

    def __str__(self) -> str:
        return f"({self.attribute}, {self.value}, {self.mode})"


def compile_variable_pattern(pattern_text: str) -> Tuple[re.Pattern, List[str]]:
    """Compile a pattern that may contain ``\\var[NAME]`` capture markers.

    A variable marker matches one maximal whitespace-free token (so
    ``\\var[Y].*`` on the text ``"EUR 12.50"`` binds ``Y`` to ``EUR``); for
    arbitrary captures write an explicit regular expression group instead.
    """
    names: List[str] = []

    def replace(match: re.Match) -> str:
        name = match.group("name")
        names.append(name)
        return f"(?P<{name}>\\S+)"

    regex_text = VAR_PATTERN.sub(replace, pattern_text)
    try:
        return re.compile(regex_text), names
    except re.error as error:
        raise EPathSyntaxError(f"invalid pattern {pattern_text!r}: {error}") from error


@dataclass(frozen=True)
class ElementPath:
    """A parsed element path definition: steps plus attribute conditions."""

    steps: Tuple[str, ...]
    conditions: Tuple[AttributeCondition, ...] = ()

    # -- parsing ------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ElementPath":
        """Parse the concrete syntax described in the module docstring."""
        text = text.strip()
        conditions: Tuple[AttributeCondition, ...] = ()
        if text.startswith("(") and text.endswith(")"):
            inner = text[1:-1].strip()
            path_part, conditions = _split_path_and_conditions(inner)
        else:
            path_part = text
        steps = tuple(step for step in path_part.strip().strip(".").split(".") if step)
        if not steps:
            raise EPathSyntaxError(f"empty element path in {text!r}")
        for step in steps:
            if step != "?" and step != "*" and not re.fullmatch(r"[A-Za-z0-9_#\-]+", step):
                raise EPathSyntaxError(f"invalid path step {step!r} in {text!r}")
        return cls(steps=steps, conditions=conditions)

    # -- evaluation -----------------------------------------------------------
    def matches_path(self, labels: Sequence[str]) -> bool:
        """Does the label sequence (parent-exclusive, target-inclusive) match?"""
        return _match_steps(self.steps, tuple(labels))

    def match_target(self, parent: Node, target: Node) -> Optional[Dict[str, str]]:
        """Check whether ``target`` is reachable from ``parent`` via this path
        and satisfies the attribute conditions.

        Returns variable bindings on success, ``None`` on failure.
        """
        if target is parent or not parent.is_ancestor_of(target):
            return None
        labels: List[str] = []
        node = target
        while node is not parent and node is not None:
            labels.append(node.label)
            node = node.parent
        labels.reverse()
        if not self.matches_path(labels):
            return None
        bindings: Dict[str, str] = {}
        for condition in self.conditions:
            result = condition.matches(target)
            if result is None:
                return None
            bindings.update(result)
        return bindings

    def find_targets(self, parent: Node) -> List[Tuple[Node, Dict[str, str]]]:
        """All descendants of ``parent`` matched by this path, in doc order."""
        results: List[Tuple[Node, Dict[str, str]]] = []
        for node in parent.iter_descendants():
            if node.label in ("#comment",):
                continue
            bindings = self.match_target(parent, node)
            if bindings is not None:
                results.append((node, bindings))
        return results

    # -- display ---------------------------------------------------------------
    def __str__(self) -> str:
        path_text = "." + ".".join(self.steps) if self.steps[0] != "?" else ".".join(self.steps)
        if not self.conditions:
            return path_text
        condition_text = ", ".join(str(condition) for condition in self.conditions)
        return f"({path_text}, [{condition_text}])"


def _split_path_and_conditions(inner: str) -> Tuple[str, Tuple[AttributeCondition, ...]]:
    """Split "path, [conditions]" taking nesting into account."""
    depth = 0
    for position, character in enumerate(inner):
        if character in "([":
            depth += 1
        elif character in ")]":
            depth -= 1
        elif character == "," and depth == 0:
            path_part = inner[:position]
            condition_part = inner[position + 1:].strip()
            return path_part, _parse_conditions(condition_part)
    return inner, ()


def _parse_conditions(text: str) -> Tuple[AttributeCondition, ...]:
    text = text.strip()
    if not text or text == "[]":
        return ()
    if not (text.startswith("[") and text.endswith("]")):
        raise EPathSyntaxError(f"attribute conditions must be a [...] list, got {text!r}")
    inner = text[1:-1].strip()
    if not inner:
        return ()
    conditions: List[AttributeCondition] = []
    for chunk in _split_top_level(inner):
        chunk = chunk.strip()
        if not (chunk.startswith("(") and chunk.endswith(")")):
            raise EPathSyntaxError(f"attribute condition must be a (...) triple, got {chunk!r}")
        parts = [part.strip() for part in _split_top_level(chunk[1:-1])]
        if len(parts) == 2:
            attribute, value = parts
            mode = "substr"
        elif len(parts) == 3:
            attribute, value, mode = parts
            mode = mode or "substr"
        else:
            raise EPathSyntaxError(f"attribute condition needs 2 or 3 fields: {chunk!r}")
        conditions.append(AttributeCondition(attribute, value, mode))
    return tuple(conditions)


def _split_top_level(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for character in text:
        if character in "([":
            depth += 1
        elif character in ")]":
            depth -= 1
        if character == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(character)
    parts.append("".join(current))
    return parts


def _match_steps(steps: Tuple[str, ...], labels: Tuple[str, ...]) -> bool:
    """Match the step sequence against a label sequence (``?`` = any run)."""
    memo: Dict[Tuple[int, int], bool] = {}

    def match(step_index: int, label_index: int) -> bool:
        key = (step_index, label_index)
        if key in memo:
            return memo[key]
        if step_index == len(steps):
            result = label_index == len(labels)
        elif steps[step_index] == "?":
            # '?' matches any (possibly empty) run of labels
            result = any(
                match(step_index + 1, next_index)
                for next_index in range(label_index, len(labels) + 1)
            )
        elif label_index >= len(labels):
            result = False
        elif steps[step_index] == "*" or steps[step_index] == labels[label_index]:
            result = match(step_index + 1, label_index + 1)
        else:
            result = False
        memo[key] = result
        return result

    return match(0, 0)

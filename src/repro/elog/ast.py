"""Abstract syntax of Elog programs.

A standard Elog rule (Section 3.3) has the form

    New(S, X) <- Par(_, S), Ex(S, X), Conditions(S, X)

where ``S`` is the parent-instance variable, ``X`` the pattern-instance
variable, ``Ex`` an extraction definition atom (``subelem``, ``subtext``,
``subsq``, ``subatt`` or ``document``), and the conditions restrict the
extracted instances.  Specialisation rules lack the extraction atom and match
a subset of the parent pattern's nodes.

Pattern predicates are *binary* — the first argument carries the parent
instance — which is what lets the extracted instances form the hierarchical
pattern instance base that the XML Designer turns into XML (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from .epath import ElementPath
from .textpath import AttributePath, TextPath

ROOT_PATTERN = "document"  # reserved pattern name for the document root


# ---------------------------------------------------------------------------
# Extraction definition atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubElem:
    """Tree extraction: descendants of the parent node matching a path."""

    path: ElementPath
    target: str = "X"

    def __str__(self) -> str:
        return f"subelem(S, {self.path}, {self.target})"


@dataclass(frozen=True)
class SubText:
    """String extraction: substrings of the parent node's text."""

    path: TextPath
    target: str = "X"

    def __str__(self) -> str:
        return f"subtext(S, {self.path}, {self.target})"


@dataclass(frozen=True)
class SubAtt:
    """Attribute extraction: the value of an attribute of the parent node."""

    path: AttributePath
    target: str = "X"

    def __str__(self) -> str:
        return f"subatt(S, {self.path.attribute}, {self.target})"


@dataclass(frozen=True)
class SubSequence:
    """Sequence extraction (``subsq``): the largest runs of consecutive
    children of a node matching ``inner`` that start with a node matching
    ``first`` and end with a node matching ``last`` (Figure 5's
    ``<tableseq>`` pattern)."""

    scope: ElementPath
    first: ElementPath
    last: ElementPath
    target: str = "X"

    def __str__(self) -> str:
        return f"subsq(S, {self.scope}, {self.first}, {self.last}, {self.target})"


@dataclass(frozen=True)
class DocumentSource:
    """Crawling atom: binds the parent variable to a fetched document root.

    ``url`` is either a literal URL or the name of a variable bound by a
    pattern reference / attribute extraction (enabling recursive crawling).
    """

    url: str
    is_variable: bool = False

    def __str__(self) -> str:
        return f'document("{self.url}", S)' if not self.is_variable else f"document({self.url}, S)"


Extraction = Union[SubElem, SubText, SubAtt, SubSequence]


# ---------------------------------------------------------------------------
# Condition atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BeforeCondition:
    """Context condition: a node matching ``path`` occurs *before* the target
    (within the parent subtree), at a document-order distance within
    ``[min_distance, max_distance]``; optionally binds the witness node."""

    path: ElementPath
    min_distance: int = 0
    max_distance: int = 10 ** 9
    bind: Optional[str] = None
    negated: bool = False

    def __str__(self) -> str:
        name = "notbefore" if self.negated else "before"
        bind = f", {self.bind}" if self.bind else ""
        return f"{name}(S, X, {self.path}, {self.min_distance}, {self.max_distance}{bind})"


@dataclass(frozen=True)
class AfterCondition:
    """Context condition: a node matching ``path`` occurs *after* the target."""

    path: ElementPath
    min_distance: int = 0
    max_distance: int = 10 ** 9
    bind: Optional[str] = None
    negated: bool = False

    def __str__(self) -> str:
        name = "notafter" if self.negated else "after"
        bind = f", {self.bind}" if self.bind else ""
        return f"{name}(S, X, {self.path}, {self.min_distance}, {self.max_distance}{bind})"


@dataclass(frozen=True)
class ContainsCondition:
    """Internal condition: the target subtree (does not) contain a node
    matching ``path``; optionally binds the witness node."""

    path: ElementPath
    bind: Optional[str] = None
    negated: bool = False

    def __str__(self) -> str:
        name = "notcontains" if self.negated else "contains"
        bind = f", {self.bind}" if self.bind else ""
        return f"{name}(X, {self.path}{bind})"


@dataclass(frozen=True)
class FirstSubtreeCondition:
    """Internal condition: keep only the first matching target per parent."""

    def __str__(self) -> str:
        return "firstsubtree(S, X)"


@dataclass(frozen=True)
class ConceptCondition:
    """Concept condition: ``isCurrency(Y)``, ``isDate(X)``, ...

    ``argument`` is either the target variable name or a variable bound by a
    ``regvar`` attribute condition / ``\\var[...]`` marker / ``bind`` field.
    """

    concept: str
    argument: str = "X"
    negated: bool = False

    def __str__(self) -> str:
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.concept}({self.argument})"


@dataclass(frozen=True)
class ComparisonCondition:
    """Comparison condition: ``lt(Y, Z)`` etc. over bound values."""

    operator: str  # lt | le | gt | ge | eq | neq
    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.operator}({self.left}, {self.right})"


@dataclass(frozen=True)
class PatternReference:
    """Pattern reference condition: the bound node must be an instance of
    another pattern (``price(_, Y)`` in the ``bids`` rule of Figure 5)."""

    pattern: str
    argument: str
    negated: bool = False

    def __str__(self) -> str:
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.pattern}(_, {self.argument})"


Condition = Union[
    BeforeCondition,
    AfterCondition,
    ContainsCondition,
    FirstSubtreeCondition,
    ConceptCondition,
    ComparisonCondition,
    PatternReference,
]


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass
class ElogRule:
    """One Elog rule (a *filter* in the visual metaphor)."""

    pattern: str
    parent: str
    extraction: Optional[Union[Extraction, DocumentSource]] = None
    conditions: Tuple[Condition, ...] = ()
    # Specialisation rules (footnote 6) have no extraction atom: they select a
    # subset of the parent pattern's own instances.
    document: Optional[DocumentSource] = None

    def is_specialisation(self) -> bool:
        return self.extraction is None and self.document is None

    def is_document_rule(self) -> bool:
        return self.document is not None

    def referenced_patterns(self) -> Set[str]:
        result = {self.parent}
        for condition in self.conditions:
            if isinstance(condition, PatternReference):
                result.add(condition.pattern)
        return result

    def __str__(self) -> str:
        parts: List[str] = []
        if self.document is not None:
            parts.append(str(self.document))
        else:
            parts.append(f"{self.parent}(_, S)")
        if self.extraction is not None and not isinstance(self.extraction, DocumentSource):
            parts.append(str(self.extraction))
        parts.extend(str(condition) for condition in self.conditions)
        return f"{self.pattern}(S, X) <- " + ", ".join(parts) + "."


@dataclass
class ElogProgram:
    """An Elog program: a set of rules defining patterns (a *wrapper*)."""

    rules: List[ElogRule] = field(default_factory=list)
    # Patterns whose instances should not appear in the XML output.
    auxiliary_patterns: Set[str] = field(default_factory=set)

    def add_rule(self, rule: ElogRule) -> "ElogProgram":
        self.rules.append(rule)
        return self

    def patterns(self) -> List[str]:
        seen: List[str] = []
        for rule in self.rules:
            if rule.pattern not in seen:
                seen.append(rule.pattern)
        return seen

    def rules_for(self, pattern: str) -> List[ElogRule]:
        return [rule for rule in self.rules if rule.pattern == pattern]

    def parent_of(self, pattern: str) -> Set[str]:
        return {rule.parent for rule in self.rules_for(pattern)}

    def size(self) -> int:
        return sum(2 + len(rule.conditions) for rule in self.rules)

    def mark_auxiliary(self, *patterns: str) -> "ElogProgram":
        self.auxiliary_patterns.update(patterns)
        return self

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

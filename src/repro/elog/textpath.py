"""String path definitions — the string-extraction patterns of Elog.

Section 3.3: the second extraction method is string based.  The ``subtext``
predicate takes a *string path definition*: a regular expression specifying
which substrings of an element's text are extracted.  The expression may
contain ``\\var[NAME]`` markers, which both act as capture groups and bind
Elog variables usable in concept or comparison conditions (see the
``currency`` rule of Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..tree.node import Node
from .epath import compile_variable_pattern


@dataclass(frozen=True)
class TextPath:
    """A compiled string path definition."""

    pattern_text: str

    @classmethod
    def parse(cls, text: str) -> "TextPath":
        return cls(pattern_text=text.strip())

    def find_matches(self, node: Node) -> List[Tuple[str, Dict[str, str]]]:
        """All (matched substring, bindings) pairs in the node's text."""
        text = node.normalized_text()
        pattern, names = compile_variable_pattern(self.pattern_text)
        results: List[Tuple[str, Dict[str, str]]] = []
        for match in pattern.finditer(text):
            bindings = {name: match.group(name) for name in names if match.group(name)}
            results.append((match.group(0), bindings))
        return results

    def __str__(self) -> str:
        return self.pattern_text


@dataclass(frozen=True)
class AttributePath:
    """The ``subatt`` extraction: the value of an attribute of the parent node."""

    attribute: str

    @classmethod
    def parse(cls, text: str) -> "AttributePath":
        return cls(attribute=text.strip())

    def find_matches(self, node: Node) -> List[Tuple[str, Dict[str, str]]]:
        value = node.attributes.get(self.attribute)
        if value is None:
            return []
        return [(value, {})]

    def __str__(self) -> str:
        return self.attribute

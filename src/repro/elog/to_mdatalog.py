"""Translating the Elog- core fragment into monadic datalog.

Section 3 / [14]: the core of Elog (Elog-) is essentially monadic datalog
with a binary syntax; in particular a tree-extraction rule

    p(S, X) <- par(_, S), subelem(S, path, X)

corresponds to monadic datalog rules deriving ``p`` at the nodes reached from
``par`` nodes along ``path`` (the paper notes that ``subelem`` is a shortcut
for a conjunction of child and label atoms).  This module performs that
translation for the fragment without string extraction, sequences or
conditions — enough to make the Elog- = monadic datalog correspondence
executable and testable (the Extractor and the compiled program must select
the same nodes per pattern).
"""

from __future__ import annotations

import itertools
from typing import List

from ..datalog.ast import Atom, Literal, Rule, Variable
from ..datalog.tree_edb import label_predicate
from ..mdatalog.program import MonadicProgram
from .ast import ROOT_PATTERN, ElogProgram, ElogRule, SubElem

X = Variable("X")
X0 = Variable("X0")


class ElogTranslationError(ValueError):
    """Raised for rules outside the translatable Elog- fragment."""


def pattern_predicate(pattern: str) -> str:
    return f"pattern_{pattern}"


def to_monadic_datalog(program: ElogProgram) -> MonadicProgram:
    """Translate an Elog- program into an equivalent monadic datalog program.

    Supported rules: ``subelem`` extraction from a parent pattern or from the
    document root, and condition-free specialisation rules.  Anything else
    (string extraction, sequences, conditions) raises
    :class:`ElogTranslationError` — those features are exactly what makes full
    Elog more expressive than MSO (Section 3.3).
    """
    rules: List[Rule] = []
    counter = itertools.count()
    # The document root pattern.
    rules.append(Rule(Atom(pattern_predicate(ROOT_PATTERN), (X,)), (Literal(Atom("root", (X,))),)))

    for rule in program.rules:
        rules.extend(_translate_rule(rule, counter))

    query_predicates = [pattern_predicate(p) for p in program.patterns()]
    return MonadicProgram(rules, query_predicates=query_predicates)


def _translate_rule(rule: ElogRule, counter) -> List[Rule]:
    if rule.conditions:
        raise ElogTranslationError(
            f"rule for {rule.pattern!r} uses conditions; outside the Elog- core fragment"
        )
    parent_predicate = pattern_predicate(rule.parent if rule.document is None else ROOT_PATTERN)
    head_predicate = pattern_predicate(rule.pattern)
    if rule.extraction is None:
        return [Rule(Atom(head_predicate, (X,)), (Literal(Atom(parent_predicate, (X,))),))]
    if not isinstance(rule.extraction, SubElem):
        raise ElogTranslationError(
            f"rule for {rule.pattern!r} uses {type(rule.extraction).__name__}; only subelem "
            "is part of the Elog- core fragment"
        )
    if rule.extraction.path.conditions:
        raise ElogTranslationError(
            f"rule for {rule.pattern!r} uses attribute conditions; outside the core fragment"
        )

    produced: List[Rule] = []
    current = parent_predicate
    steps = rule.extraction.path.steps
    for index, step in enumerate(steps):
        fresh = f"_elog_{rule.pattern}_{next(counter)}"
        if step == "?":
            # descendant-or-self closure of the current set
            produced.append(Rule(Atom(fresh, (X,)), (Literal(Atom(current, (X,))),)))
            produced.append(
                Rule(
                    Atom(fresh, (X,)),
                    (Literal(Atom(fresh, (X0,))), Literal(Atom("child", (X0, X)))),
                )
            )
        elif step == "*":
            produced.append(
                Rule(
                    Atom(fresh, (X,)),
                    (Literal(Atom(current, (X0,))), Literal(Atom("child", (X0, X)))),
                )
            )
        else:
            produced.append(
                Rule(
                    Atom(fresh, (X,)),
                    (
                        Literal(Atom(current, (X0,))),
                        Literal(Atom("child", (X0, X))),
                        Literal(Atom(label_predicate(step), (X,))),
                    ),
                )
            )
        current = fresh
    produced.append(Rule(Atom(head_predicate, (X,)), (Literal(Atom(current, (X,))),)))
    return produced

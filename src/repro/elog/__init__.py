"""Elog: the internal wrapper language of Lixto, and its interpreter."""

from .ast import (
    ROOT_PATTERN,
    AfterCondition,
    BeforeCondition,
    ComparisonCondition,
    ConceptCondition,
    ContainsCondition,
    DocumentSource,
    ElogProgram,
    ElogRule,
    FirstSubtreeCondition,
    PatternReference,
    SubAtt,
    SubElem,
    SubSequence,
    SubText,
)
from .concepts import DEFAULT_CONCEPTS, ConceptRegistry, parse_date, parse_number
from .conditions import ConditionContext, evaluate_condition
from .epath import AttributeCondition, ElementPath, EPathSyntaxError
from .extractor import (
    ExtractionError,
    Extractor,
    ExtractorCache,
    Fetcher,
    PrefetchedFetcher,
    wrapper_fingerprint,
)
from .figure5 import FIGURE5_TEXT, figure5_program, figure5_program_programmatic
from .instance_base import PatternInstance, PatternInstanceBase
from .parser import ElogSyntaxError, parse_elog, parse_rule
from .textpath import AttributePath, TextPath
from .to_mdatalog import ElogTranslationError, pattern_predicate, to_monadic_datalog

__all__ = [
    "AfterCondition",
    "AttributeCondition",
    "AttributePath",
    "BeforeCondition",
    "ComparisonCondition",
    "ConceptCondition",
    "ConceptRegistry",
    "ConditionContext",
    "ContainsCondition",
    "DEFAULT_CONCEPTS",
    "DocumentSource",
    "ElementPath",
    "ElogProgram",
    "ElogRule",
    "ElogSyntaxError",
    "ElogTranslationError",
    "EPathSyntaxError",
    "ExtractionError",
    "Extractor",
    "ExtractorCache",
    "FIGURE5_TEXT",
    "Fetcher",
    "PrefetchedFetcher",
    "FirstSubtreeCondition",
    "PatternInstance",
    "PatternInstanceBase",
    "PatternReference",
    "ROOT_PATTERN",
    "SubAtt",
    "SubElem",
    "SubSequence",
    "SubText",
    "TextPath",
    "evaluate_condition",
    "figure5_program",
    "figure5_program_programmatic",
    "parse_date",
    "parse_elog",
    "parse_number",
    "parse_rule",
    "pattern_predicate",
    "to_monadic_datalog",
    "wrapper_fingerprint",
]

"""Textual parser for Elog programs (the Figure 5 concrete syntax).

Grammar (one rule per ``<-`` clause, terminated by a newline or ``.``)::

    pattern(S, X) <- parentpattern(_, S), subelem(S, <epath>, X), cond, ... .
    pattern(S, X) <- document("url", S), subsq(S, <epath>, <epath>, <epath>, X), ... .

Supported body atoms:

* ``parent(_, S)`` / ``parent(Var, S)`` — the parent-pattern atom;
* ``document("url", S)`` and ``document(Var, S)`` — crawling atoms;
* extraction atoms ``subelem(S, <epath>, X)``, ``subtext(S, <textpath>, X)``,
  ``subatt(S, attname, X)``, ``subsq(S, <epath>, <epath>, <epath>, X)``;
* condition atoms ``before(S, X, <epath>, min, max[, Var[, _]])``, ``after``,
  ``notbefore``, ``notafter``, ``contains(X, <epath>[, Var])``,
  ``notcontains(X, <epath>)``, ``firstsubtree(S, X)``;
* concept atoms ``isCurrency(Y)`` etc. (any registered concept name),
  possibly negated with a leading ``not``;
* comparison atoms ``lt(A, B)``, ``le``, ``gt``, ``ge``, ``eq``, ``neq``;
* pattern references ``otherpattern(_, Y)``.

Element paths and string paths are passed through verbatim to
:class:`~repro.elog.epath.ElementPath` / :class:`~repro.elog.textpath.TextPath`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..datalog.ast import Span, set_span
from .ast import (
    AfterCondition,
    BeforeCondition,
    ComparisonCondition,
    ConceptCondition,
    ContainsCondition,
    DocumentSource,
    ElogProgram,
    ElogRule,
    FirstSubtreeCondition,
    PatternReference,
    SubAtt,
    SubElem,
    SubSequence,
    SubText,
)
from .concepts import DEFAULT_CONCEPTS
from .epath import ElementPath
from .textpath import AttributePath, TextPath

COMPARISON_OPERATORS = ("lt", "le", "gt", "ge", "eq", "neq")
EXTRACTION_NAMES = ("subelem", "subtext", "subatt", "subsq")
CONDITION_NAMES = (
    "before", "after", "notbefore", "notafter",
    "contains", "notcontains", "firstsubtree",
)

_HEAD_PATTERN = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<parent_var>[A-Za-z_][A-Za-z0-9_]*)\s*,"
    r"\s*(?P<target_var>[A-Za-z_][A-Za-z0-9_]*)\s*\)\s*$"
)


class ElogSyntaxError(ValueError):
    """Raised when an Elog program text cannot be parsed.

    ``line`` (1-based, when known) localises the failing rule in the
    program text for tooling such as :mod:`repro.analysis`.
    """

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"{message} (line {line})"
        super().__init__(message)
        self.line = line


def parse_elog(text: str) -> ElogProgram:
    """Parse an Elog program from text.

    Every parsed rule carries a source :class:`~repro.datalog.ast.Span`
    (the line its head starts on), retrievable through
    :func:`repro.datalog.ast.get_span`.
    """
    program = ElogProgram()
    for line, rule_text in _split_rules_with_lines(text):
        try:
            rule = parse_rule(rule_text)
        except ElogSyntaxError as error:
            if error.line is None:
                raise ElogSyntaxError(str(error), line) from None
            raise
        set_span(rule, Span(line, 1, line, max(1, len(rule_text))))
        program.add_rule(rule)
    return program


def parse_rule(text: str) -> ElogRule:
    """Parse a single Elog rule."""
    if "<-" in text:
        head_text, body_text = text.split("<-", 1)
    elif ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        raise ElogSyntaxError(f"rule {text!r} has no <- separator")
    head_match = _HEAD_PATTERN.match(head_text)
    if head_match is None:
        raise ElogSyntaxError(f"cannot parse rule head {head_text.strip()!r}")
    pattern_name = head_match.group("name")
    body_text = body_text.strip().rstrip(".")
    atoms = [atom.strip() for atom in _split_top_level_commas(body_text) if atom.strip()]

    parent: Optional[str] = None
    document: Optional[DocumentSource] = None
    extraction = None
    conditions: List = []

    parent_variable = head_match.group("parent_var")
    target_variable = head_match.group("target_var")

    for atom_text in atoms:
        name, arguments = _parse_atom(atom_text)
        negated = name.startswith("not::")
        if negated:
            name = name[len("not::"):]
        lowered = name.lower()
        if lowered == "document":
            document = _parse_document(arguments)
        elif lowered in EXTRACTION_NAMES:
            extraction = _parse_extraction(lowered, arguments, atom_text)
        elif lowered in CONDITION_NAMES:
            conditions.append(_parse_condition(lowered, arguments, atom_text))
        elif lowered in COMPARISON_OPERATORS:
            if len(arguments) != 2:
                raise ElogSyntaxError(f"comparison {atom_text!r} needs two arguments")
            conditions.append(ComparisonCondition(lowered, arguments[0], arguments[1]))
        elif _looks_like_concept(name, arguments):
            conditions.append(ConceptCondition(name, arguments[0], negated=negated))
        elif len(arguments) == 2:
            first, second = arguments
            if negated:
                conditions.append(PatternReference(name, second, negated=True))
            elif first == parent_variable and second == target_variable and parent is None:
                # specialisation rule (footnote 6): the body repeats the head
                # variables — the new pattern matches a subset of the parent's
                # own instances.
                parent = name
            elif second == parent_variable and parent is None:
                # parent-pattern atom: its second argument carries S.
                parent = name
            else:
                conditions.append(PatternReference(name, second))
        else:
            raise ElogSyntaxError(f"cannot interpret atom {atom_text!r}")

    if parent is None and document is None:
        raise ElogSyntaxError(f"rule {text!r} has neither a parent pattern nor a document atom")
    return ElogRule(
        pattern=pattern_name,
        parent=parent or "document",
        extraction=extraction,
        conditions=tuple(conditions),
        document=document,
    )


# ---------------------------------------------------------------------------
# Atom-level parsing
# ---------------------------------------------------------------------------


def _parse_atom(text: str) -> Tuple[str, List[str]]:
    text = text.strip()
    negated = False
    if text.lower().startswith("not "):
        negated = True
        text = text[4:].strip()
    match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*\((.*)\)\s*$", text, re.DOTALL)
    if match is None:
        raise ElogSyntaxError(f"cannot parse atom {text!r}")
    name = match.group(1)
    arguments = [argument.strip() for argument in _split_top_level_commas(match.group(2))]
    if negated:
        name = f"not::{name}"
    return name, arguments


def _parse_document(arguments: List[str]) -> DocumentSource:
    if len(arguments) != 2:
        raise ElogSyntaxError(f"document atom needs two arguments, got {arguments}")
    url = arguments[0]
    if url.startswith(("\"", "'")) and url.endswith(("\"", "'")):
        return DocumentSource(url=url[1:-1], is_variable=False)
    return DocumentSource(url=url, is_variable=True)


def _parse_extraction(name: str, arguments: List[str], source: str):
    if name == "subelem":
        if len(arguments) != 3:
            raise ElogSyntaxError(f"subelem needs 3 arguments: {source!r}")
        return SubElem(path=ElementPath.parse(arguments[1]), target=arguments[2])
    if name == "subtext":
        if len(arguments) != 3:
            raise ElogSyntaxError(f"subtext needs 3 arguments: {source!r}")
        return SubText(path=TextPath.parse(_strip_quotes(arguments[1])), target=arguments[2])
    if name == "subatt":
        if len(arguments) != 3:
            raise ElogSyntaxError(f"subatt needs 3 arguments: {source!r}")
        return SubAtt(path=AttributePath.parse(_strip_quotes(arguments[1])), target=arguments[2])
    if name == "subsq":
        if len(arguments) != 5:
            raise ElogSyntaxError(f"subsq needs 5 arguments: {source!r}")
        return SubSequence(
            scope=ElementPath.parse(arguments[1]),
            first=ElementPath.parse(arguments[2]),
            last=ElementPath.parse(arguments[3]),
            target=arguments[4],
        )
    raise ElogSyntaxError(f"unknown extraction atom {name!r}")


def _parse_condition(name: str, arguments: List[str], source: str):
    if name in ("before", "after", "notbefore", "notafter"):
        if len(arguments) < 3:
            raise ElogSyntaxError(f"{name} needs at least a path argument: {source!r}")
        path = ElementPath.parse(arguments[2])
        min_distance = _parse_distance(arguments[3]) if len(arguments) > 3 else 0
        max_distance = _parse_distance(arguments[4], default=10 ** 9) if len(arguments) > 4 else 10 ** 9
        bind = None
        if len(arguments) > 5 and arguments[5] not in ("_", ""):
            bind = arguments[5]
        negated = name.startswith("not")
        condition_class = BeforeCondition if "before" in name else AfterCondition
        return condition_class(
            path=path,
            min_distance=min_distance,
            max_distance=max_distance,
            bind=bind,
            negated=negated,
        )
    if name in ("contains", "notcontains"):
        if len(arguments) < 2:
            raise ElogSyntaxError(f"{name} needs a path argument: {source!r}")
        bind = None
        if len(arguments) > 2 and arguments[2] not in ("_", ""):
            bind = arguments[2]
        return ContainsCondition(
            path=ElementPath.parse(arguments[1]),
            bind=bind,
            negated=name == "notcontains",
        )
    if name == "firstsubtree":
        return FirstSubtreeCondition()
    raise ElogSyntaxError(f"unknown condition {name!r}")


def _parse_distance(text: str, default: int = 0) -> int:
    text = text.strip()
    if not text or text == "_":
        return default
    try:
        return int(text)
    except ValueError as error:
        raise ElogSyntaxError(f"invalid distance {text!r}") from error


def _looks_like_concept(name: str, arguments: List[str]) -> bool:
    if len(arguments) != 1:
        return False
    return DEFAULT_CONCEPTS.has(name) or name.startswith("is")


def _strip_quotes(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]:
        return text[1:-1]
    return text


# ---------------------------------------------------------------------------
# Text splitting helpers (comma / rule separation respecting nesting)
# ---------------------------------------------------------------------------


def _split_top_level_commas(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    in_string: Optional[str] = None
    current: List[str] = []
    for character in text:
        if in_string is not None:
            current.append(character)
            if character == in_string:
                in_string = None
            continue
        if character in "\"'":
            in_string = character
            current.append(character)
            continue
        if character in "([":
            depth += 1
        elif character in ")]":
            depth -= 1
        if character == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(character)
    if current:
        parts.append("".join(current))
    return parts


_RULE_HEAD_PATTERN = re.compile(r"^\s*[A-Za-z_][A-Za-z0-9_]*\s*\([^)]*\)\s*(<-|:-)")


def _split_rules_with_lines(text: str) -> List[Tuple[int, str]]:
    """Split program text into ``(start line, rule chunk)`` pairs.

    A rule starts with ``name(S, X) <-`` and extends until the next rule head
    or the end of the text; this allows multi-line rules as in Figure 5
    without requiring terminating dots.  Line numbers are 1-based positions
    in the original text (blank and comment lines are skipped, not
    renumbered).
    """
    numbered = [
        (number, line)
        for number, line in enumerate(text.splitlines(), start=1)
        if line.strip() and not line.strip().startswith("%")
    ]
    rules: List[Tuple[int, str]] = []
    current: List[str] = []
    current_line = 0
    for number, line in numbered:
        if _RULE_HEAD_PATTERN.match(line) and current:
            rules.append((current_line, " ".join(current)))
            current = [line]
            current_line = number
        else:
            if not current:
                current_line = number
            current.append(line)
    if current:
        rules.append((current_line, " ".join(current)))
    return [(line, rule) for line, rule in rules if rule.strip()]


def _split_rules(text: str) -> List[str]:
    """Rule chunks of ``text`` (see :func:`_split_rules_with_lines`)."""
    return [rule for _, rule in _split_rules_with_lines(text)]

"""The Extractor: the Elog program interpreter.

Section 3.1: "The Extractor is the Elog program interpreter that performs the
actual extraction based on a given Elog program.  The Extractor, provided
with an HTML document and a previously constructed program, generates as its
output a pattern instance base."

Evaluation proceeds to a fixpoint over the program's rules (so patterns may
reference patterns defined later, and recursive wrapping / crawling works):
in every round, each rule is applied to all instances of its parent pattern,
its extraction definition produces candidate targets, candidates are filtered
through the rule's conditions, and surviving candidates become new pattern
instances (duplicates are eliminated by the instance base).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from ..datalog.cache import LruMap, SingleFlight
from ..tree.document import Document
from ..tree.node import Node
from ..xmlgen.document import XmlElement
from .ast import (
    ROOT_PATTERN,
    ElogProgram,
    ElogRule,
    FirstSubtreeCondition,
    SubAtt,
    SubElem,
    SubSequence,
    SubText,
)
from .concepts import DEFAULT_CONCEPTS, ConceptRegistry
from .conditions import ConditionContext, evaluate_condition
from .epath import ElementPath
from .instance_base import PatternInstance, PatternInstanceBase

# A candidate target: a node, a run of sibling nodes, or an extracted string,
# together with the variable bindings produced by the extraction.
Candidate = Tuple[Union[Node, List[Node], str], Dict[str, object]]


if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor, Future


class Fetcher:
    """Interface for document acquisition (implemented by repro.web).

    Besides the synchronous :meth:`fetch`, the protocol is *async-capable*:
    :meth:`fetch_async` schedules an acquisition on an executor and returns
    a future, letting callers overlap fetching with evaluation (the
    ``urls=`` batch path of :meth:`repro.api.Session.extract_many` and
    :meth:`repro.server.components.WrapperComponent.prefetch`).  The
    default implementation simply runs :meth:`fetch` on the executor;
    fetchers backed by genuinely asynchronous I/O can override it to return
    an already-in-flight future.
    """

    def fetch(self, url: str) -> Document:  # pragma: no cover - interface
        raise NotImplementedError

    def fetch_async(self, url: str, executor: "Executor") -> "Future[Document]":
        """Schedule ``fetch(url)`` on ``executor``; returns its future."""
        return executor.submit(self.fetch, url)


class PrefetchedFetcher(Fetcher):
    """A fetcher view over already-started fetch futures.

    Wraps a base fetcher plus a ``url -> Future[Document]`` mapping:
    :meth:`fetch` resolves known URLs from their (possibly still in-flight)
    futures and delegates everything else — crawling targets discovered
    mid-extraction — to the base fetcher.  This is how the batch paths hand
    an unchanged :class:`Extractor` documents whose acquisition started
    before evaluation did; fetch errors surface on resolution exactly as
    the synchronous path would raise them.
    """

    def __init__(
        self,
        base: Optional[Fetcher],
        futures: "Mapping[str, Future[Document]]",
    ) -> None:
        self.base = base
        self._futures = dict(futures)

    def fetch(self, url: str) -> Document:
        future = self._futures.get(url)
        if future is not None:
            return future.result()
        if self.base is None:
            from ..resilience.errors import PermanentFetchError

            raise PermanentFetchError(f"no prefetched document for {url!r}", url=url)
        return self.base.fetch(url)

    def fetch_async(self, url: str, executor: "Executor") -> "Future[Document]":
        future = self._futures.get(url)
        if future is not None:
            return future
        if self.base is not None:
            return self.base.fetch_async(url, executor)
        return executor.submit(self.fetch, url)


class ExtractionError(RuntimeError):
    """Raised on unresolvable programs (e.g. crawling without a fetcher)."""


class Extractor:
    """Interpreter for Elog programs."""

    def __init__(
        self,
        program: ElogProgram,
        fetcher: Optional[Fetcher] = None,
        concepts: Optional[ConceptRegistry] = None,
        max_rounds: int = 10,
        max_documents: int = 64,
    ) -> None:
        self.program = program
        self.fetcher = fetcher
        self.concepts = concepts or DEFAULT_CONCEPTS
        self.max_rounds = max_rounds
        self.max_documents = max_documents

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def extract(
        self,
        document: Optional[Document] = None,
        documents: Optional[Sequence[Document]] = None,
        url: Optional[str] = None,
    ) -> PatternInstanceBase:
        """Run the program and return the pattern instance base.

        Any combination of a single ``document``, several ``documents`` and a
        start ``url`` (requires a fetcher) may be given; ``document``
        extraction rules may fetch further pages through the fetcher.
        """
        base = PatternInstanceBase()
        fetched_urls: Dict[str, PatternInstance] = {}
        for given in list(documents or []) + ([document] if document is not None else []):
            instance = base.add_document_root(given)
            if given.url:
                fetched_urls[given.url] = instance
        if url is not None:
            # The start URL is load-bearing: its fetch errors propagate (the
            # batch paths turn them into per-slot ErrorResults), unlike
            # crawling targets discovered mid-extraction, which stay lenient.
            instance = self._fetch_document(
                url, base, fetched_urls, parent=None, propagate=True
            )
            if instance is None:
                raise ExtractionError(f"cannot fetch start url {url!r} without a fetcher")

        for _ in range(self.max_rounds):
            changed = False
            for rule in self.program.rules:
                if self._apply_rule(rule, base, fetched_urls):
                    changed = True
            if not changed:
                break
        return base

    def with_fetcher(self, fetcher: Optional[Fetcher]) -> "Extractor":
        """A twin interpreter acquiring documents through ``fetcher``.

        Shares the program, concepts and limits; only acquisition differs.
        Used by the batch paths to substitute a :class:`PrefetchedFetcher`
        without rebuilding (or re-memoising) the interpreter.
        """
        return Extractor(
            self.program,
            fetcher=fetcher,
            concepts=self.concepts,
            max_rounds=self.max_rounds,
            max_documents=self.max_documents,
        )

    def extract_to_xml(
        self,
        document: Optional[Document] = None,
        documents: Optional[Sequence[Document]] = None,
        url: Optional[str] = None,
        root_name: str = "result",
    ) -> XmlElement:
        """Extraction followed by the XML Designer / Transformer step."""
        base = self.extract(document=document, documents=documents, url=url)
        return base.to_xml(root_name=root_name, auxiliary=self.program.auxiliary_patterns)

    # ------------------------------------------------------------------
    # Rule application
    # ------------------------------------------------------------------
    def _apply_rule(
        self,
        rule: ElogRule,
        base: PatternInstanceBase,
        fetched_urls: Dict[str, PatternInstance],
    ) -> bool:
        changed = False
        for parent_instance in self._parent_instances(rule, base, fetched_urls):
            candidates = self._candidates(rule, parent_instance)
            accepted: List[PatternInstance] = []
            for target, bindings in candidates:
                instance = self._check_conditions(rule, parent_instance, target, bindings, base)
                if instance is not None:
                    accepted.append(instance)
            if accepted and any(
                isinstance(condition, FirstSubtreeCondition) for condition in rule.conditions
            ):
                accepted = [min(accepted, key=PatternInstance.anchor)]
            for instance in accepted:
                if base.add_instance(instance) is not None:
                    changed = True
        return changed

    def _parent_instances(
        self,
        rule: ElogRule,
        base: PatternInstanceBase,
        fetched_urls: Dict[str, PatternInstance],
    ) -> List[PatternInstance]:
        if rule.document is None:
            return base.instances_of(rule.parent)
        if rule.document.is_variable and rule.document.url == "_":
            # document(_, S): the rule applies to every supplied document.
            return base.instances_of(ROOT_PATTERN)
        if rule.document.is_variable:
            # crawling: the parent pattern's instances carry URLs to fetch
            parents: List[PatternInstance] = []
            for carrier in base.instances_of(rule.parent):
                target_url = carrier.text().strip()
                if not target_url:
                    continue
                instance = self._fetch_document(target_url, base, fetched_urls, parent=carrier)
                if instance is not None:
                    parents.append(instance)
            return parents
        # literal URL: reuse an already known document or fetch it
        literal = rule.document.url
        matches = [
            instance
            for instance in base.instances_of(ROOT_PATTERN)
            if _url_matches(literal, instance.value)
        ]
        if matches:
            return matches
        instance = self._fetch_document(literal, base, fetched_urls, parent=None)
        if instance is not None:
            return [instance]
        # Fall back to "any supplied document" so wrappers written against a
        # live URL still run against locally supplied example pages.
        return base.instances_of(ROOT_PATTERN)

    def _fetch_document(
        self,
        url: str,
        base: PatternInstanceBase,
        fetched_urls: Dict[str, PatternInstance],
        parent: Optional[PatternInstance],
        propagate: bool = False,
    ) -> Optional[PatternInstance]:
        if url in fetched_urls:
            return fetched_urls[url]
        if self.fetcher is None or len(fetched_urls) >= self.max_documents:
            return None
        try:
            document = self.fetcher.fetch(url)
        # ConnectionError/TimeoutError join KeyError in the lenient set: a
        # crawl target whose retries were exhausted by a resilient fetcher
        # is skipped exactly like a missing page (FetchError is a KeyError).
        except (KeyError, ConnectionError, TimeoutError):
            if propagate:
                raise
            return None
        instance = PatternInstance(
            pattern=ROOT_PATTERN,
            parent=parent,
            node=document.root,
            document=document,
            value=url,
        )
        added = base.add_instance(instance)
        fetched_urls[url] = added or instance
        return fetched_urls[url]

    # ------------------------------------------------------------------
    # Candidate generation (the extraction definition atoms)
    # ------------------------------------------------------------------
    def _candidates(self, rule: ElogRule, parent: PatternInstance) -> List[Candidate]:
        extraction = rule.extraction
        if extraction is None:
            # specialisation rule: the candidate is the parent's own node(s)
            if parent.is_sequence_instance:
                return [(list(parent.nodes or []), {})]
            if parent.node is not None:
                return [(parent.node, {})]
            return [(parent.value or "", {})]
        if isinstance(extraction, SubElem):
            return self._subelem_candidates(extraction, parent)
        if isinstance(extraction, SubText):
            return [
                (value, dict(bindings))
                for member in parent.member_nodes()
                for value, bindings in extraction.path.find_matches(member)
            ]
        if isinstance(extraction, SubAtt):
            return [
                (value, dict(bindings))
                for member in parent.member_nodes()
                for value, bindings in extraction.path.find_matches(member)
            ]
        if isinstance(extraction, SubSequence):
            return self._subsq_candidates(extraction, parent)
        raise ExtractionError(f"unknown extraction atom {extraction!r}")

    def _subelem_candidates(self, extraction: SubElem, parent: PatternInstance) -> List[Candidate]:
        results: List[Candidate] = []
        if parent.is_sequence_instance:
            for member in parent.member_nodes():
                # the sequence acts as a virtual parent whose children are the
                # member nodes: the first path step may match the member itself
                bindings = _match_member(extraction.path, member)
                if bindings is not None:
                    results.append((member, bindings))
                results.extend(
                    (node, dict(found))
                    for node, found in extraction.path.find_targets(member)
                )
            return results
        for member in parent.member_nodes():
            results.extend(
                (node, dict(found)) for node, found in extraction.path.find_targets(member)
            )
        return results

    def _subsq_candidates(self, extraction: SubSequence, parent: PatternInstance) -> List[Candidate]:
        """Candidate runs of consecutive children (see Figure 5's tableseq).

        For every scope node matched by ``scope``, candidate runs start at a
        child matching ``first`` and end at a child matching ``last``.  To
        keep the candidate set linear in the number of children, for every
        possible start the longest run is generated, and for every possible
        end the longest run ending there is generated; the rule's context
        conditions (before/after with distance tolerances) then pick the
        intended run.
        """
        candidates: List[Candidate] = []
        for parent_node in parent.member_nodes():
            # the scope path is matched anywhere below the parent (implicit ?),
            # and the parent itself qualifies when it matches the last step
            lenient_scope = (
                extraction.scope
                if extraction.scope.steps and extraction.scope.steps[0] == "?"
                else ElementPath(("?",) + extraction.scope.steps, extraction.scope.conditions)
            )
            scopes = [node for node, _ in lenient_scope.find_targets(parent_node)]
            if _match_member(extraction.scope, parent_node) is not None:
                scopes.append(parent_node)
            for scope in scopes:
                children = [c for c in scope.children if c.label not in ("#comment",)]
                starts = [
                    index
                    for index, child in enumerate(children)
                    if _match_member(extraction.first, child) is not None
                ]
                ends = [
                    index
                    for index, child in enumerate(children)
                    if _match_member(extraction.last, child) is not None
                ]
                if not starts or not ends:
                    continue
                seen_runs = set()
                for start in starts:
                    matching_ends = [e for e in ends if e >= start]
                    if not matching_ends:
                        continue
                    end = max(matching_ends)
                    if (start, end) not in seen_runs:
                        seen_runs.add((start, end))
                        candidates.append((children[start:end + 1], {}))
                for end in ends:
                    matching_starts = [s for s in starts if s <= end]
                    if not matching_starts:
                        continue
                    start = min(matching_starts)
                    if (start, end) not in seen_runs:
                        seen_runs.add((start, end))
                        candidates.append((children[start:end + 1], {}))
        return candidates

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _check_conditions(
        self,
        rule: ElogRule,
        parent: PatternInstance,
        target: Union[Node, List[Node], str],
        bindings: Dict[str, object],
        base: PatternInstanceBase,
    ) -> Optional[PatternInstance]:
        context = ConditionContext(
            document=self._document_of(parent),
            parent_node=parent.node,
            parent_nodes=parent.nodes,
            target=target,
            bindings=dict(bindings),
            instance_base=base,
            concepts=self.concepts,
        )
        conditions = [
            condition
            for condition in rule.conditions
            if not isinstance(condition, FirstSubtreeCondition)
        ]
        final_bindings = self._satisfy(conditions, 0, context)
        if final_bindings is None:
            return None
        context.bindings = final_bindings
        parent_for_instance = parent
        if rule.is_specialisation() and parent.parent is not None:
            parent_for_instance = parent.parent
        if isinstance(target, str):
            return PatternInstance(
                pattern=rule.pattern,
                parent=parent_for_instance,
                value=target,
                document=parent.document,
                bindings=context.bindings,
            )
        if isinstance(target, list):
            return PatternInstance(
                pattern=rule.pattern,
                parent=parent_for_instance,
                nodes=target,
                document=parent.document,
                bindings=context.bindings,
            )
        return PatternInstance(
            pattern=rule.pattern,
            parent=parent_for_instance,
            node=target,
            document=parent.document,
            bindings=context.bindings,
        )

    def _satisfy(
        self,
        conditions: List,
        position: int,
        context: ConditionContext,
    ) -> Optional[Dict[str, object]]:
        """Depth-first search over witness choices of binding conditions.

        A later condition (e.g. a pattern reference over a variable bound by
        an earlier ``before``) can reject one witness; backtracking then tries
        the next one.
        """
        if position == len(conditions):
            return dict(context.bindings)
        alternatives = evaluate_condition(conditions[position], context)
        saved = context.bindings
        for extension in alternatives:
            context.bindings = {**saved, **extension}
            result = self._satisfy(conditions, position + 1, context)
            if result is not None:
                context.bindings = saved
                return result
        context.bindings = saved
        return None

    def _document_of(self, instance: PatternInstance) -> Document:
        current: Optional[PatternInstance] = instance
        while current is not None:
            if current.document is not None:
                return current.document
            current = current.parent
        raise ExtractionError("pattern instance is not attached to a document")


def _match_member(path: ElementPath, node: Node) -> Optional[Dict[str, str]]:
    """Match a path against a node treating the node itself as the last step
    (used for sequence members and subsq endpoints)."""
    labels = [node.label]
    if not path.matches_path(labels):
        return None
    bindings: Dict[str, str] = {}
    for condition in path.conditions:
        result = condition.matches(node)
        if result is None:
            return None
        bindings.update(result)
    return bindings


# ---------------------------------------------------------------------------
# Interpreter sharing (content-keyed, id()-reuse proof)
# ---------------------------------------------------------------------------

#: Content identity of a wrapper for interpreter-sharing purposes: the full
#: rule text plus the auxiliary-pattern set (which changes the XML output).
WrapperFingerprint = Tuple[str, FrozenSet[str]]


def wrapper_fingerprint(program: ElogProgram) -> WrapperFingerprint:
    """The content identity of ``program`` (rules text + auxiliary set).

    ``ElogProgram`` is a mutable AST, so — unlike the frozen datalog rules
    of :func:`repro.datalog.registry.program_fingerprint` — the fingerprint
    is recomputed per use, never frozen at construction: mutating a program
    (``add_rule`` / ``mark_auxiliary``) moves its fingerprint, which is
    exactly what lets content-keyed interpreter caches notice staleness.
    """
    return (str(program), frozenset(program.auxiliary_patterns))


class ExtractorCache:
    """A content-keyed, verified, single-flight memo of Elog interpreters.

    Replaces the previous ``(id(program), id(fetcher))`` keying of the
    interpreter memos in :mod:`repro.server.components` and
    :class:`repro.api.Session`.  Identity keys are a trap for long-lived
    caches: once the keyed object is garbage-collected CPython happily
    hands its address to a *different* program or fetcher, so any entry
    that outlives (or merely races with) its key objects can alias two
    unrelated wrappers.  Content keys cannot alias — and as a bonus,
    separately re-parsed copies of one wrapper text now share a single
    interpreter instead of building duplicates.

    * Programs are keyed by :func:`wrapper_fingerprint` and every hit is
      **verified**: a cached interpreter whose program was mutated in place
      after caching (its current fingerprint no longer matches the key it
      sits under) is treated as a miss and replaced, never served stale.
    * Fetchers have no content, so they are keyed by ``id`` — made safe by
      the entry holding a strong reference (the interpreter pins its
      fetcher, so the id cannot be recycled while the entry lives) and
      re-verified by identity on every hit.
    * Lookups and builds are coordinated through
      :class:`repro.datalog.cache.SingleFlight`, so N threads requesting
      one cold wrapper build exactly one interpreter.

    Costs: every ``get`` pays one ``str(program)`` pass to compute the key
    (inherent to content keying; wrapper programs are small).  Hit
    verification is O(1) when the cached interpreter wraps the *same*
    program object — the overwhelmingly common warm path — and only
    re-serialises the stored program when a content-equal but distinct
    object hit the entry.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._map: "LruMap[Tuple[WrapperFingerprint, int], Extractor]" = LruMap(
            capacity
        )
        self._flight = SingleFlight()
        # Exact accounting: a verification failure (mutated cached program,
        # mismatched fetcher) is a *miss* — it constructs a fresh
        # interpreter — so the inner LruMap's counters (which record such
        # lookups as raw map hits) are not reused here.  Increments happen
        # inside lookup() (already serialised by SingleFlight), but clear()
        # runs outside it, so the counters get their own lock.
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._map)

    def get(
        self,
        program: ElogProgram,
        fetcher: Optional[Fetcher] = None,
    ) -> Extractor:
        """The shared interpreter for ``(program content, fetcher)``."""
        fingerprint = wrapper_fingerprint(program)
        key = (fingerprint, id(fetcher))

        def lookup() -> Optional[Extractor]:
            extractor = self._map.get(key)
            if (
                extractor is not None
                # Paranoia: an id collision can never serve a stranger.
                and extractor.fetcher is fetcher
                # Same object == same content (the key already matched);
                # a distinct object must prove the stored program was not
                # mutated in place since caching.
                and (
                    extractor.program is program
                    or wrapper_fingerprint(extractor.program) == fingerprint
                )
            ):
                with self._counter_lock:
                    self.hits += 1
                return extractor
            with self._counter_lock:
                self.misses += 1
            return None

        return self._flight.run(
            key,
            lookup,
            lambda: Extractor(program, fetcher=fetcher),
            lambda extractor: self._map.put(key, extractor),
        )

    def info(self):
        """Exact hit/miss statistics (a verified hit counts as a hit; a
        verification failure or cold key counts as a miss)."""
        from ..datalog.cache import CacheInfo

        with self._counter_lock:
            hits, misses = self.hits, self.misses
        return CacheInfo(hits, misses, len(self._map), self._map.capacity)

    def clear(self) -> None:
        self._map.clear()
        with self._counter_lock:
            self.hits = 0
            self.misses = 0


def _url_matches(literal: str, candidate: Optional[str]) -> bool:
    if candidate is None:
        return False
    normalised_literal = literal.strip().rstrip("/").lower()
    normalised_candidate = candidate.strip().rstrip("/").lower()
    return (
        normalised_literal == normalised_candidate
        or normalised_literal in normalised_candidate
        or normalised_candidate in normalised_literal
    )

"""The Extractor: the Elog program interpreter.

Section 3.1: "The Extractor is the Elog program interpreter that performs the
actual extraction based on a given Elog program.  The Extractor, provided
with an HTML document and a previously constructed program, generates as its
output a pattern instance base."

Evaluation proceeds to a fixpoint over the program's rules (so patterns may
reference patterns defined later, and recursive wrapping / crawling works):
in every round, each rule is applied to all instances of its parent pattern,
its extraction definition produces candidate targets, candidates are filtered
through the rule's conditions, and surviving candidates become new pattern
instances (duplicates are eliminated by the instance base).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..tree.document import Document
from ..tree.node import Node
from ..xmlgen.document import XmlElement
from .ast import (
    DocumentSource,
    ElogProgram,
    ElogRule,
    FirstSubtreeCondition,
    ROOT_PATTERN,
    SubAtt,
    SubElem,
    SubSequence,
    SubText,
)
from .concepts import ConceptRegistry, DEFAULT_CONCEPTS
from .conditions import ConditionContext, evaluate_condition
from .epath import ElementPath
from .instance_base import PatternInstance, PatternInstanceBase

# A candidate target: a node, a run of sibling nodes, or an extracted string,
# together with the variable bindings produced by the extraction.
Candidate = Tuple[Union[Node, List[Node], str], Dict[str, object]]


class Fetcher:
    """Interface for document acquisition (implemented by repro.web)."""

    def fetch(self, url: str) -> Document:  # pragma: no cover - interface
        raise NotImplementedError


class ExtractionError(RuntimeError):
    """Raised on unresolvable programs (e.g. crawling without a fetcher)."""


class Extractor:
    """Interpreter for Elog programs."""

    def __init__(
        self,
        program: ElogProgram,
        fetcher: Optional[Fetcher] = None,
        concepts: Optional[ConceptRegistry] = None,
        max_rounds: int = 10,
        max_documents: int = 64,
    ) -> None:
        self.program = program
        self.fetcher = fetcher
        self.concepts = concepts or DEFAULT_CONCEPTS
        self.max_rounds = max_rounds
        self.max_documents = max_documents

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def extract(
        self,
        document: Optional[Document] = None,
        documents: Optional[Sequence[Document]] = None,
        url: Optional[str] = None,
    ) -> PatternInstanceBase:
        """Run the program and return the pattern instance base.

        Any combination of a single ``document``, several ``documents`` and a
        start ``url`` (requires a fetcher) may be given; ``document``
        extraction rules may fetch further pages through the fetcher.
        """
        base = PatternInstanceBase()
        fetched_urls: Dict[str, PatternInstance] = {}
        for given in list(documents or []) + ([document] if document is not None else []):
            instance = base.add_document_root(given)
            if given.url:
                fetched_urls[given.url] = instance
        if url is not None:
            instance = self._fetch_document(url, base, fetched_urls, parent=None)
            if instance is None:
                raise ExtractionError(f"cannot fetch start url {url!r} without a fetcher")

        for _ in range(self.max_rounds):
            changed = False
            for rule in self.program.rules:
                if self._apply_rule(rule, base, fetched_urls):
                    changed = True
            if not changed:
                break
        return base

    def extract_to_xml(
        self,
        document: Optional[Document] = None,
        documents: Optional[Sequence[Document]] = None,
        url: Optional[str] = None,
        root_name: str = "result",
    ) -> XmlElement:
        """Extraction followed by the XML Designer / Transformer step."""
        base = self.extract(document=document, documents=documents, url=url)
        return base.to_xml(root_name=root_name, auxiliary=self.program.auxiliary_patterns)

    # ------------------------------------------------------------------
    # Rule application
    # ------------------------------------------------------------------
    def _apply_rule(
        self,
        rule: ElogRule,
        base: PatternInstanceBase,
        fetched_urls: Dict[str, PatternInstance],
    ) -> bool:
        changed = False
        for parent_instance in self._parent_instances(rule, base, fetched_urls):
            candidates = self._candidates(rule, parent_instance)
            accepted: List[PatternInstance] = []
            for target, bindings in candidates:
                instance = self._check_conditions(rule, parent_instance, target, bindings, base)
                if instance is not None:
                    accepted.append(instance)
            if accepted and any(
                isinstance(condition, FirstSubtreeCondition) for condition in rule.conditions
            ):
                accepted = [min(accepted, key=PatternInstance.anchor)]
            for instance in accepted:
                if base.add_instance(instance) is not None:
                    changed = True
        return changed

    def _parent_instances(
        self,
        rule: ElogRule,
        base: PatternInstanceBase,
        fetched_urls: Dict[str, PatternInstance],
    ) -> List[PatternInstance]:
        if rule.document is None:
            return base.instances_of(rule.parent)
        if rule.document.is_variable and rule.document.url == "_":
            # document(_, S): the rule applies to every supplied document.
            return base.instances_of(ROOT_PATTERN)
        if rule.document.is_variable:
            # crawling: the parent pattern's instances carry URLs to fetch
            parents: List[PatternInstance] = []
            for carrier in base.instances_of(rule.parent):
                target_url = carrier.text().strip()
                if not target_url:
                    continue
                instance = self._fetch_document(target_url, base, fetched_urls, parent=carrier)
                if instance is not None:
                    parents.append(instance)
            return parents
        # literal URL: reuse an already known document or fetch it
        literal = rule.document.url
        matches = [
            instance
            for instance in base.instances_of(ROOT_PATTERN)
            if _url_matches(literal, instance.value)
        ]
        if matches:
            return matches
        instance = self._fetch_document(literal, base, fetched_urls, parent=None)
        if instance is not None:
            return [instance]
        # Fall back to "any supplied document" so wrappers written against a
        # live URL still run against locally supplied example pages.
        return base.instances_of(ROOT_PATTERN)

    def _fetch_document(
        self,
        url: str,
        base: PatternInstanceBase,
        fetched_urls: Dict[str, PatternInstance],
        parent: Optional[PatternInstance],
    ) -> Optional[PatternInstance]:
        if url in fetched_urls:
            return fetched_urls[url]
        if self.fetcher is None or len(fetched_urls) >= self.max_documents:
            return None
        try:
            document = self.fetcher.fetch(url)
        except KeyError:
            return None
        instance = PatternInstance(
            pattern=ROOT_PATTERN,
            parent=parent,
            node=document.root,
            document=document,
            value=url,
        )
        added = base.add_instance(instance)
        fetched_urls[url] = added or instance
        return fetched_urls[url]

    # ------------------------------------------------------------------
    # Candidate generation (the extraction definition atoms)
    # ------------------------------------------------------------------
    def _candidates(self, rule: ElogRule, parent: PatternInstance) -> List[Candidate]:
        extraction = rule.extraction
        if extraction is None:
            # specialisation rule: the candidate is the parent's own node(s)
            if parent.is_sequence_instance:
                return [(list(parent.nodes or []), {})]
            if parent.node is not None:
                return [(parent.node, {})]
            return [(parent.value or "", {})]
        if isinstance(extraction, SubElem):
            return self._subelem_candidates(extraction, parent)
        if isinstance(extraction, SubText):
            return [
                (value, dict(bindings))
                for member in parent.member_nodes()
                for value, bindings in extraction.path.find_matches(member)
            ]
        if isinstance(extraction, SubAtt):
            return [
                (value, dict(bindings))
                for member in parent.member_nodes()
                for value, bindings in extraction.path.find_matches(member)
            ]
        if isinstance(extraction, SubSequence):
            return self._subsq_candidates(extraction, parent)
        raise ExtractionError(f"unknown extraction atom {extraction!r}")

    def _subelem_candidates(self, extraction: SubElem, parent: PatternInstance) -> List[Candidate]:
        results: List[Candidate] = []
        if parent.is_sequence_instance:
            for member in parent.member_nodes():
                # the sequence acts as a virtual parent whose children are the
                # member nodes: the first path step may match the member itself
                bindings = _match_member(extraction.path, member)
                if bindings is not None:
                    results.append((member, bindings))
                results.extend(
                    (node, dict(found))
                    for node, found in extraction.path.find_targets(member)
                )
            return results
        for member in parent.member_nodes():
            results.extend(
                (node, dict(found)) for node, found in extraction.path.find_targets(member)
            )
        return results

    def _subsq_candidates(self, extraction: SubSequence, parent: PatternInstance) -> List[Candidate]:
        """Candidate runs of consecutive children (see Figure 5's tableseq).

        For every scope node matched by ``scope``, candidate runs start at a
        child matching ``first`` and end at a child matching ``last``.  To
        keep the candidate set linear in the number of children, for every
        possible start the longest run is generated, and for every possible
        end the longest run ending there is generated; the rule's context
        conditions (before/after with distance tolerances) then pick the
        intended run.
        """
        candidates: List[Candidate] = []
        for parent_node in parent.member_nodes():
            # the scope path is matched anywhere below the parent (implicit ?),
            # and the parent itself qualifies when it matches the last step
            lenient_scope = (
                extraction.scope
                if extraction.scope.steps and extraction.scope.steps[0] == "?"
                else ElementPath(("?",) + extraction.scope.steps, extraction.scope.conditions)
            )
            scopes = [node for node, _ in lenient_scope.find_targets(parent_node)]
            if _match_member(extraction.scope, parent_node) is not None:
                scopes.append(parent_node)
            for scope in scopes:
                children = [c for c in scope.children if c.label not in ("#comment",)]
                starts = [
                    index
                    for index, child in enumerate(children)
                    if _match_member(extraction.first, child) is not None
                ]
                ends = [
                    index
                    for index, child in enumerate(children)
                    if _match_member(extraction.last, child) is not None
                ]
                if not starts or not ends:
                    continue
                seen_runs = set()
                for start in starts:
                    matching_ends = [e for e in ends if e >= start]
                    if not matching_ends:
                        continue
                    end = max(matching_ends)
                    if (start, end) not in seen_runs:
                        seen_runs.add((start, end))
                        candidates.append((children[start:end + 1], {}))
                for end in ends:
                    matching_starts = [s for s in starts if s <= end]
                    if not matching_starts:
                        continue
                    start = min(matching_starts)
                    if (start, end) not in seen_runs:
                        seen_runs.add((start, end))
                        candidates.append((children[start:end + 1], {}))
        return candidates

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _check_conditions(
        self,
        rule: ElogRule,
        parent: PatternInstance,
        target: Union[Node, List[Node], str],
        bindings: Dict[str, object],
        base: PatternInstanceBase,
    ) -> Optional[PatternInstance]:
        context = ConditionContext(
            document=self._document_of(parent),
            parent_node=parent.node,
            parent_nodes=parent.nodes,
            target=target,
            bindings=dict(bindings),
            instance_base=base,
            concepts=self.concepts,
        )
        conditions = [
            condition
            for condition in rule.conditions
            if not isinstance(condition, FirstSubtreeCondition)
        ]
        final_bindings = self._satisfy(conditions, 0, context)
        if final_bindings is None:
            return None
        context.bindings = final_bindings
        parent_for_instance = parent
        if rule.is_specialisation() and parent.parent is not None:
            parent_for_instance = parent.parent
        if isinstance(target, str):
            return PatternInstance(
                pattern=rule.pattern,
                parent=parent_for_instance,
                value=target,
                document=parent.document,
                bindings=context.bindings,
            )
        if isinstance(target, list):
            return PatternInstance(
                pattern=rule.pattern,
                parent=parent_for_instance,
                nodes=target,
                document=parent.document,
                bindings=context.bindings,
            )
        return PatternInstance(
            pattern=rule.pattern,
            parent=parent_for_instance,
            node=target,
            document=parent.document,
            bindings=context.bindings,
        )

    def _satisfy(
        self,
        conditions: List,
        position: int,
        context: ConditionContext,
    ) -> Optional[Dict[str, object]]:
        """Depth-first search over witness choices of binding conditions.

        A later condition (e.g. a pattern reference over a variable bound by
        an earlier ``before``) can reject one witness; backtracking then tries
        the next one.
        """
        if position == len(conditions):
            return dict(context.bindings)
        alternatives = evaluate_condition(conditions[position], context)
        saved = context.bindings
        for extension in alternatives:
            context.bindings = {**saved, **extension}
            result = self._satisfy(conditions, position + 1, context)
            if result is not None:
                context.bindings = saved
                return result
        context.bindings = saved
        return None

    def _document_of(self, instance: PatternInstance) -> Document:
        current: Optional[PatternInstance] = instance
        while current is not None:
            if current.document is not None:
                return current.document
            current = current.parent
        raise ExtractionError("pattern instance is not attached to a document")


def _match_member(path: ElementPath, node: Node) -> Optional[Dict[str, str]]:
    """Match a path against a node treating the node itself as the last step
    (used for sequence members and subsq endpoints)."""
    labels = [node.label]
    if not path.matches_path(labels):
        return None
    bindings: Dict[str, str] = {}
    for condition in path.conditions:
        result = condition.matches(node)
        if result is None:
            return None
        bindings.update(result)
    return bindings


def _url_matches(literal: str, candidate: Optional[str]) -> bool:
    if candidate is None:
        return False
    normalised_literal = literal.strip().rstrip("/").lower()
    normalised_candidate = candidate.strip().rstrip("/").lower()
    return (
        normalised_literal == normalised_candidate
        or normalised_literal in normalised_candidate
        or normalised_candidate in normalised_literal
    )

"""The pattern instance base.

Section 3.1: "The Extractor [...] generates as its output a pattern instance
base, a data structure encoding the extracted instances as hierarchically
ordered trees and strings."

A :class:`PatternInstance` is either a tree instance (it refers to a document
node) or a string instance (produced by ``subtext`` / ``subatt``).  Instances
form a forest under the parent relation induced by the binary pattern
predicates; the synthetic *document* instances are the roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..tree.document import Document
from ..tree.node import Node
from ..xmlgen.document import XmlElement
from .ast import ROOT_PATTERN


@dataclass
class PatternInstance:
    """One extracted instance of a pattern.

    An instance refers to a single document node (tree extraction), a *run*
    of consecutive sibling nodes (``nodes``, produced by ``subsq``), or a
    string (``value``, produced by ``subtext`` / ``subatt``).
    """

    pattern: str
    parent: Optional["PatternInstance"]
    node: Optional[Node] = None
    nodes: Optional[List[Node]] = None
    value: Optional[str] = None
    document: Optional[Document] = None
    bindings: Dict[str, object] = field(default_factory=dict)
    children: List["PatternInstance"] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def is_string_instance(self) -> bool:
        return self.node is None and self.nodes is None

    @property
    def is_sequence_instance(self) -> bool:
        return self.nodes is not None

    def member_nodes(self) -> List[Node]:
        """The document nodes covered by the instance (empty for strings)."""
        if self.nodes is not None:
            return list(self.nodes)
        if self.node is not None:
            return [self.node]
        return []

    def text(self) -> str:
        """The textual value of the instance (node text or string value)."""
        if self.value is not None and self.node is None and self.nodes is None:
            return self.value
        members = self.member_nodes()
        if members:
            return " ".join(
                text for text in (node.normalized_text() for node in members) if text
            )
        return self.value or ""

    def anchor(self) -> Tuple[int, int]:
        """Sort key approximating document order for mixed node/string instances."""
        members = self.member_nodes()
        if members:
            return (members[0].preorder_index, 0)
        if self.parent is not None:
            parent_members = self.parent.member_nodes()
            if parent_members:
                return (parent_members[0].preorder_index, 1)
        return (0, 1)

    def identity(self) -> Tuple:
        """Key used for duplicate elimination within one extraction run."""
        node_key = tuple(id(node) for node in self.member_nodes()) or None
        parent_key = id(self.parent) if self.parent is not None else None
        return (self.pattern, parent_key, node_key, self.value)

    # ------------------------------------------------------------------
    def add_child(self, child: "PatternInstance") -> "PatternInstance":
        self.children.append(child)
        return child

    def iter_descendants(self) -> Iterator["PatternInstance"]:
        stack = list(self.children)
        while stack:
            instance = stack.pop()
            yield instance
            stack.extend(instance.children)

    def find_all(self, pattern: str) -> List["PatternInstance"]:
        return sorted(
            (inst for inst in self.iter_descendants() if inst.pattern == pattern),
            key=PatternInstance.anchor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = self.value if self.is_string_instance else f"<{self.node.label}>"
        return f"PatternInstance({self.pattern}, {payload!r}, children={len(self.children)})"


class PatternInstanceBase:
    """The forest of extracted pattern instances of one extraction run."""

    def __init__(self) -> None:
        self.roots: List[PatternInstance] = []
        self._by_pattern: Dict[str, List[PatternInstance]] = {}
        self._seen: Set[Tuple] = set()

    # -- construction -----------------------------------------------------
    def add_document_root(self, document: Document, url: Optional[str] = None) -> PatternInstance:
        instance = PatternInstance(
            pattern=ROOT_PATTERN,
            parent=None,
            node=document.root,
            document=document,
            value=url or document.url,
        )
        self.roots.append(instance)
        self._register(instance)
        return instance

    def add_instance(self, instance: PatternInstance) -> Optional[PatternInstance]:
        """Register ``instance`` (and attach to its parent); returns None when
        an identical instance was already present (duplicate elimination)."""
        key = instance.identity()
        if key in self._seen:
            return None
        self._seen.add(key)
        if instance.parent is not None:
            instance.parent.add_child(instance)
        else:
            self.roots.append(instance)
        self._register(instance)
        return instance

    def _register(self, instance: PatternInstance) -> None:
        self._by_pattern.setdefault(instance.pattern, []).append(instance)

    # -- queries --------------------------------------------------------------
    def instances_of(self, pattern: str) -> List[PatternInstance]:
        return sorted(self._by_pattern.get(pattern, []), key=PatternInstance.anchor)

    def patterns(self) -> List[str]:
        return sorted(self._by_pattern)

    def nodes_of(self, pattern: str) -> List[Node]:
        return [
            instance.node
            for instance in self.instances_of(pattern)
            if instance.node is not None
        ]

    def values_of(self, pattern: str) -> List[str]:
        return [instance.text() for instance in self.instances_of(pattern)]

    def count(self, pattern: Optional[str] = None) -> int:
        if pattern is None:
            return sum(len(instances) for instances in self._by_pattern.values())
        return len(self._by_pattern.get(pattern, []))

    def node_is_instance_of(self, pattern: str, node: Node) -> bool:
        return any(instance.node is node for instance in self._by_pattern.get(pattern, []))

    def __len__(self) -> int:
        return self.count()

    # -- output ---------------------------------------------------------------
    def to_xml(
        self,
        root_name: str = "result",
        auxiliary: Iterable[str] = (),
        label_for: Optional[Callable[[PatternInstance], str]] = None,
        include_attributes: bool = False,
    ) -> XmlElement:
        """Render the instance base as XML (the XML Designer + Transformer).

        ``auxiliary`` patterns are skipped: their children are promoted to the
        nearest non-auxiliary ancestor, exactly like auxiliary predicates in
        Section 2.1.  By default the pattern name is the element name; a leaf
        instance carries its text.
        """
        hidden = set(auxiliary) | {ROOT_PATTERN}
        output_root = XmlElement(root_name)

        def emit(instance: PatternInstance, parent_element: XmlElement) -> None:
            if instance.pattern in hidden:
                target = parent_element
            else:
                name = label_for(instance) if label_for is not None else instance.pattern
                target = parent_element.add(name)
                if include_attributes and instance.node is not None:
                    for key, value in instance.node.attributes.items():
                        target.attributes[key] = value
                if not instance.children:
                    target.text = instance.text()
            for child in sorted(instance.children, key=PatternInstance.anchor):
                emit(child, target)

        for root in self.roots:
            emit(root, output_root)
        return output_root

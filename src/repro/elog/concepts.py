"""Concept conditions: semantic and syntactic built-in predicates.

Section 3.3: "Concept condition predicates subsume semantic concepts like
isCountry(X) or isCurrency(X) and syntactic ones like isDate(X) [...]  Some
predicates are built-in to enrich the system, while more can be interactively
added.  Syntactic predicates are created as regular expressions, whereas
semantic ones refer to an ontological database."

The paper's ontological database is replaced by the bundled vocabularies
below (a documented substitution, see DESIGN.md); the registry is fully
user-extensible through :meth:`ConceptRegistry.register_*`.
"""

from __future__ import annotations

import re
from datetime import datetime
from typing import Callable, Dict, Iterable, Optional

CURRENCY_TOKENS = {
    "$", "€", "£", "¥", "usd", "eur", "euro", "euros", "gbp", "chf", "jpy",
    "dm", "ats", "cad", "aud", "sek", "nok", "dkk", "czk", "huf", "pln",
    "dollar", "dollars", "cent", "cents", "pound", "pounds",
}

COUNTRIES = {
    "austria", "germany", "france", "italy", "spain", "portugal", "belgium",
    "netherlands", "luxembourg", "switzerland", "united kingdom", "uk",
    "ireland", "denmark", "sweden", "norway", "finland", "iceland", "greece",
    "poland", "czech republic", "slovakia", "hungary", "slovenia", "croatia",
    "romania", "bulgaria", "estonia", "latvia", "lithuania", "russia",
    "ukraine", "turkey", "united states", "usa", "canada", "mexico", "brazil",
    "argentina", "chile", "china", "japan", "south korea", "india",
    "australia", "new zealand", "south africa", "egypt", "israel",
}

DATE_PATTERNS = (
    r"\d{1,2}[./-]\d{1,2}[./-]\d{2,4}",
    r"\d{4}-\d{2}-\d{2}",
    r"(?:jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2},?\s+\d{4}",
    r"\d{1,2}\.\s?(?:jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s?\d{4}",
)

TIME_PATTERN = r"\b\d{1,2}:\d{2}(?::\d{2})?\s*(?:am|pm)?\b"
NUMBER_PATTERN = r"-?\d{1,3}(?:[.,]\d{3})*(?:[.,]\d+)?|-?\d+(?:[.,]\d+)?"
PRICE_PATTERN = (
    r"(?:[$€£¥]\s*\d[\d.,]*)|(?:\d[\d.,]*\s*(?:€|EUR|USD|GBP|\$|£|Euro|euro))"
)
EMAIL_PATTERN = r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}"
URL_PATTERN = r"https?://[^\s<>\"]+|www\.[^\s<>\"]+"
FLIGHT_NUMBER_PATTERN = r"\b[A-Z]{2}\s?\d{2,4}\b"
PERCENT_PATTERN = r"-?\d+(?:[.,]\d+)?\s?%"

ConceptFunction = Callable[[str], bool]


class RegexConcept:
    """A regex-backed concept predicate.

    A class (not a closure) so registries built from regexes pickle —
    wrapper components carrying a concept registry cross the distrib
    process boundary (docs/DISTRIB.md).  The compiled pattern is a cache
    rebuilt on unpickle; only the source pattern travels.
    """

    def __init__(self, pattern: str, full_match: bool = False) -> None:
        self.pattern = pattern
        self.full_match = full_match
        self._compiled = re.compile(pattern, re.IGNORECASE)

    def __call__(self, value: str) -> bool:
        if self.full_match:
            return bool(self._compiled.fullmatch(value.strip()))
        return bool(self._compiled.search(value))

    def __getstate__(self):
        return {"pattern": self.pattern, "full_match": self.full_match}

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._compiled = re.compile(self.pattern, re.IGNORECASE)


class VocabularyConcept:
    """A vocabulary-membership concept predicate (picklable, like
    :class:`RegexConcept`)."""

    def __init__(self, words: Iterable[str]) -> None:
        self.vocabulary = frozenset(word.strip().lower() for word in words)

    def __call__(self, value: str) -> bool:
        return value.strip().lower() in self.vocabulary


class ConceptRegistry:
    """Named unary string predicates, extensible at run time."""

    def __init__(self) -> None:
        self._functions: Dict[str, ConceptFunction] = {}
        self._install_builtins()

    # -- registration ------------------------------------------------------
    def register_function(self, name: str, function: ConceptFunction) -> None:
        self._functions[name] = function

    def register_regex(self, name: str, pattern: str, full_match: bool = False) -> None:
        self._functions[name] = RegexConcept(pattern, full_match=full_match)

    def register_vocabulary(self, name: str, words: Iterable[str]) -> None:
        self._functions[name] = VocabularyConcept(words)

    # -- lookup / evaluation -------------------------------------------------
    def names(self) -> Iterable[str]:
        return sorted(self._functions)

    def has(self, name: str) -> bool:
        return name in self._functions

    def check(self, name: str, value: object) -> bool:
        if name not in self._functions:
            raise KeyError(f"unknown concept predicate {name!r}")
        return self._functions[name](str(value))

    # -- built-ins -----------------------------------------------------------
    def _install_builtins(self) -> None:
        self.register_function("isCurrency", _is_currency)
        self.register_vocabulary("isCountry", COUNTRIES)
        self.register_function("isDate", _is_date)
        self.register_regex("isTime", TIME_PATTERN, full_match=False)
        self.register_regex("isNumber", NUMBER_PATTERN, full_match=True)
        self.register_regex("isPrice", PRICE_PATTERN, full_match=False)
        self.register_regex("isEmail", EMAIL_PATTERN, full_match=False)
        self.register_regex("isUrl", URL_PATTERN, full_match=False)
        self.register_regex("isFlightNumber", FLIGHT_NUMBER_PATTERN, full_match=False)
        self.register_regex("isPercentage", PERCENT_PATTERN, full_match=False)


def _is_currency(value: str) -> bool:
    token = value.strip().lower()
    if token in CURRENCY_TOKENS:
        return True
    # a currency symbol somewhere in a short token ("US $", "EUR ")
    return any(symbol in value for symbol in ("$", "€", "£", "¥")) or any(
        re.search(rf"\b{re.escape(word)}\b", token) for word in ("eur", "usd", "gbp", "euro", "dm")
    )


def _is_date(value: str) -> bool:
    text = value.strip().lower()
    for pattern in DATE_PATTERNS:
        if re.search(pattern, text):
            return True
    return False


def parse_number(value: str) -> Optional[float]:
    """Best-effort numeric parsing ('1.234,56', '1,234.56', '42')."""
    text = value.strip().replace(" ", "")
    text = re.sub(r"[^\d.,\-]", "", text)
    if not text:
        return None
    if "," in text and "." in text:
        if text.rfind(",") > text.rfind("."):
            text = text.replace(".", "").replace(",", ".")
        else:
            text = text.replace(",", "")
    elif "," in text:
        # single comma: decimal separator if followed by <= 2 digits
        integer, _, fraction = text.rpartition(",")
        if len(fraction) in (1, 2):
            text = f"{integer.replace(',', '')}.{fraction}"
        else:
            text = text.replace(",", "")
    try:
        return float(text)
    except ValueError:
        return None


def parse_date(value: str) -> Optional[datetime]:
    """Best-effort date parsing for comparison conditions."""
    text = value.strip()
    formats = (
        "%Y-%m-%d", "%d.%m.%Y", "%d/%m/%Y", "%m/%d/%Y", "%d-%m-%Y",
        "%b %d, %Y", "%B %d, %Y", "%d. %b %Y", "%d %b %Y",
    )
    for fmt in formats:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    return None


DEFAULT_CONCEPTS = ConceptRegistry()

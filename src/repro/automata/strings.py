"""Finite automata over symbol alphabets.

These string automata serve two purposes in the reproduction:

* they provide the *horizontal languages* of unranked tree automata (the
  children of a node form a word over the state alphabet), and
* they execute the regular expressions over tag names used by Elog element
  path definitions (Section 3.3).

Symbols are arbitrary hashable Python values (tag names, automaton states),
not characters, so Python's ``re`` module is not applicable; the classical
Thompson construction / subset construction are implemented directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

Symbol = Hashable

EPSILON = object()  # sentinel for epsilon transitions
ANY = object()  # sentinel wildcard symbol matching any input symbol


@dataclass
class NFA:
    """A nondeterministic finite automaton with epsilon moves.

    States are integers.  ``transitions[state]`` maps a symbol (or the
    :data:`EPSILON` / :data:`ANY` sentinels) to a set of successor states.
    """

    initial: int
    accepting: Set[int]
    transitions: Dict[int, Dict[Hashable, Set[int]]] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------
    def add_transition(self, source: int, symbol: Hashable, target: int) -> None:
        self.transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    def states(self) -> Set[int]:
        result = {self.initial} | set(self.accepting)
        for source, moves in self.transitions.items():
            result.add(source)
            for targets in moves.values():
                result |= targets
        return result

    # -- execution -------------------------------------------------------
    def _epsilon_closure(self, states: Set[int]) -> Set[int]:
        closure = set(states)
        frontier = list(states)
        while frontier:
            state = frontier.pop()
            for target in self.transitions.get(state, {}).get(EPSILON, ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return closure

    def _step(self, states: Set[int], symbol: Symbol) -> Set[int]:
        result: Set[int] = set()
        for state in states:
            moves = self.transitions.get(state, {})
            result |= moves.get(symbol, set())
            result |= moves.get(ANY, set())
        return self._epsilon_closure(result)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        current = self._epsilon_closure({self.initial})
        for symbol in word:
            current = self._step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    def matches_prefix(self, word: Sequence[Symbol]) -> List[int]:
        """Lengths of all prefixes of ``word`` accepted by the automaton."""
        lengths: List[int] = []
        current = self._epsilon_closure({self.initial})
        if current & self.accepting:
            lengths.append(0)
        for position, symbol in enumerate(word, start=1):
            current = self._step(current, symbol)
            if not current:
                break
            if current & self.accepting:
                lengths.append(position)
        return lengths


class NFABuilder:
    """Thompson-style construction of NFAs from combinators."""

    def __init__(self) -> None:
        self._next_state = 0

    def _new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def _fragment(self) -> Tuple[int, int, NFA]:
        start = self._new_state()
        end = self._new_state()
        return start, end, NFA(initial=start, accepting={end})

    # -- atomic fragments --------------------------------------------------
    def symbol(self, symbol: Symbol) -> NFA:
        start, end, nfa = self._fragment()
        nfa.add_transition(start, symbol, end)
        return nfa

    def any_symbol(self) -> NFA:
        start, end, nfa = self._fragment()
        nfa.add_transition(start, ANY, end)
        return nfa

    def empty(self) -> NFA:
        start, end, nfa = self._fragment()
        nfa.add_transition(start, EPSILON, end)
        return nfa

    # -- combinators --------------------------------------------------------
    def _merge(self, target: NFA, source: NFA) -> None:
        for state, moves in source.transitions.items():
            for symbol, successors in moves.items():
                for successor in successors:
                    target.add_transition(state, symbol, successor)

    def concat(self, first: NFA, second: NFA) -> NFA:
        result = NFA(initial=first.initial, accepting=set(second.accepting))
        self._merge(result, first)
        self._merge(result, second)
        for state in first.accepting:
            result.add_transition(state, EPSILON, second.initial)
        return result

    def union(self, first: NFA, second: NFA) -> NFA:
        start, end, result = self._fragment()
        self._merge(result, first)
        self._merge(result, second)
        result.add_transition(start, EPSILON, first.initial)
        result.add_transition(start, EPSILON, second.initial)
        for state in first.accepting | second.accepting:
            result.add_transition(state, EPSILON, end)
        return result

    def star(self, inner: NFA) -> NFA:
        start, end, result = self._fragment()
        self._merge(result, inner)
        result.add_transition(start, EPSILON, inner.initial)
        result.add_transition(start, EPSILON, end)
        for state in inner.accepting:
            result.add_transition(state, EPSILON, inner.initial)
            result.add_transition(state, EPSILON, end)
        return result

    def plus(self, inner: NFA) -> NFA:
        return self.concat(inner, self.star(inner))

    def optional(self, inner: NFA) -> NFA:
        return self.union(inner, self.empty())

    def sequence(self, symbols: Iterable[Symbol]) -> NFA:
        result = self.empty()
        for symbol in symbols:
            result = self.concat(result, self.symbol(symbol))
        return result


@dataclass
class DFA:
    """A deterministic finite automaton over an explicit alphabet."""

    initial: FrozenSet[int]
    accepting: Set[FrozenSet[int]]
    transitions: Dict[Tuple[FrozenSet[int], Symbol], FrozenSet[int]]
    alphabet: FrozenSet[Symbol]
    # moves on symbols outside the explicit alphabet (from ANY transitions)
    default_transitions: Dict[FrozenSet[int], FrozenSet[int]] = field(default_factory=dict)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        state = self.initial
        for symbol in word:
            key = (state, symbol)
            if key in self.transitions:
                state = self.transitions[key]
            elif state in self.default_transitions:
                state = self.default_transitions[state]
            else:
                return False
        return state in self.accepting

    def state_count(self) -> int:
        states = {self.initial} | set(self.accepting)
        for (source, _), target in self.transitions.items():
            states.add(source)
            states.add(target)
        return len(states)


def determinize(nfa: NFA, alphabet: Iterable[Symbol]) -> DFA:
    """Subset construction of an equivalent DFA over ``alphabet``."""
    alphabet_set = frozenset(alphabet)
    initial = frozenset(nfa._epsilon_closure({nfa.initial}))
    transitions: Dict[Tuple[FrozenSet[int], Symbol], FrozenSet[int]] = {}
    default_transitions: Dict[FrozenSet[int], FrozenSet[int]] = {}
    accepting: Set[FrozenSet[int]] = set()
    seen = {initial}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        if state & nfa.accepting:
            accepting.add(state)
        # Default (wildcard-only) successor for symbols outside the alphabet.
        wildcard_successor = frozenset(nfa._step(set(state), _FRESH_SYMBOL))
        if wildcard_successor:
            default_transitions[state] = wildcard_successor
            if wildcard_successor not in seen:
                seen.add(wildcard_successor)
                frontier.append(wildcard_successor)
        for symbol in alphabet_set:
            successor = frozenset(nfa._step(set(state), symbol))
            if not successor:
                continue
            transitions[(state, symbol)] = successor
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return DFA(
        initial=initial,
        accepting=accepting,
        transitions=transitions,
        alphabet=alphabet_set,
        default_transitions=default_transitions,
    )


class _Fresh:
    """A symbol guaranteed not to occur in any input alphabet."""


_FRESH_SYMBOL = _Fresh()

"""Unranked tree automata with regular horizontal languages.

An unranked (hedge) automaton assigns a state to every node of an unranked
tree: a node with label ``a`` may get state ``q`` if the word formed by its
children's states belongs to the horizontal language ``L(a, q)``.  Horizontal
languages are given as string automata over the state alphabet
(:mod:`repro.automata.strings`).

This is the automaton model closest to how MSO over unranked trees is
usually presented; the ranked automata of :mod:`repro.automata.ranked` give a
second, independently implemented evaluation path (over the binary encoding)
that the test-suite compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from ..tree.document import Document
from ..tree.node import Node
from .strings import NFA, NFABuilder

State = Hashable


@dataclass
class HorizontalRule:
    """One transition of an unranked automaton.

    ``label`` may be ``"*"`` to match any label; ``language`` is an NFA over
    the automaton's states that the children's state word must satisfy.
    """

    label: str
    state: State
    language: NFA


@dataclass
class UnrankedTreeAutomaton:
    """A nondeterministic unranked (hedge) automaton."""

    rules: List[HorizontalRule]
    accepting: Set[State]
    selecting: Set[State] = field(default_factory=set)
    name: str = "hedge"

    def states(self) -> Set[State]:
        result = set(self.accepting) | set(self.selecting)
        for rule in self.rules:
            result.add(rule.state)
        return result

    def _rules_for(self, label: str) -> List[HorizontalRule]:
        return [rule for rule in self.rules if rule.label in (label, "*")]

    # ------------------------------------------------------------------
    def reachable_states(self, document: Document) -> Dict[int, FrozenSet[State]]:
        """Per node, the states assignable by some run of its subtree.

        Bottom-up: a node may get state q via rule (label, q, L) iff some
        choice of children states (each from the child's reachable set) forms
        a word in L.  The membership test "is there a word in L choosing one
        state per child" is decided by simulating the NFA over the sequence
        of child state-sets (a product construction evaluated on the fly).
        """
        result: Dict[int, FrozenSet[State]] = {}
        # post-order traversal of the unranked tree
        order: List[Node] = []
        stack: List[Tuple[Node, bool]] = [(document.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
        for node in order:
            child_state_sets = [result[child.preorder_index] for child in node.children]
            reachable: Set[State] = set()
            for rule in self._rules_for(node.label):
                if _language_reachable(rule.language, child_state_sets):
                    reachable.add(rule.state)
            result[node.preorder_index] = frozenset(reachable)
        return result

    def accepts(self, document: Document) -> bool:
        reachable = self.reachable_states(document)
        return bool(reachable[document.root.preorder_index] & self.accepting)

    def select(self, document: Document) -> List[Node]:
        """Nodes that can carry a selecting state in some accepting run.

        Computed with the standard two-pass (bottom-up reachability, then
        top-down filtering of states consistent with acceptance at the root).
        """
        reachable = self.reachable_states(document)
        if not (reachable[document.root.preorder_index] & self.accepting):
            return []
        # Top-down pass: keep, for each node, the states that occur in at
        # least one accepting run.
        allowed: Dict[int, Set[State]] = {
            document.root.preorder_index: set(
                reachable[document.root.preorder_index] & self.accepting
            )
        }
        order = list(document)  # preorder
        for node in order:
            node_allowed = allowed.get(node.preorder_index, set())
            if not node.children or not node_allowed:
                continue
            child_state_sets = [reachable[child.preorder_index] for child in node.children]
            per_child_allowed: List[Set[State]] = [set() for _ in node.children]
            for rule in self._rules_for(node.label):
                if rule.state not in node_allowed:
                    continue
                witnesses = _language_witness_states(rule.language, child_state_sets)
                for position, states in enumerate(witnesses):
                    per_child_allowed[position] |= states
            for child, states in zip(node.children, per_child_allowed):
                allowed.setdefault(child.preorder_index, set()).update(states)
        return [
            document.node_at(index)
            for index in sorted(allowed)
            if allowed[index] & self.selecting
        ]


def _language_reachable(language: NFA, child_state_sets: Sequence[FrozenSet[State]]) -> bool:
    """Is some word w (|w| = number of children, w[i] in child_state_sets[i])
    accepted by ``language``?"""
    current = language._epsilon_closure({language.initial})
    for options in child_state_sets:
        successor: Set[int] = set()
        for symbol in options:
            successor |= language._step(current, symbol)
        current = successor
        if not current:
            return False
    return bool(current & language.accepting)


def _language_witness_states(
    language: NFA, child_state_sets: Sequence[FrozenSet[State]]
) -> List[Set[State]]:
    """For each child position, the set of child states used by at least one
    accepted word (empty everywhere when no word is accepted)."""
    count = len(child_state_sets)
    # forward[i]: NFA states reachable after consuming i children
    forward: List[Set[int]] = [language._epsilon_closure({language.initial})]
    for options in child_state_sets:
        successor: Set[int] = set()
        for symbol in options:
            successor |= language._step(forward[-1], symbol)
        forward.append(successor)
    if not (forward[count] & language.accepting):
        return [set() for _ in range(count)]
    # backward[i]: NFA states from which the remaining suffix can reach accept
    backward: List[Set[int]] = [set() for _ in range(count + 1)]
    backward[count] = set(forward[count] & language.accepting)
    witnesses: List[Set[State]] = [set() for _ in range(count)]
    for position in range(count - 1, -1, -1):
        useful_sources: Set[int] = set()
        for symbol in child_state_sets[position]:
            targets = language._step(forward[position], symbol)
            if targets & backward[position + 1]:
                witnesses[position].add(symbol)
                # sources in forward[position] that can reach those targets
                for state in forward[position]:
                    if language._step({state}, symbol) & backward[position + 1]:
                        useful_sources.add(state)
        backward[position] = useful_sources
    return witnesses


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def automaton_from_child_pattern(
    label: str,
    child_pattern: Sequence[str],
    labels: Iterable[str],
    name: str = "pattern",
) -> UnrankedTreeAutomaton:
    """An automaton selecting nodes labelled ``label`` whose children's labels
    match ``child_pattern`` exactly (a simple but useful MSO query family).

    All other nodes are assigned the neutral state ``ok`` regardless of their
    children (so acceptance only hinges on the existence of a match being
    irrelevant — selection does the real work).
    """
    builder = NFABuilder()
    any_word = builder.star(builder.any_symbol())

    rules: List[HorizontalRule] = []
    # Neutral state for every node.
    rules.append(HorizontalRule("*", "ok", any_word))
    # The match state: children must expose the "is-<label>" states in order.
    match_language = builder.sequence([f"is_{child}" for child in child_pattern])
    rules.append(HorizontalRule(label, "match", match_language))
    # Child-label exposure states.
    for child_label in set(child_pattern):
        rules.append(HorizontalRule(child_label, f"is_{child_label}", any_word))
    return UnrankedTreeAutomaton(
        rules=rules,
        accepting={"ok", "match"} | {f"is_{c}" for c in child_pattern},
        selecting={"match"},
        name=name,
    )

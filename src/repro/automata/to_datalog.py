"""Compiling tree automata into monadic datalog (Theorem 2.5, one direction).

Theorem 2.5 of the paper: every unary MSO-definable query over tau_ur is
definable in monadic datalog.  The textbook proof goes through tree automata:
an MSO query corresponds to a (deterministic, bottom-up) automaton with
selecting states; the automaton's run can be axiomatised in monadic datalog
with one predicate per state.  :func:`compile_automaton` performs that
construction over the firstchild/nextsibling view of documents, and the test
suite checks that the compiled program selects exactly the nodes the
automaton selects — an executable witness of the theorem.
"""

from __future__ import annotations

import weakref
from typing import Iterable, List, Optional, Tuple

from ..datalog.ast import Atom, Literal, Rule, Variable
from ..datalog.cache import LruMap
from ..datalog.options import UNSET, EngineOptions, resolve_options
from ..datalog.registry import PlanRegistry
from ..datalog.tree_edb import label_predicate
from ..mdatalog.evaluator import MonadicTreeEvaluator
from ..mdatalog.program import MonadicProgram
from ..tree.document import Document
from ..tree.node import Node
from .ranked import BOTTOM, State, TreeAutomaton

SELECTED = "selected"
ACCEPTED_EVERYWHERE = "_accepted_everywhere"
NO_NEXT_SIBLING = "_no_nextsibling"


def state_predicate(state: State) -> str:
    """The datalog predicate name carrying automaton state ``state``."""
    return f"state_{state}"


def compile_automaton(
    automaton: TreeAutomaton,
    labels: Iterable[str],
    query_predicate: str = SELECTED,
) -> MonadicProgram:
    """Compile ``automaton`` into a monadic datalog program.

    ``labels`` must cover the labels of the documents the program will be
    evaluated on (wildcard transitions of the automaton are expanded per
    label).  The resulting program has a single query predicate
    ``query_predicate`` selecting exactly ``automaton.select(document)``.
    """
    x = Variable("X")
    y = Variable("Y")
    z = Variable("Z")
    rules: List[Rule] = []

    # "has no next sibling" := lastsibling or root.
    rules.append(Rule(Atom(NO_NEXT_SIBLING, (x,)), (Literal(Atom("lastsibling", (x,))),)))
    rules.append(Rule(Atom(NO_NEXT_SIBLING, (x,)), (Literal(Atom("root", (x,))),)))

    label_set = sorted(set(labels))
    states = sorted((s for s in automaton.states() if s != BOTTOM), key=str)

    for label in label_set:
        for left in [BOTTOM, *states]:
            for right in [BOTTOM, *states]:
                target = automaton.transition(label, left, right)
                if target is None:
                    continue
                body: List[Literal] = [Literal(Atom(label_predicate(label), (x,)))]
                if left == BOTTOM:
                    body.append(Literal(Atom("leaf", (x,))))
                else:
                    body.append(Literal(Atom("firstchild", (x, y))))
                    body.append(Literal(Atom(state_predicate(left), (y,))))
                if right == BOTTOM:
                    body.append(Literal(Atom(NO_NEXT_SIBLING, (x,))))
                else:
                    body.append(Literal(Atom("nextsibling", (x, z))))
                    body.append(Literal(Atom(state_predicate(right), (z,))))
                rules.append(Rule(Atom(state_predicate(target), (x,)), tuple(body)))

    # Acceptance at the root, broadcast to every node.
    x0 = Variable("X0")
    for state in automaton.accepting:
        rules.append(
            Rule(
                Atom(ACCEPTED_EVERYWHERE, (x,)),
                (Literal(Atom(state_predicate(state), (x,))), Literal(Atom("root", (x,)))),
            )
        )
    rules.append(
        Rule(
            Atom(ACCEPTED_EVERYWHERE, (x,)),
            (Literal(Atom(ACCEPTED_EVERYWHERE, (x0,))), Literal(Atom("firstchild", (x0, x)))),
        )
    )
    rules.append(
        Rule(
            Atom(ACCEPTED_EVERYWHERE, (x,)),
            (Literal(Atom(ACCEPTED_EVERYWHERE, (x0,))), Literal(Atom("nextsibling", (x0, x)))),
        )
    )

    # Selection: selecting state + accepting run.
    for state in automaton.selecting:
        rules.append(
            Rule(
                Atom(query_predicate, (x,)),
                (
                    Literal(Atom(state_predicate(state), (x,))),
                    Literal(Atom(ACCEPTED_EVERYWHERE, (x,))),
                ),
            )
        )
    if not automaton.selecting:
        # Degenerate but well-formed program: nothing is ever selected, yet the
        # query predicate must exist.  Use an unsatisfiable combination.
        rules.append(
            Rule(
                Atom(query_predicate, (x,)),
                (Literal(Atom("root", (x,))), Literal(Atom("leaf", (x,))),
                 Literal(Atom(ACCEPTED_EVERYWHERE, (x,))), Literal(Atom("lastsibling", (x,)))),
            )
        )

    return MonadicProgram(rules, query_predicates=[query_predicate])


# Reusable (compile once, evaluate per document) consumers of the
# compilation.  Evaluation goes through :class:`MonadicTreeEvaluator`, i.e.
# through the ground+LTUR pipeline or the indexed-join generic engine.

# Content-keyed (a stale hit would silently select wrong nodes, exactly as
# for the engine's fixpoint cache): the key snapshots the automaton's
# transitions and state sets, so in-place mutation of the mutable dataclass
# is always observed.  A bounded LRU (not the earlier FIFO — hot automata
# now stay resident under churn) keeps long-running processes from
# accumulating evaluators.
_EVALUATOR_CACHE: LruMap[Tuple[object, ...], MonadicTreeEvaluator] = LruMap(32)

#: Callers that bring their own :class:`PlanRegistry` get an evaluator
#: cache scoped to that registry instead of the process-wide one above —
#: repeated ``compiled_select(..., registry=r)`` calls must not recompile
#: per call, yet a process-wide entry must not outlive (or alias) the
#: registry it was built against.  Weak keys drop each cache with its
#: registry.
_REGISTRY_EVALUATOR_CACHES: "weakref.WeakKeyDictionary[PlanRegistry, LruMap[Tuple[object, ...], MonadicTreeEvaluator]]" = (
    weakref.WeakKeyDictionary()
)


def _evaluator_cache_for(
    registry: Optional[PlanRegistry],
) -> LruMap[Tuple[object, ...], MonadicTreeEvaluator]:
    if registry is None:
        return _EVALUATOR_CACHE
    cache = _REGISTRY_EVALUATOR_CACHES.get(registry)
    if cache is None:
        cache = LruMap(32)
        _REGISTRY_EVALUATOR_CACHES[registry] = cache
    return cache


def _automaton_signature(automaton: TreeAutomaton) -> Tuple[object, ...]:
    return (
        frozenset(automaton.transitions.items()),
        frozenset(automaton.accepting),
        frozenset(automaton.selecting),
    )


def compiled_evaluator(
    automaton: TreeAutomaton,
    labels: Iterable[str],
    query_predicate: str = SELECTED,
    force_generic: object = UNSET,
    share_plans: object = UNSET,
    *,
    options: Optional[EngineOptions] = None,
    registry: Optional[PlanRegistry] = None,
) -> MonadicTreeEvaluator:
    """A (cached) evaluator for ``automaton``'s monadic datalog compilation.

    The cache is keyed on automaton content, so callers that repeatedly
    query the same (or an equal) automaton skip both recompilation and
    evaluator construction, while mutated automata recompile.  An evaluator
    cache miss over a previously seen *program* content still shares the
    downstream compilation (``share_plans``, the default): the TMNF rewrite
    and the generic engine's rule plans come from the process-wide caches
    of :mod:`repro.mdatalog.evaluator` / :mod:`repro.datalog.registry`.

    Tuning goes through ``options=`` (:class:`EngineOptions` keys the cache,
    so differently tuned evaluators never alias); the pre-façade kwargs
    still work with a :class:`DeprecationWarning`.  Callers that supply
    their own ``registry`` (the :class:`repro.api.Session` path) are cached
    in a registry-scoped evaluator cache (weakly keyed, so a process-wide
    entry never pins a session-owned registry alive).
    """
    options = resolve_options(
        "compiled_evaluator",
        options,
        {"force_generic": force_generic, "share_plans": share_plans},
    )
    label_set = tuple(sorted(set(labels)))
    key = (
        _automaton_signature(automaton),
        label_set,
        query_predicate,
        options,
    )
    cache = _evaluator_cache_for(registry)
    evaluator = cache.get(key)
    if evaluator is not None:
        return evaluator
    program = compile_automaton(automaton, label_set, query_predicate)
    evaluator = MonadicTreeEvaluator(program, options=options, registry=registry)
    cache.put(key, evaluator)
    return evaluator


def compiled_select(
    automaton: TreeAutomaton,
    document: Document,
    labels: Optional[Iterable[str]] = None,
    query_predicate: str = SELECTED,
    force_generic: object = UNSET,
    share_plans: object = UNSET,
    *,
    options: Optional[EngineOptions] = None,
    registry: Optional[PlanRegistry] = None,
) -> List[Node]:
    """Nodes of ``document`` selected by ``automaton``'s compiled program.

    Equivalent to ``automaton.select(document)`` (Theorem 2.5) but runs the
    datalog side of the bridge; ``labels`` defaults to the document's label
    set.
    """
    options = resolve_options(
        "compiled_select",
        options,
        {"force_generic": force_generic, "share_plans": share_plans},
    )
    label_set = set(labels) if labels is not None else set(document.labels())
    evaluator = compiled_evaluator(
        automaton,
        label_set,
        query_predicate,
        options=options,
        registry=registry,
    )
    return evaluator.select(document, query_predicate)

"""Bottom-up tree automata on the binary (firstchild/nextsibling) encoding.

MSO over trees has the same expressive power as tree automata ([37, 10] in
the paper), and Theorem 2.5 transfers that power to monadic datalog.  To make
this executable, this module provides deterministic and nondeterministic
bottom-up automata running on the binary encoding of unranked documents
(:mod:`repro.tree.encoding`), plus selection of nodes via selecting states —
the operational form of a unary MSO query.

Transitions are given by a function-like table::

    delta(label, left_state, right_state) -> state          (deterministic)
    delta(label, left_state, right_state) -> set of states  (nondeterministic)

Missing children are fed the distinguished :data:`BOTTOM` state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from ..tree.document import Document
from ..tree.encoding import encode
from ..tree.node import Node

State = Hashable
BOTTOM = "__bottom__"  # state assigned to absent children

TransitionKey = Tuple[str, State, State]


@dataclass
class TreeAutomaton:
    """A deterministic bottom-up binary tree automaton.

    Parameters
    ----------
    transitions:
        Mapping ``(label, left_state, right_state) -> state``.  A wildcard
        label ``"*"`` may be used as fallback for labels without an explicit
        entry.
    accepting:
        Tree acceptance: the run accepts iff the state at the encoded root is
        in this set.
    selecting:
        States that *select* the node they are assigned to; selection is only
        reported for accepting runs (standard query-automaton convention).
    """

    transitions: Dict[TransitionKey, State]
    accepting: Set[State]
    selecting: Set[State] = field(default_factory=set)
    name: str = "automaton"

    # ------------------------------------------------------------------
    def states(self) -> Set[State]:
        result: Set[State] = set(self.accepting) | set(self.selecting) | {BOTTOM}
        for (_, left, right), target in self.transitions.items():
            result |= {left, right, target}
        return result

    def labels(self) -> Set[str]:
        return {label for (label, _, _) in self.transitions}

    def transition(self, label: str, left: State, right: State) -> Optional[State]:
        key = (label, left, right)
        if key in self.transitions:
            return self.transitions[key]
        wildcard = ("*", left, right)
        return self.transitions.get(wildcard)

    # ------------------------------------------------------------------
    def run(self, document: Document) -> Dict[int, State]:
        """Run bottom-up over the encoded document.

        Returns the assignment {preorder index -> state}; nodes for which no
        transition is defined map to ``None`` and make the run rejecting.
        """
        binary_root = encode(document)
        assignment: Dict[int, State] = {}
        states: Dict[int, Optional[State]] = {}
        for binary in binary_root.iter_postorder():
            left_state = states.get(id(binary.left), BOTTOM) if binary.left else BOTTOM
            right_state = states.get(id(binary.right), BOTTOM) if binary.right else BOTTOM
            if left_state is None or right_state is None:
                states[id(binary)] = None
                continue
            state = self.transition(binary.label, left_state, right_state)
            states[id(binary)] = state
            if binary.source is not None and state is not None:
                assignment[binary.source.preorder_index] = state
        root_state = states[id(binary_root)]
        if root_state is None:
            return {}
        return assignment

    def accepts(self, document: Document) -> bool:
        assignment = self.run(document)
        if not assignment:
            return False
        return assignment[document.root.preorder_index] in self.accepting

    def select(self, document: Document) -> List[Node]:
        """Nodes assigned a selecting state by an accepting run."""
        assignment = self.run(document)
        if not assignment:
            return []
        if assignment.get(document.root.preorder_index) not in self.accepting:
            return []
        return [
            document.node_at(index)
            for index in sorted(assignment)
            if assignment[index] in self.selecting
        ]


@dataclass
class NondeterministicTreeAutomaton:
    """A nondeterministic bottom-up binary tree automaton.

    ``transitions`` maps ``(label, left_state, right_state)`` to a *set* of
    possible states.  Acceptance is existential.
    """

    transitions: Dict[TransitionKey, FrozenSet[State]]
    accepting: Set[State]
    name: str = "nta"

    def possible(self, label: str, left: State, right: State) -> FrozenSet[State]:
        result: Set[State] = set()
        result |= self.transitions.get((label, left, right), frozenset())
        result |= self.transitions.get(("*", left, right), frozenset())
        return frozenset(result)

    def reachable_states(self, document: Document) -> Dict[int, FrozenSet[State]]:
        """For every node, the set of states of *some* run of its encoded subtree."""
        binary_root = encode(document)
        states: Dict[int, FrozenSet[State]] = {}
        for binary in binary_root.iter_postorder():
            left_states = states[id(binary.left)] if binary.left else frozenset({BOTTOM})
            right_states = states[id(binary.right)] if binary.right else frozenset({BOTTOM})
            reachable: Set[State] = set()
            for left in left_states:
                for right in right_states:
                    reachable |= self.possible(binary.label, left, right)
            states[id(binary)] = frozenset(reachable)
        result: Dict[int, FrozenSet[State]] = {}
        for binary in binary_root.iter_postorder():
            if binary.source is not None:
                result[binary.source.preorder_index] = states[id(binary)]
        return result

    def accepts(self, document: Document) -> bool:
        reachable = self.reachable_states(document)
        return bool(reachable.get(document.root.preorder_index, frozenset()) & self.accepting)

    def determinize(self) -> TreeAutomaton:
        """Subset construction (on demand over the automaton's label set).

        The resulting deterministic automaton works over the same labels plus
        the wildcard entries of this automaton; unseen (label, states)
        combinations map to the empty subset (a rejecting sink).
        """
        labels = {label for (label, _, _) in self.transitions}
        initial = frozenset({BOTTOM})
        subsets: Set[FrozenSet[State]] = {initial}
        frontier = [initial]
        transitions: Dict[TransitionKey, State] = {}
        # Iterate to a fixpoint over reachable subsets.
        while frontier:
            _ = frontier.pop()
            new_subsets: Set[FrozenSet[State]] = set()
            for label in labels:
                for left in list(subsets):
                    for right in list(subsets):
                        target: Set[State] = set()
                        for left_state in left:
                            for right_state in right:
                                target |= self.possible(label, left_state, right_state)
                        target_frozen = frozenset(target)
                        transitions[(label, left, right)] = target_frozen
                        if target_frozen not in subsets:
                            new_subsets.add(target_frozen)
            if not new_subsets:
                break
            subsets |= new_subsets
            frontier.extend(new_subsets)
        accepting = {subset for subset in subsets if subset & self.accepting}
        # Map the deterministic initial convention: BOTTOM plays itself, so add
        # identity handling by renaming frozenset({BOTTOM}) to BOTTOM.
        def rename(state: FrozenSet[State]) -> State:
            return BOTTOM if state == initial else state

        renamed_transitions = {
            (label, rename(left), rename(right)): rename(target)
            for (label, left, right), target in transitions.items()
        }
        renamed_accepting = {rename(state) for state in accepting}
        return TreeAutomaton(
            transitions=renamed_transitions,
            accepting=renamed_accepting,
            name=f"det({self.name})",
        )


# ---------------------------------------------------------------------------
# Example automata used in tests, examples and benchmarks
# ---------------------------------------------------------------------------


def label_reachability_automaton(target_label: str, labels: Iterable[str]) -> TreeAutomaton:
    """Accepts documents containing at least one ``target_label`` node.

    Two states: "seen" propagates upwards through the binary encoding.
    """
    transitions: Dict[TransitionKey, State] = {}
    for label in set(labels) | {target_label}:
        for left in (BOTTOM, "seen", "clean"):
            for right in (BOTTOM, "seen", "clean"):
                seen = label == target_label or left == "seen" or right == "seen"
                transitions[(label, left, right)] = "seen" if seen else "clean"
    return TreeAutomaton(
        transitions=transitions,
        accepting={"seen"},
        selecting=set(),
        name=f"contains({target_label})",
    )


def leaf_selector_automaton(labels: Iterable[str]) -> TreeAutomaton:
    """Selects every node that is a leaf of the *unranked* tree.

    A node is an unranked leaf iff its encoded first-child pointer is absent,
    i.e. the left child in the binary encoding is BOTTOM.
    """
    transitions: Dict[TransitionKey, State] = {}
    all_labels = set(labels)
    states = (BOTTOM, "leaf", "internal")
    for label in all_labels:
        for left in states:
            for right in states:
                transitions[(label, left, right)] = "leaf" if left == BOTTOM else "internal"
    return TreeAutomaton(
        transitions=transitions,
        accepting={"leaf", "internal"},
        selecting={"leaf"},
        name="select-leaves",
    )

"""Tree automata: the executable face of the MSO <-> monadic datalog bridge."""

from .ranked import (
    BOTTOM,
    NondeterministicTreeAutomaton,
    TreeAutomaton,
    label_reachability_automaton,
    leaf_selector_automaton,
)
from .strings import ANY, DFA, EPSILON, NFA, NFABuilder, determinize
from .to_datalog import (
    compile_automaton,
    compiled_evaluator,
    compiled_select,
    state_predicate,
)
from .unranked import (
    HorizontalRule,
    UnrankedTreeAutomaton,
    automaton_from_child_pattern,
)

__all__ = [
    "ANY",
    "BOTTOM",
    "DFA",
    "EPSILON",
    "HorizontalRule",
    "NFA",
    "NFABuilder",
    "NondeterministicTreeAutomaton",
    "TreeAutomaton",
    "UnrankedTreeAutomaton",
    "automaton_from_child_pattern",
    "compile_automaton",
    "compiled_evaluator",
    "compiled_select",
    "determinize",
    "label_reachability_automaton",
    "leaf_selector_automaton",
    "state_predicate",
]

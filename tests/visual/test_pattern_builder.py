"""Experiment E6: the visual wrapper specification session (Figures 2-4)."""

from __future__ import annotations

import pytest

from repro.elog import ContainsCondition, ElementPath, Extractor
from repro.html import parse_html
from repro.visual import (
    PatternBuilderError,
    PatternBuilderSession,
    RenderedPage,
    exact_path,
    generalized_path,
    path_between,
    suggest_conditions,
)
from repro.web.sites.bookstore import generate_books, table_shop_page


@pytest.fixture
def books():
    return generate_books(6, seed=11)


@pytest.fixture
def page_document(books):
    return parse_html(table_shop_page(books), url="books-a.test/bestsellers")


def test_rendered_page_maps_selection_to_node(page_document, books):
    page = RenderedPage.render(page_document)
    node = page.select_text(books[0].title)
    assert node is not None
    assert node.label in ("a", "td")
    assert books[0].title in page.highlight(node)


def test_select_text_occurrences_and_missing(page_document):
    page = RenderedPage.render(page_document)
    assert page.select_text("bestsellers".upper()) is None
    first = page.select_text("$")
    second = page.select_text("$", occurrence=1)
    assert first is not None and second is not None
    assert first is not second


def test_path_between_and_generalisation(page_document, books):
    page = RenderedPage.render(page_document)
    anchor = page.select_text(books[0].title)
    table = page_document.find_first("table")
    labels = path_between(table, anchor)
    assert labels[-1] == anchor.label
    assert exact_path(table, anchor).steps == tuple(labels)
    assert generalized_path(table, anchor).steps == ("?", anchor.label)
    with pytest.raises(ValueError):
        exact_path(anchor, table)


def test_suggest_conditions_prefers_class(page_document):
    cell = page_document.find_all("td")[1]
    suggestions = suggest_conditions(cell)
    assert suggestions
    assert suggestions[0].attribute == "class"


def test_full_visual_session_builds_working_wrapper(page_document, books):
    session = PatternBuilderSession(page_document)
    # Step 1: define the record pattern by dragging over a full row region
    # (from the title to the price of the first book).
    text = session.page.text
    start = text.find(books[0].title)
    price_text = f"$ {books[0].price:.2f}"
    end = text.find(price_text) + len(price_text)
    row_proposal = session.propose_filter_region("bookrow", "document", start, end)
    # the generalised filter (?.tr) matches every table row, including the
    # header row — the classic "filter a little too general" situation.
    assert row_proposal.match_count() == len(books) + 1
    # Refine: a book row must contain a hyperlinked title.
    row_proposal = session.refine_with_condition(
        row_proposal, ContainsCondition(path=ElementPath.parse(".a"))
    )
    assert row_proposal.match_count() == len(books)
    session.accept(row_proposal)

    # Step 2: the price pattern under the record pattern (a click on a price).
    price_proposal = session.propose_filter("bookprice", "bookrow", price_text)
    session.accept(price_proposal)
    extracted = session.test_pattern("bookprice")
    assert len(extracted) >= 1
    assert any(f"{books[0].price:.2f}" in value for value in extracted)

    # The program tree view lists patterns and their filters (Figure 4).
    tree = session.program_tree()
    assert set(tree) == {"bookrow", "bookprice"}
    assert all(filters for filters in tree.values())

    # The generated wrapper is an ordinary Elog program usable by the Extractor.
    base = Extractor(session.wrapper()).extract(document=page_document)
    assert base.count("bookrow") == len(books)


def test_refinement_narrows_matches(page_document, books):
    session = PatternBuilderSession(page_document)
    proposal = session.propose_filter("cell", "document", books[0].author)
    # the generalised ?.td filter matches every cell of the table
    assert proposal.match_count() >= len(books)
    refined = session.refine_with_attribute(proposal, "class", "author", mode="exact")
    assert 0 < refined.match_count() < proposal.match_count()
    refined_more = session.refine_with_condition(
        refined, ContainsCondition(path=ElementPath.parse(".#text"))
    )
    assert refined_more.match_count() <= refined.match_count()
    session.accept(refined)
    assert session.test_pattern("cell") == [book.author for book in books]


def test_invalid_interactions_raise(page_document):
    session = PatternBuilderSession(page_document)
    with pytest.raises(PatternBuilderError):
        session.propose_filter("p", "unknown_parent", "Bestsellers")
    with pytest.raises(PatternBuilderError):
        session.propose_filter("p", "document", "THIS TEXT DOES NOT EXIST")


def test_highlighting_parent_instances(page_document, books):
    session = PatternBuilderSession(page_document)
    proposal = session.propose_filter("row", "document", books[0].title)
    session.accept(proposal)
    highlighted = session.highlight_instances("row")
    assert highlighted
    assert session.highlight_instances("document") == [page_document.root]

"""Unit tests for the Node class."""

from __future__ import annotations

import pytest

from repro.tree import element, text_node


def build_small_tree():
    root = element("root")
    a = root.append_child(element("a"))
    b = root.append_child(element("b"))
    c = root.append_child(element("c"))
    a1 = a.append_child(element("a1"))
    a2 = a.append_child(text_node("hello"))
    return root, a, b, c, a1, a2


def test_append_child_sets_parent_and_index():
    root, a, b, c, a1, a2 = build_small_tree()
    assert a.parent is root
    assert a.index_in_parent == 0
    assert b.index_in_parent == 1
    assert c.index_in_parent == 2
    assert a1.parent is a


def test_append_child_rejects_attached_node():
    root, a, *_ = build_small_tree()
    other = element("other")
    with pytest.raises(ValueError):
        other.append_child(a)


def test_first_and_last_sibling_flags():
    root, a, b, c, a1, a2 = build_small_tree()
    assert a.is_first_sibling and not a.is_last_sibling
    assert c.is_last_sibling and not c.is_first_sibling
    assert not root.is_last_sibling  # the root has no parent (paper convention)
    assert not root.is_first_sibling


def test_sibling_navigation():
    root, a, b, c, *_ = build_small_tree()
    assert a.next_sibling is b
    assert b.next_sibling is c
    assert c.next_sibling is None
    assert c.previous_sibling is b
    assert a.previous_sibling is None


def test_first_and_last_child():
    root, a, b, c, a1, a2 = build_small_tree()
    assert root.first_child is a
    assert root.last_child is c
    assert b.first_child is None


def test_detach_removes_from_parent():
    root, a, b, c, *_ = build_small_tree()
    b.detach()
    assert b.parent is None
    assert root.children == [a, c]
    assert c.index_in_parent == 1


def test_insert_child_reindexes_siblings():
    root, a, b, c, *_ = build_small_tree()
    new = element("new")
    root.insert_child(1, new)
    assert [child.label for child in root.children] == ["a", "new", "b", "c"]
    assert [child.index_in_parent for child in root.children] == [0, 1, 2, 3]


def test_iter_preorder_is_document_order():
    root, a, b, c, a1, a2 = build_small_tree()
    labels = [node.label for node in root.iter_preorder()]
    assert labels == ["root", "a", "a1", "#text", "b", "c"]


def test_iter_ancestors():
    root, a, b, c, a1, a2 = build_small_tree()
    assert [node.label for node in a1.iter_ancestors()] == ["a", "root"]


def test_text_content_concatenates_descendant_text():
    root, a, *_ = build_small_tree()
    assert a.text_content() == "hello"
    assert root.text_content() == "hello"


def test_normalized_text_collapses_whitespace():
    node = element("p")
    node.append_child(text_node("  lots \n of   space "))
    assert node.normalized_text() == "lots of space"


def test_subtree_size_and_depth():
    root, a, b, c, a1, a2 = build_small_tree()
    assert root.subtree_size() == 6
    assert a.subtree_size() == 3
    assert a1.depth() == 2
    assert root.depth() == 0


def test_path_from_root():
    root, a, b, c, a1, a2 = build_small_tree()
    assert a1.label_path_from_root() == ["root", "a", "a1"]


def test_get_attribute_default():
    node = element("a", {"href": "/x"})
    assert node.get_attribute("href") == "/x"
    assert node.get_attribute("missing", "none") == "none"


def test_is_ancestor_without_index():
    root, a, b, c, a1, a2 = build_small_tree()
    assert root.is_ancestor_of(a1)
    assert not a1.is_ancestor_of(root)
    assert not a.is_ancestor_of(a)
    assert a1.is_descendant_of(root)

"""Unit tests for Document indexing and tau_ur relations."""

from __future__ import annotations

import pytest

from repro.tree import Document, Node, common_ancestor, nodes_between
from repro.tree.document import assert_same_document


def test_document_requires_detached_root():
    parent = Node("p")
    child = parent.append_child(Node("c"))
    with pytest.raises(ValueError):
        Document(child)


def test_dom_is_document_order(figure1):
    labels = [node.label for node in figure1.dom]
    assert labels == ["n1", "n2", "n3", "n4", "n5", "n6"]


def test_preorder_indexes_are_consecutive(figure1):
    assert [node.preorder_index for node in figure1] == list(range(6))


def test_nodes_with_label(figure1):
    assert [n.label for n in figure1.nodes_with_label("n3")] == ["n3"]
    assert figure1.nodes_with_label("missing") == []


def test_labels_and_histogram(nested_tree):
    assert nested_tree.labels() == {"doc", "section", "title", "para", "i", "b", "list", "item"}
    histogram = nested_tree.label_histogram()
    assert histogram["section"] == 2
    assert histogram["item"] == 3


def test_leaves_and_last_siblings(figure1):
    leaf_labels = {node.label for node in figure1.leaves()}
    assert leaf_labels == {"n2", "n4", "n5", "n6"}
    last_sibling_labels = {node.label for node in figure1.last_siblings()}
    # n6 is the last child of n1, n5 the last child of n3.  The root is not a
    # last sibling.
    assert last_sibling_labels == {"n5", "n6"}


def test_firstchild_pairs(figure1):
    pairs = {(a.label, b.label) for a, b in figure1.firstchild_pairs()}
    assert pairs == {("n1", "n2"), ("n3", "n4")}


def test_nextsibling_pairs(figure1):
    pairs = {(a.label, b.label) for a, b in figure1.nextsibling_pairs()}
    assert pairs == {("n2", "n3"), ("n3", "n6"), ("n4", "n5")}


def test_child_pairs(figure1):
    pairs = {(a.label, b.label) for a, b in figure1.child_pairs()}
    assert pairs == {
        ("n1", "n2"), ("n1", "n3"), ("n1", "n6"), ("n3", "n4"), ("n3", "n5"),
    }


def test_document_order_and_precedes(figure1):
    n2 = figure1.find_first("n2")
    n5 = figure1.find_first("n5")
    assert figure1.precedes(n2, n5)
    assert not figure1.precedes(n5, n2)


def test_depth(nested_tree):
    assert nested_tree.depth() == 4  # doc > section > para > i > b


def test_reindex_after_mutation(figure1):
    n3 = figure1.find_first("n3")
    n3.append_child(Node("n7"))
    figure1.reindex()
    assert [node.label for node in figure1] == ["n1", "n2", "n3", "n4", "n5", "n7", "n6"]


def test_common_ancestor(figure1):
    n4 = figure1.find_first("n4")
    n6 = figure1.find_first("n6")
    n5 = figure1.find_first("n5")
    assert common_ancestor(n4, n5).label == "n3"
    assert common_ancestor(n4, n6).label == "n1"
    assert common_ancestor(n4, n4).label == "n4"


def test_nodes_between(figure1):
    n2 = figure1.find_first("n2")
    n6 = figure1.find_first("n6")
    labels = [node.label for node in nodes_between(figure1, n2, n6)]
    assert labels == ["n3", "n4", "n5"]


def test_assert_same_document_rejects_foreign_nodes(figure1):
    foreign = Document(Node("other"))
    with pytest.raises(ValueError):
        assert_same_document(figure1, [foreign.root])
    assert_same_document(figure1, figure1.dom)  # no exception


def test_element_count_ignores_text(simple_html):
    assert simple_html.element_count() < len(simple_html)
    assert simple_html.element_count() > 10

"""Experiment E1: the Figure 1 tree and its binary encoding."""

from __future__ import annotations

from repro.tree import decode, encode, figure1_tree


def test_figure1_unranked_structure():
    doc = figure1_tree()
    n1 = doc.root
    assert n1.label == "n1"
    assert [child.label for child in n1.children] == ["n2", "n3", "n6"]
    n3 = doc.find_first("n3")
    assert [child.label for child in n3.children] == ["n4", "n5"]


def test_figure1_binary_encoding_matches_paper():
    """Figure 1(b): firstchild and nextsibling pointers of the encoding."""
    doc = figure1_tree()
    binary_root = encode(doc)
    # n1 --firstchild--> n2
    assert binary_root.label == "n1"
    assert binary_root.left.label == "n2"
    assert binary_root.right is None
    # n2 --nextsibling--> n3 --nextsibling--> n6
    n2 = binary_root.left
    assert n2.left is None
    assert n2.right.label == "n3"
    n3 = n2.right
    assert n3.right.label == "n6"
    # n3 --firstchild--> n4 --nextsibling--> n5
    assert n3.left.label == "n4"
    assert n3.left.right.label == "n5"
    assert n3.left.right.right is None


def test_encoding_round_trip_restores_unranked_tree():
    doc = figure1_tree()
    decoded = decode(encode(doc))
    assert [node.label for node in decoded] == [node.label for node in doc]
    assert decoded.find_first("n3").children[0].label == "n4"

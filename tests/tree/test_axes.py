"""Unit tests for axis relations."""

from __future__ import annotations

import pytest

from repro.tree import AxisIndex, axis_iterator, holds
from repro.tree.axes import following, preceding


def labels(nodes):
    return [node.label for node in nodes]


def test_child_and_descendant_axes(figure1):
    n1 = figure1.root
    n3 = figure1.find_first("n3")
    assert labels(axis_iterator("child")(n1)) == ["n2", "n3", "n6"]
    assert labels(axis_iterator("descendant")(n1)) == ["n2", "n3", "n4", "n5", "n6"]
    assert labels(axis_iterator("descendant-or-self")(n3)) == ["n3", "n4", "n5"]


def test_ancestor_axes(figure1):
    n4 = figure1.find_first("n4")
    assert labels(axis_iterator("ancestor")(n4)) == ["n3", "n1"]
    assert labels(axis_iterator("ancestor-or-self")(n4)) == ["n4", "n3", "n1"]


def test_sibling_axes(figure1):
    n3 = figure1.find_first("n3")
    assert labels(axis_iterator("following-sibling")(n3)) == ["n6"]
    assert labels(axis_iterator("preceding-sibling")(n3)) == ["n2"]
    assert labels(axis_iterator("nextsibling")(n3)) == ["n6"]


def test_following_axis_matches_definition(figure1):
    """Following(x, y) iff x before y in document order and x not ancestor of y."""
    for x in figure1:
        expected = [
            y.label
            for y in figure1
            if x.preorder_index < y.preorder_index and not x.is_ancestor_of(y)
        ]
        assert labels(following(x)) == expected


def test_preceding_axis(figure1):
    n6 = figure1.find_first("n6")
    assert set(labels(preceding(n6))) == {"n2", "n3", "n4", "n5"}


def test_unknown_axis_raises():
    with pytest.raises(KeyError):
        axis_iterator("sideways")


def test_holds_child_variants(figure1):
    n1, n3, n4 = (figure1.find_first(label) for label in ("n1", "n3", "n4"))
    assert holds("child", n1, n3)
    assert not holds("child", n1, n4)
    assert holds("child+", n1, n4)
    assert holds("child*", n1, n1)
    assert not holds("child+", n1, n1)


def test_holds_sibling_variants(figure1):
    n2, n3, n6 = (figure1.find_first(label) for label in ("n2", "n3", "n6"))
    assert holds("nextsibling", n2, n3)
    assert holds("nextsibling+", n2, n6)
    assert not holds("nextsibling", n2, n6)
    assert holds("nextsibling*", n2, n2)


def test_holds_following(figure1):
    n4 = figure1.find_first("n4")
    n6 = figure1.find_first("n6")
    n1 = figure1.root
    assert holds("following", n4, n6)
    assert not holds("following", n1, n6)  # ancestors do not follow


def test_holds_unknown_relation(figure1):
    with pytest.raises(KeyError):
        holds("cousin", figure1.root, figure1.root)


def test_axis_index_successors_and_predecessors(figure1):
    index = AxisIndex(figure1)
    n3 = figure1.find_first("n3")
    assert labels(index.successors("child", n3)) == ["n4", "n5"]
    assert labels(index.successors("following", n3)) == ["n6"]
    assert labels(index.predecessors("child", n3)) == ["n1"]
    assert labels(index.predecessors("nextsibling+", n3)) == ["n2"]
    assert labels(index.successors("nextsibling*", n3)) == ["n3", "n6"]


def test_axis_index_pairs_consistent_with_holds(figure1):
    index = AxisIndex(figure1)
    for relation in ("child", "child+", "nextsibling", "following"):
        pairs = set(
            (a.preorder_index, b.preorder_index) for a, b in index.pairs(relation)
        )
        expected = set(
            (a.preorder_index, b.preorder_index)
            for a in figure1
            for b in figure1
            if holds(relation, a, b)
        )
        assert pairs == expected

"""Tests for tree builders, literals, serialisation and random trees."""

from __future__ import annotations

import pytest

from repro.tree import (
    TreeBuilder,
    from_dict,
    random_tree,
    to_dict,
    to_outline,
    to_sexpr,
    tree,
)


def test_tree_literal_with_attributes_and_text():
    doc = tree(("a", {"id": "x"}, ("b", "text:hello"), "c"))
    assert doc.root.label == "a"
    assert doc.root.attributes == {"id": "x"}
    b = doc.find_first("b")
    assert b.text_content() == "hello"
    assert doc.find_first("c").is_leaf


def test_tree_literal_rejects_empty():
    with pytest.raises(ValueError):
        tree(())


def test_tree_builder_basic_flow():
    builder = TreeBuilder()
    builder.start("html")
    builder.start("body")
    builder.text("hi")
    builder.empty("hr")
    builder.end("body")
    builder.end("html")
    doc = builder.finish(url="http://x")
    assert doc.url == "http://x"
    assert [n.label for n in doc] == ["#document", "html", "body", "#text", "hr"]


def test_tree_builder_mismatched_end_tags_are_lenient():
    builder = TreeBuilder()
    builder.start("div")
    builder.start("span")
    builder.end("div")  # closes span implicitly
    doc = builder.finish()
    assert doc.find_first("span") is not None
    assert doc.find_first("div") is not None


def test_tree_builder_finish_twice_raises():
    builder = TreeBuilder()
    builder.finish()
    with pytest.raises(RuntimeError):
        builder.finish()


def test_sexpr_serialisation(figure1):
    assert to_sexpr(figure1) == "(n1 n2 (n3 n4 n5) n6)"


def test_dict_round_trip(nested_tree):
    data = to_dict(nested_tree)
    restored = from_dict(data)
    assert to_sexpr(restored) == to_sexpr(nested_tree)


def test_outline_contains_all_elements(simple_html):
    outline = to_outline(simple_html)
    assert "<table" in outline
    assert "Book One" in outline


def test_random_tree_is_deterministic_and_sized():
    first = random_tree(100, seed=3)
    second = random_tree(100, seed=3)
    assert len(first) == 100
    assert to_sexpr(first) == to_sexpr(second)
    assert to_sexpr(first) != to_sexpr(random_tree(100, seed=4))


def test_random_tree_requires_positive_size():
    with pytest.raises(ValueError):
        random_tree(0)
